"""``python -m repro.lint`` — run the static analyzer from the shell.

Thin executable shim over :mod:`repro.analysis.lint.cli`; see that module
for the option set.
"""

from __future__ import annotations

import sys

from .analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
