"""Routing components: merge, control merge, mux, branch, select.

These steer tokens along control-flow-graph edges in the elastic circuit
exactly as Dynamatic's netlist generator does:

* :class:`Merge` — non-deterministic merge; forwards whichever input offers
  a token (lowest index wins on ties).  Used where at most one input can be
  live at a time (CFG joins in correct circuits).
* :class:`ControlMerge` — merge that additionally emits the index of the
  winning input; drives the select of the phi muxes of its basic block.
* :class:`Mux` — data phi: a select token picks which data input to forward.
* :class:`Branch` — routes a data token to the true/false output according
  to a condition token.
* :class:`Select` — eager ternary operator (cond ? a : b), consuming all
  three inputs.
"""

from __future__ import annotations

from .component import Component
from .token import combine


class Merge(Component):
    """Forward a token from any valid input; lowest index has priority."""

    resource_class = "merge"

    def __init__(self, name: str, n_inputs: int, width: int = 32):
        super().__init__(name)
        if n_inputs < 1:
            raise ValueError("merge needs at least one input")
        self.n_inputs = n_inputs
        self.width = width

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def _winner(self):
        for i in range(self.n_inputs):
            if self.inputs[self.in_port(i)].valid:
                return i
        return None

    def propagate(self) -> None:
        w = self._winner()
        if w is None:
            return
        self.drive_out("out", self.inputs[self.in_port(w)].data)
        if self.out_ready("out"):
            self.drive_ready(self.in_port(w), True)

    @property
    def resource_params(self):
        return {"width": self.width, "n": self.n_inputs}


class ControlMerge(Component):
    """Merge that also reports which input won (for phi-mux selects).

    Outputs: ``out`` (the control token) and ``index`` (token whose value is
    the winning input index).  Both outputs must accept for the input to be
    consumed, so they behave as an implicit two-way fork.
    """

    resource_class = "cmerge"

    def __init__(self, name: str, n_inputs: int):
        super().__init__(name)
        self.n_inputs = n_inputs
        self._done_out = False
        self._done_index = False
        # Once emission for a winner starts (a done bit is set), the merge
        # is committed to that input until the full handshake completes:
        # a token arriving meanwhile on a higher-priority input must not
        # inherit the partial state (it would be consumed without its own
        # out/index ever being emitted).
        self._locked: "int | None" = None

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def _winner(self):
        if self._locked is not None:
            return self._locked
        for i in range(self.n_inputs):
            if self.inputs[self.in_port(i)].valid:
                return i
        return None

    def propagate(self) -> None:
        w = self._winner()
        if w is None:
            return
        ch = self.inputs[self.in_port(w)]
        if not ch.valid:
            return  # locked winner's token not (re)offered yet this cycle
        tok = ch.data
        if not self._done_out:
            self.drive_out("out", tok)
        if not self._done_index:
            self.drive_out("index", tok.with_value(w))
        out_ok = self._done_out or self.outputs["out"].ready
        idx_ok = self._done_index or self.outputs["index"].ready
        if out_ok and idx_ok:
            self.drive_ready(self.in_port(w), True)

    def tick(self) -> None:
        w = self._winner()
        if w is None:
            return
        if self.inputs[self.in_port(w)].fires:
            self._done_out = False
            self._done_index = False
            self._locked = None
            return
        fired = False
        if self.outputs["out"].fires:
            self._done_out = True
            fired = True
        if self.outputs["index"].fires:
            self._done_index = True
            fired = True
        if fired:
            self._locked = w

    def flush(self, domain: int, min_iter: int) -> None:
        w = self._winner()
        if w is not None:
            tok = self.inputs[self.in_port(w)].data
            if tok is not None and tok.is_squashed_by(domain, min_iter):
                self._done_out = False
                self._done_index = False
                self._locked = None

    @property
    def resource_params(self):
        return {"n": self.n_inputs}


class Mux(Component):
    """Data phi: forward the data input chosen by the select token."""

    resource_class = "mux"

    def __init__(self, name: str, n_inputs: int, width: int = 32):
        super().__init__(name)
        self.n_inputs = n_inputs
        self.width = width

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def propagate(self) -> None:
        sel_ch = self.inputs["select"]
        if not sel_ch.valid:
            return
        w = int(sel_ch.data.value)
        data_ch = self.inputs[self.in_port(w)]
        if not data_ch.valid:
            return
        self.drive_out("out", combine(data_ch.data.value, data_ch.data, sel_ch.data))
        if self.out_ready("out"):
            self.drive_ready("select", True)
            self.drive_ready(self.in_port(w), True)

    @property
    def resource_params(self):
        return {"width": self.width, "n": self.n_inputs}


class Branch(Component):
    """Route ``data`` to output ``true`` or ``false`` per the ``cond`` token."""

    resource_class = "branch"

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width

    def propagate(self) -> None:
        cond_ch = self.inputs["cond"]
        data_ch = self.inputs["data"]
        if not (cond_ch.valid and data_ch.valid):
            return
        port = "true" if cond_ch.data.value else "false"
        self.drive_out(port, combine(data_ch.data.value, data_ch.data, cond_ch.data))
        if self.out_ready(port):
            self.drive_ready("cond", True)
            self.drive_ready("data", True)

    @property
    def resource_params(self):
        return {"width": self.width}


class Select(Component):
    """Ternary select: consume cond, a, b; emit a when cond else b."""

    resource_class = "select"

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width

    def propagate(self) -> None:
        cond = self.inputs["cond"]
        a = self.inputs["a"]
        b = self.inputs["b"]
        if not (cond.valid and a.valid and b.valid):
            return
        chosen = a.data if cond.data.value else b.data
        self.drive_out("out", combine(chosen.value, cond.data, a.data, b.data))
        if self.out_ready("out"):
            self.drive_ready("cond", True)
            self.drive_ready("a", True)
            self.drive_ready("b", True)

    @property
    def resource_params(self):
        return {"width": self.width}
