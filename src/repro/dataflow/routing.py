"""Routing components: merge, control merge, mux, branch, select.

These steer tokens along control-flow-graph edges in the elastic circuit
exactly as Dynamatic's netlist generator does:

* :class:`Merge` — non-deterministic merge; forwards whichever input offers
  a token (lowest index wins on ties).  Used where at most one input can be
  live at a time (CFG joins in correct circuits).
* :class:`ControlMerge` — merge that additionally emits the index of the
  winning input; drives the select of the phi muxes of its basic block.
* :class:`Mux` — data phi: a select token picks which data input to forward.
* :class:`Branch` — routes a data token to the true/false output according
  to a condition token.
* :class:`Select` — eager ternary operator (cond ? a : b), consuming all
  three inputs.
"""

from __future__ import annotations

from .component import Component
from .token import combine


class Merge(Component):
    """Forward a token from any valid input; lowest index has priority."""

    resource_class = "merge"
    scheduling_contract_audited = True

    def __init__(self, name: str, n_inputs: int, width: int = 32):
        super().__init__(name)
        if n_inputs < 1:
            raise ValueError("merge needs at least one input")
        self.n_inputs = n_inputs
        self.width = width

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def _winner(self):
        for i in range(self.n_inputs):
            if self.inputs[self.in_port(i)].valid:
                return i
        return None

    def propagate(self) -> None:
        w = self._winner()
        if w is None:
            return
        self.drive_out("out", self.inputs[self.in_port(w)].data)
        if self.out_ready("out"):
            self.drive_ready(self.in_port(w), True)

    @property
    def resource_params(self):
        return {"width": self.width, "n": self.n_inputs}


class ControlMerge(Component):
    """Merge that also reports which input won (for phi-mux selects).

    Outputs: ``out`` (the control token) and ``index`` (token whose value is
    the winning input index).  Both outputs must accept for the input to be
    consumed, so they behave as an implicit two-way fork.
    """

    resource_class = "cmerge"
    scheduling_contract_audited = True

    def __init__(self, name: str, n_inputs: int):
        super().__init__(name)
        self.n_inputs = n_inputs
        self._done_out = False
        self._done_index = False
        self._cache = [None, -1, None]  # [ctrl token, winner, index token]
        # Once emission for a winner starts (a done bit is set), the merge
        # is committed to that input until the full handshake completes:
        # a token arriving meanwhile on a higher-priority input must not
        # inherit the partial state (it would be consumed without its own
        # out/index ever being emitted).
        self._locked: "int | None" = None

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def _winner(self):
        if self._locked is not None:
            return self._locked
        for i in range(self.n_inputs):
            if self.inputs[self.in_port(i)].valid:
                return i
        return None

    def propagate(self) -> None:
        w = self._winner()
        if w is None:
            return
        ch = self.inputs[self.in_port(w)]
        if not ch.valid:
            return  # locked winner's token not (re)offered yet this cycle
        tok = ch.data
        if not self._done_out:
            self.drive_out("out", tok)
        if not self._done_index:
            cache = self._cache
            if cache[0] is tok and cache[1] == w:
                index_tok = cache[2]
            else:
                index_tok = tok.with_value(w)
                cache[0] = tok
                cache[1] = w
                cache[2] = index_tok
            self.drive_out("index", index_tok)
        out_ok = self._done_out or self.outputs["out"].ready
        idx_ok = self._done_index or self.outputs["index"].ready
        if out_ok and idx_ok:
            self.drive_ready(self.in_port(w), True)

    def tick(self):
        w = self._winner()
        if w is None:
            return False
        if self.inputs[self.in_port(w)].fires:
            changed = self._done_out or self._done_index or self._locked is not None
            self._done_out = False
            self._done_index = False
            self._locked = None
            return changed
        fired = False
        if self.outputs["out"].fires and not self._done_out:
            self._done_out = True
            fired = True
        if self.outputs["index"].fires and not self._done_index:
            self._done_index = True
            fired = True
        if fired:
            self._locked = w
        return fired

    def flush(self, domain: int, min_iter: int) -> None:
        w = self._winner()
        if w is not None:
            tok = self.inputs[self.in_port(w)].data
            if tok is not None and tok.is_squashed_by(domain, min_iter):
                self._done_out = False
                self._done_index = False
                self._locked = None

    @property
    def resource_params(self):
        return {"n": self.n_inputs}


class Mux(Component):
    """Data phi: forward the data input chosen by the select token."""

    resource_class = "mux"
    scheduling_contract_audited = True

    def __init__(self, name: str, n_inputs: int, width: int = 32):
        super().__init__(name)
        self.n_inputs = n_inputs
        self.width = width
        self._in_chs = None  # bound lazily after wiring
        self._cache = [None, None, None]  # [select tok, data tok, output]

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def _bind(self):
        chs = [self.inputs[f"in{i}"] for i in range(self.n_inputs)]
        self._in_chs = chs
        self._sel_ch = self.inputs["select"]
        self._out_ch = self.outputs["out"]
        return chs

    def propagate(self) -> None:
        ins = self._in_chs or self._bind()
        sel_ch = self._sel_ch
        if not sel_ch.valid:
            return
        sel_tok = sel_ch.data
        data_ch = ins[int(sel_tok.value)]
        if not data_ch.valid:
            return
        out_ch = self._out_ch
        data_tok = data_ch.data
        out_ch.valid = True
        cache = self._cache
        if cache[0] is sel_tok and cache[1] is data_tok:
            out_ch.data = cache[2]
        else:
            out = combine(data_tok.value, data_tok, sel_tok)
            cache[0] = sel_tok
            cache[1] = data_tok
            cache[2] = out
            out_ch.data = out
        if out_ch.ready:
            sel_ch.ready = True
            data_ch.ready = True

    @property
    def resource_params(self):
        return {"width": self.width, "n": self.n_inputs}


class Branch(Component):
    """Route ``data`` to output ``true`` or ``false`` per the ``cond`` token."""

    resource_class = "branch"
    scheduling_contract_audited = True

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width
        self._cond_ch = None  # bound lazily after wiring
        self._cache = [None, None, None]  # [cond tok, data tok, output]

    def _bind(self):
        self._cond_ch = self.inputs["cond"]
        self._data_ch = self.inputs["data"]
        self._true_ch = self.outputs["true"]
        self._false_ch = self.outputs["false"]
        return self._cond_ch

    def propagate(self) -> None:
        cond_ch = self._cond_ch or self._bind()
        data_ch = self._data_ch
        if not (cond_ch.valid and data_ch.valid):
            return
        cond_tok = cond_ch.data
        data_tok = data_ch.data
        out_ch = self._true_ch if cond_tok.value else self._false_ch
        out_ch.valid = True
        cache = self._cache
        if cache[0] is cond_tok and cache[1] is data_tok:
            out_ch.data = cache[2]
        else:
            out = combine(data_tok.value, data_tok, cond_tok)
            cache[0] = cond_tok
            cache[1] = data_tok
            cache[2] = out
            out_ch.data = out
        if out_ch.ready:
            cond_ch.ready = True
            data_ch.ready = True

    @property
    def resource_params(self):
        return {"width": self.width}


class Select(Component):
    """Ternary select: consume cond, a, b; emit a when cond else b."""

    resource_class = "select"
    scheduling_contract_audited = True

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width
        self._cache = [None, None, None, None]  # [cond, a, b, output]

    def propagate(self) -> None:
        cond = self.inputs["cond"]
        a = self.inputs["a"]
        b = self.inputs["b"]
        if not (cond.valid and a.valid and b.valid):
            return
        cache = self._cache
        if cache[0] is cond.data and cache[1] is a.data and cache[2] is b.data:
            out = cache[3]
        else:
            chosen = a.data if cond.data.value else b.data
            out = combine(chosen.value, cond.data, a.data, b.data)
            cache[0] = cond.data
            cache[1] = a.data
            cache[2] = b.data
            cache[3] = out
        self.drive_out("out", out)
        if self.out_ready("out"):
            self.drive_ready("cond", True)
            self.drive_ready("a", True)
            self.drive_ready("b", True)

    @property
    def resource_params(self):
        return {"width": self.width}
