"""Graphviz DOT export of elastic circuits.

Color-codes the component families (memory-ordering hardware, compute,
control, buffers) so generated circuits can be inspected visually:

    from repro.dataflow.visualize import to_dot
    open("circuit.dot", "w").write(to_dot(build.circuit))
    # dot -Tsvg circuit.dot -o circuit.svg
"""

from __future__ import annotations

from typing import Dict

_FAMILY_STYLE = {
    "lsq": ("box3d", "#e39898"),
    "prevv_unit": ("box3d", "#98c1e3"),
    "replay_gate": ("house", "#b6d7f2"),
    "memory_controller": ("cylinder", "#d9c386"),
    "fork": ("triangle", "#d5d5d5"),
    "join": ("invtriangle", "#d5d5d5"),
    "merge": ("trapezium", "#cfe3c7"),
    "cmerge": ("trapezium", "#a9d69a"),
    "mux": ("invtrapezium", "#cfe3c7"),
    "branch": ("diamond", "#cfe3c7"),
    "oehb": ("rect", "#efe6a7"),
    "tehb": ("rect", "#f4efc5"),
    "fifo": ("rect", "#efe6a7"),
    "add": ("ellipse", "#c6b8e0"),
    "mul": ("ellipse", "#b5a1dd"),
    "div": ("ellipse", "#a287d6"),
    "cmp": ("ellipse", "#d3cbe6"),
    "logic": ("ellipse", "#d3cbe6"),
    "shift": ("ellipse", "#d3cbe6"),
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(
    circuit,
    include_slack: bool = False,
    rankdir: str = "TB",
) -> str:
    """Render ``circuit`` as a Graphviz digraph.

    ``include_slack=False`` collapses the transparent slack FIFOs the
    buffer-placement pass inserts on fork outputs (they dominate the node
    count but carry no structural insight); edges are drawn through them.
    """
    skip: Dict[str, tuple] = {}
    if not include_slack:
        for comp in circuit.components:
            if comp.name.startswith("slk_"):
                in_chan = comp.inputs.get("in")
                out_chan = comp.outputs.get("out")
                if in_chan is not None and out_chan is not None:
                    skip[comp.name] = (in_chan, out_chan)

    lines = [
        "digraph circuit {",
        f'  rankdir={rankdir};',
        '  node [fontsize=9, style=filled, fillcolor="#eeeeee"];',
        "  edge [fontsize=7];",
    ]
    for comp in circuit.components:
        if comp.name in skip:
            continue
        shape, color = _FAMILY_STYLE.get(
            comp.resource_class or "", ("rect", "#eeeeee")
        )
        lines.append(
            f'  "{_escape(comp.name)}" [shape={shape}, '
            f'fillcolor="{color}"];'
        )

    def resolve_producer(chan):
        # Walk backward through skipped slack buffers.
        while chan.producer is not None and chan.producer.name in skip:
            chan = skip[chan.producer.name][0]
        return chan.producer

    for chan in circuit.channels:
        if chan.producer is None or chan.consumer is None:
            continue
        if chan.consumer.name in skip:
            continue  # drawn when we reach the slack buffer's output edge
        producer = resolve_producer(chan)
        if producer is None or producer.name in skip:
            continue
        style = ' [style=dashed]' if chan.is_backedge else ""
        lines.append(
            f'  "{_escape(producer.name)}" -> '
            f'"{_escape(chan.consumer.name)}"{style};'
        )
    lines.append("}")
    return "\n".join(lines)
