"""Component base class for elastic dataflow circuits.

Every hardware unit — from a humble fork up to a whole LSQ — subclasses
:class:`Component` and implements two methods:

* :meth:`Component.propagate` — purely combinational: read input-channel
  ``valid``/``data`` and output-channel ``ready``, then drive output-channel
  ``valid``/``data`` and input-channel ``ready``.  Called repeatedly within a
  cycle until the circuit reaches a fixpoint.  **Monotonicity contract**: a
  component may only *raise* valid/ready signals relative to what it drove
  earlier in the same cycle (data may follow a bounded priority change, e.g.
  a merge switching to a lower-index input).  This guarantees fixpoint
  convergence even across feedback loops.

* :meth:`Component.tick` — sequential: commit internal state at the clock
  edge using the settled signal values.

Components additionally expose:

* :meth:`Component.flush` — drop internal tokens belonging to squashed
  iterations of a squash domain (used by PreVV pipeline flushing);
* :attr:`Component.is_busy` — true while internal activity is pending even
  though no channel fires (keeps the deadlock detector honest for latency
  units such as memory controllers);
* :attr:`Component.resource_class` / :attr:`Component.resource_params` —
  hooks for the FPGA area model (:mod:`repro.area`).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import CircuitError
from .channel import Channel
from .token import Token


class Component:
    """Base class for every elastic dataflow unit."""

    #: Scheduling contract (see :mod:`repro.dataflow.schedule`): True when
    #: :meth:`propagate` reads the ``valid``/``data`` of the component's own
    #: input channels.  Components that drive all their signals from
    #: sequential state (opaque buffers, sinks) set this to False, which
    #: removes them from the combinational valid network, cuts loop
    #: back-edges out of the levelized schedule, and tells the simulator a
    #: valid/data change on an input channel can never alter this
    #: component's outputs (so it is never re-woken by one).  A propagate
    #: may only ever read its *own* ports' signals; the simulator's change
    #: propagation relies on it.
    observes_input_valid: bool = True

    #: True when :meth:`propagate` can carry an input channel's
    #: ``valid``/``data`` through to an *output* channel within the same
    #: cycle.  Components that read input valids only to compute grants /
    #: input readies, while all output valids come from sequential state
    #: (memory controllers, LSQs), set this to False: they are woken by
    #: input changes like any observer, but the valid wave terminates at
    #: them, which removes them — and the loops they sit on — from the
    #: levelized valid network.
    forwards_valid: bool = True

    #: Dual of :attr:`observes_input_valid` for the backward ready wave:
    #: True when :meth:`propagate` reads the ``ready`` of the component's
    #: own output channels.  Components whose input-ready depends only on
    #: internal occupancy (transparent buffers/FIFOs, sources) set this to
    #: False, which cuts the combinational ready chain exactly where the
    #: hardware's TEHBs cut it and stops the simulator from re-evaluating
    #: them when a downstream ready rises.
    observes_output_ready: bool = True

    #: Audit marker for the scheduling contract: a class sets this True
    #: once its three flags above *and* its :meth:`tick` change report
    #: have been checked against its ``propagate``/``tick`` bodies.  Every
    #: component class consumed by a PreVV build must carry the marker —
    #: the PV207 lint pass enforces it — so a future component with an
    #: unaudited (hence possibly wrong) contract cannot silently corrupt
    #: or de-optimize the incremental cross-cycle engine.
    scheduling_contract_audited: bool = False

    def __init__(self, name: str):
        self.name = name
        self.inputs: Dict[str, Channel] = {}
        self.outputs: Dict[str, Channel] = {}

    # ------------------------------------------------------------------
    # Port declaration and wiring (used by Circuit.connect)
    # ------------------------------------------------------------------
    def attach_input(self, port: str, channel: Channel) -> None:
        if port in self.inputs:
            raise CircuitError(f"{self.name}: input port {port!r} already connected")
        self.inputs[port] = channel
        channel.consumer = self
        channel.consumer_port = port

    def attach_output(self, port: str, channel: Channel) -> None:
        if port in self.outputs:
            raise CircuitError(f"{self.name}: output port {port!r} already connected")
        self.outputs[port] = channel
        channel.producer = self
        channel.producer_port = port

    def expected_inputs(self):
        """Port names that must be connected; override in subclasses."""
        return list(self.inputs)

    def expected_outputs(self):
        return list(self.outputs)

    # ------------------------------------------------------------------
    # Combinational helpers
    # ------------------------------------------------------------------
    def in_valid(self, port: str) -> bool:
        return self.inputs[port].valid

    def in_token(self, port: str) -> Optional[Token]:
        return self.inputs[port].data

    def in_fires(self, port: str) -> bool:
        return self.inputs[port].fires

    def out_ready(self, port: str) -> bool:
        return self.outputs[port].ready

    def out_fires(self, port: str) -> bool:
        return self.outputs[port].fires

    def drive_out(self, port: str, token: Optional[Token]) -> None:
        """Drive an output channel's valid/data for this cycle."""
        ch = self.outputs[port]
        if token is None:
            return
        ch.valid = True
        ch.data = token

    def drive_ready(self, port: str, ready: bool) -> None:
        if ready:
            self.inputs[port].ready = True

    # ------------------------------------------------------------------
    # Simulation interface
    # ------------------------------------------------------------------
    def propagate(self) -> None:
        """Combinational evaluation; override."""

    def tick(self):
        """Clock-edge state update; override when stateful.

        Return ``False`` when the tick *definitely* left no state behind
        that could alter :meth:`propagate`'s outputs; any other return
        (``None``/``True``) makes the simulator's incremental engine
        re-evaluate the component next cycle.  ``None`` — the implicit
        return of existing overrides — is therefore always safe, just
        slower.
        """

    def flush(self, domain: int, min_iter: int) -> None:
        """Drop internal tokens with ``tags[domain] >= min_iter``; override."""

    @property
    def is_busy(self) -> bool:
        """True while internal activity is pending without channel traffic."""
        return False

    # ------------------------------------------------------------------
    # Performance-model interface (PVPerf, :mod:`repro.analysis.perf`)
    # ------------------------------------------------------------------
    def perf_model(self):
        """``(latency, capacity)`` of a token traversing this component.

        ``latency`` is the minimum number of clock edges between a token
        entering on an input channel and the derived token appearing on
        an output channel; ``capacity`` is the maximum number of tokens
        the component can hold in flight, with ``None`` meaning the
        model cannot bound it (unbounded storage constrains no cycle).

        Soundness contract for overrides: PVPerf divides cycle latency
        by cycle capacity to obtain an II *lower* bound, so when exact
        values are unknown, **under**-state latency and **over**-state
        capacity — both weaken the bound, neither can make it unsound.
        The default uses the scheduling contract: a combinational
        pass-through (observes its input valids and forwards them) holds
        nothing and adds no delay; anything driven from sequential state
        is storage of unknown depth.
        """
        if self.observes_input_valid and self.forwards_valid:
            return (0, 0)
        return (0, None)

    # ------------------------------------------------------------------
    # Area-model interface
    # ------------------------------------------------------------------
    #: Cost-library key; ``None`` means zero-cost (simulation-only helper).
    resource_class: Optional[str] = None

    @property
    def resource_params(self) -> Dict[str, float]:
        """Parameters (bit widths, depths, port counts) for the cost library."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"
