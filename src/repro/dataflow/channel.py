"""Elastic channels: single-producer single-consumer handshaked wires.

A channel carries the three latency-insensitive signals of an elastic
(valid/ready) protocol [Carloni et al.]:

* ``valid`` — driven by the producer, true when ``data`` holds a token;
* ``data``  — the token being offered;
* ``ready`` — driven by the consumer, true when it can accept the token.

A *transfer* happens at the clock edge of any cycle in which both ``valid``
and ``ready`` are high.  Within a cycle all signals are recomputed from
scratch by fixpoint iteration; the simulator resets them at the start of
each cycle (see :mod:`repro.dataflow.simulator`).

Channels are strictly point-to-point; fan-out must go through an explicit
:class:`~repro.dataflow.primitives.Fork`, exactly as in Dynamatic netlists.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .token import Token

if TYPE_CHECKING:  # pragma: no cover
    from .component import Component


class Channel:
    """One handshaked connection between an output port and an input port."""

    __slots__ = (
        "name",
        "producer",
        "producer_port",
        "consumer",
        "consumer_port",
        "valid",
        "ready",
        "data",
        "transfers",
        "stall_cycles",
        "idle_cycles",
        "is_backedge",
    )

    def __init__(self, name: str):
        self.name = name
        self.producer: Optional["Component"] = None
        self.producer_port: Optional[str] = None
        self.consumer: Optional["Component"] = None
        self.consumer_port: Optional[str] = None
        self.valid = False
        self.ready = False
        self.data: Optional[Token] = None
        # Statistics, updated at every clock edge.
        self.transfers = 0
        self.stall_cycles = 0  # valid && !ready
        self.idle_cycles = 0  # !valid
        self.is_backedge = False

    @property
    def fires(self) -> bool:
        """True when a transfer completes at the coming clock edge."""
        return self.valid and self.ready

    def reset_cycle(self) -> None:
        """Clear combinational signals at the start of a cycle."""
        self.valid = False
        self.ready = False
        self.data = None

    def record_stats(self) -> None:
        """Account this cycle's handshake outcome (called before tick)."""
        if self.valid and self.ready:
            self.transfers += 1
        elif self.valid:
            self.stall_cycles += 1
        else:
            self.idle_cycles += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fire" if self.fires else ("stall" if self.valid else "idle")
        return f"Channel({self.name}, {state}, data={self.data!r})"
