"""The seed event-driven simulator, kept as an executable specification.

This is the original (pre-levelization) engine: a per-cycle worklist over
*all* components with dict/tuple snapshots for change detection.  It is
deliberately simple and order-agnostic, which makes it the ground truth
the optimized :class:`repro.dataflow.simulator.Simulator` is checked
against — the equivalence suite in
``tests/dataflow/test_engine_equivalence.py`` asserts that both engines
produce bit-identical cycle counts, transfers, squash counts and final
memory state on every kernel and configuration.

Do not use this engine for evaluation runs; it is several times slower
and exists only as a test oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConvergenceError, DeadlockError, SimulationError
from .channel import Channel
from .circuit import Circuit
from .component import Component
from .simulator import SimulationStats


class ReferenceSimulator:
    """Drives a :class:`Circuit` cycle by cycle (seed algorithm)."""

    engine_name = "reference"

    def __init__(
        self,
        circuit: Circuit,
        max_cycles: int = 1_000_000,
        deadlock_window: int = 256,
        fixpoint_cap: int = 10_000,
        trace=None,
        collect_stats: bool = True,
    ):
        self.circuit = circuit
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.fixpoint_cap = fixpoint_cap
        self.trace = trace
        self.collect_stats = collect_stats
        self.stats = SimulationStats()
        self._quiet_cycles = 0
        #: callables invoked after every clock edge (e.g. squash execution)
        self.end_of_cycle_hooks: List[Callable[[], None]] = []
        circuit.validate()
        # Event-driven bookkeeping: which components observe each channel,
        # and which channels each component can drive.
        self._watchers: Dict[Channel, List[Component]] = {}
        self._adjacent: Dict[Component, List[Channel]] = {
            c: [] for c in circuit.components
        }
        for chan in circuit.channels:
            watchers = []
            if chan.consumer is not None:
                watchers.append(chan.consumer)
                self._adjacent[chan.consumer].append(chan)
            if chan.producer is not None:
                watchers.append(chan.producer)
                self._adjacent[chan.producer].append(chan)
            self._watchers[chan] = watchers

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def _fixpoint(self) -> None:
        comps = self.circuit.components
        channels = self.circuit.channels
        for chan in channels:
            chan.reset_cycle()
        pending = dict.fromkeys(comps)  # ordered set of components to evaluate
        rounds = 0
        while pending:
            rounds += 1
            if rounds > self.fixpoint_cap:
                raise ConvergenceError(
                    f"{self.circuit.name}: combinational fixpoint did not settle "
                    f"within {self.fixpoint_cap} rounds at cycle {self.stats.cycles}"
                )
            batch = list(pending)
            pending.clear()
            # Snapshot only channels the batch can drive, evaluate, then
            # wake the watchers of every changed channel.
            touched: Dict[Channel, tuple] = {}
            for comp in batch:
                for chan in self._adjacent[comp]:
                    if chan not in touched:
                        touched[chan] = (chan.valid, chan.ready, chan.data)
            for comp in batch:
                comp.propagate()
                self.stats.propagate_calls += 1
            for chan, prev in touched.items():
                if (chan.valid, chan.ready, chan.data) != prev:
                    for watcher in self._watchers[chan]:
                        pending[watcher] = None

    def step(self) -> int:
        """Simulate one cycle; returns the number of channel transfers."""
        self._fixpoint()
        fired = 0
        for chan in self.circuit.channels:
            if self.collect_stats:
                chan.record_stats()
            if chan.fires:
                fired += 1
        if self.trace is not None:
            self.trace.capture(self.circuit, self.stats.cycles)
        for comp in self.circuit.components:
            comp.tick()
        for hook in self.end_of_cycle_hooks:
            hook()
        self.stats.cycles += 1
        self.stats.transfers += fired
        return fired

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def run(self, done: Callable[[], bool]) -> SimulationStats:
        """Run until ``done()`` is true; raise on deadlock or cycle budget."""
        self._quiet_cycles = 0
        while not done():
            if self.stats.cycles >= self.max_cycles:
                raise SimulationError(
                    f"{self.circuit.name}: exceeded {self.max_cycles} cycles "
                    "without completing"
                )
            fired = self.step()
            busy = fired > 0 or any(c.is_busy for c in self.circuit.components)
            if busy:
                self._quiet_cycles = 0
            else:
                self._quiet_cycles += 1
                if self._quiet_cycles >= self.deadlock_window:
                    self._raise_deadlock()
        return self.stats

    def run_cycles(self, n: int) -> SimulationStats:
        """Run exactly ``n`` cycles (no completion/deadlock checks)."""
        for _ in range(n):
            self.step()
        return self.stats

    def _raise_deadlock(self) -> None:
        stuck = [c for c in self.circuit.channels if c.valid and not c.ready]
        names = ", ".join(c.name for c in stuck[:8])
        more = "" if len(stuck) <= 8 else f" (+{len(stuck) - 8} more)"
        raise DeadlockError(
            f"{self.circuit.name}: no progress for {self.deadlock_window} cycles "
            f"at cycle {self.stats.cycles}; stalled channels: {names}{more}",
            stuck_channels=stuck,
        )
