"""Static scheduling of elastic circuits: dependence graphs + levelization.

Within one clock cycle the handshake network settles to a fixpoint: every
``valid``/``data`` signal flows from a producer's :meth:`propagate` to the
consumers that read it, and every ``ready`` flows the opposite way.  Both
directions are monotone, so *any* evaluation order converges — but the
number of re-evaluations depends enormously on the order.  This module
computes, once per circuit, the order that makes the common case settle in
a single sweep:

* :func:`valid_dependence_edges` — the combinational *valid* network.  An
  edge ``P -> C`` exists for every channel whose consumer ``C`` reads the
  channel's ``valid``/``data`` inside :meth:`propagate` (components that
  drive their signals purely from sequential state — opaque buffers,
  opaque FIFOs, sinks — declare ``observes_input_valid = False`` and
  contribute no edge, which is exactly what cuts loop back-edges out of
  the graph).
* :func:`levelize` — Kahn's algorithm over those edges.  The result is a
  :class:`LevelSchedule`: components in topological order (so one forward
  sweep settles the whole acyclic valid network), each labelled with its
  ASAP level, plus the *cyclic residue* — components on combinational
  valid cycles (a mis-built circuit; the PV103 lint pass flags the same
  structure) which the simulator's worklist fallback still evaluates
  correctly.

The module is also the shared home of the component-graph helpers the
PV1xx lint passes consume (:func:`token_flow_adjacency`,
:func:`strongly_connected_components`), so the linter and the simulator
analyse one and the same graph instead of each rebuilding their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .circuit import Circuit
from .component import Component


def token_flow_adjacency(circuit: Circuit) -> Dict[int, Set[int]]:
    """Producer -> consumer adjacency over components, keyed by ``id()``.

    The token-flow graph: one node per component, one edge per channel.
    Shared by the simulator's schedule construction and the PV103/PV104
    lint passes.
    """
    adj: Dict[int, Set[int]] = {id(c): set() for c in circuit.components}
    for chan in circuit.channels:
        if chan.producer is not None and chan.consumer is not None:
            adj[id(chan.producer)].add(id(chan.consumer))
    return adj


def strongly_connected_components(adj: Dict[int, Set[int]]) -> List[List[int]]:
    """Tarjan's strongly-connected components, iteratively (no recursion)."""
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = [0]

    for root in adj:
        if root in index:
            continue
        work = [(root, iter(adj[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succs = work[-1]
            advanced = False
            for succ in succs:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adj[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def valid_dependence_edges(
    circuit: Circuit,
) -> List[Tuple[Component, Component]]:
    """Edges ``(producer, consumer)`` of the within-cycle valid network.

    A channel constrains evaluation order only when its consumer actually
    reads the channel's ``valid``/``data`` during :meth:`propagate`;
    components driven purely by sequential state opt out via
    ``observes_input_valid = False``.  Consumers that read input valids
    but never carry them through to an output (``forwards_valid =
    False`` — memory controllers, LSQs) terminate the valid wave: they
    contribute no incoming edge either, so the loops they sit on drop
    out of the graph.  The simulator still re-wakes them on input
    changes through its per-channel wake lists.
    """
    edges: List[Tuple[Component, Component]] = []
    for chan in circuit.channels:
        if chan.producer is None or chan.consumer is None:
            continue
        if chan.consumer.observes_input_valid and chan.consumer.forwards_valid:
            edges.append((chan.producer, chan.consumer))
    return edges


def ready_network_acyclic(circuit: Circuit) -> bool:
    """True when the combinational *ready* network has no cycles.

    The backward wave: ``ready`` on a component's input channels may
    depend on ``ready`` of its output channels — but only when the
    component declares ``observes_output_ready``.  Transparent buffers
    and FIFOs cut the chain exactly where hardware TEHBs do.  An edge
    runs ``C -> consumer(out)`` for every output channel of a component
    ``C`` that observes output ready: the consumer's driven in-ready
    feeds ``C``'s evaluation.

    The simulator's incremental (cross-cycle event-driven) fixpoint is
    only sound when every within-cycle signal dependence is acyclic;
    this is the ready half of that check (:func:`levelize` covers the
    valid half via its cyclic residue).
    """
    adj: Dict[int, Set[int]] = {id(c): set() for c in circuit.components}
    for chan in circuit.channels:
        prod, cons = chan.producer, chan.consumer
        if prod is None or cons is None:
            continue
        if prod.observes_output_ready:
            adj[id(prod)].add(id(cons))
    for scc in strongly_connected_components(adj):
        if len(scc) > 1:
            return False
        node = scc[0]
        if node in adj[node]:
            return False
    return True


@dataclass
class LevelSchedule:
    """A static evaluation order for one circuit's combinational network."""

    #: every component, acyclic part first in topological (level) order,
    #: then the cyclic residue in circuit-construction order
    order: List[Component]
    #: ``id(component) -> ASAP level``; residue components share the level
    #: one past the deepest acyclic level
    level: Dict[int, int] = field(default_factory=dict)
    #: components on combinational valid cycles (normally empty; a
    #: buffer-free cycle is a PV103 lint error but must still simulate)
    cyclic: List[Component] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Number of distinct levels (the valid network's logic depth)."""
        return max(self.level.values(), default=-1) + 1


def levelize(circuit: Circuit) -> LevelSchedule:
    """Topologically levelize ``circuit``'s valid-dependence graph.

    Deterministic for a given construction order: ties within a level keep
    the order components were added to the circuit.
    """
    comps = circuit.components
    position = {id(c): i for i, c in enumerate(comps)}
    succs: Dict[int, List[Component]] = {id(c): [] for c in comps}
    in_degree: Dict[int, int] = {id(c): 0 for c in comps}
    for producer, consumer in valid_dependence_edges(circuit):
        succs[id(producer)].append(consumer)
        in_degree[id(consumer)] += 1

    order: List[Component] = []
    level: Dict[int, int] = {}
    frontier = [c for c in comps if in_degree[id(c)] == 0]
    for c in frontier:
        level[id(c)] = 0
    while frontier:
        next_frontier: List[Component] = []
        for comp in frontier:
            order.append(comp)
            for succ in succs[id(comp)]:
                in_degree[id(succ)] -= 1
                lvl = level[id(comp)] + 1
                if lvl > level.get(id(succ), 0):
                    level[id(succ)] = lvl
                if in_degree[id(succ)] == 0:
                    next_frontier.append(succ)
        # Keep construction order within each level for determinism.
        next_frontier.sort(key=lambda c: position[id(c)])
        frontier = next_frontier

    cyclic = [c for c in comps if in_degree[id(c)] > 0]
    residue_level = max(level.values(), default=-1) + 1
    for comp in cyclic:
        level[id(comp)] = residue_level
        order.append(comp)
    return LevelSchedule(order=order, level=level, cyclic=cyclic)
