"""Elastic storage: opaque buffers and FIFOs.

* :class:`OpaqueBuffer` (OEHB) — one-slot registered buffer.  It cuts the
  combinational valid/data path, providing the storage that lets tokens
  live on loop back-edges.  ``ready`` is combinational: the slot is
  acceptable when empty or when its occupant leaves this cycle.
* :class:`Fifo` — depth-N opaque FIFO (Dynamatic's elastic FIFO).  Used to
  decouple the main pipeline from the PreVV arbiter ("we use a simple FIFO
  to cache data before it enters the arbiter", Sec. IV-A) and for slack on
  memory paths.

Both honour :meth:`flush`: tokens belonging to squashed iterations vanish,
modelling the pipeline flush that follows an erroneous premature operation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .component import Component
from .token import Token


class OpaqueBuffer(Component):
    """One-slot opaque elastic buffer (OEHB)."""

    resource_class = "oehb"
    observes_input_valid = False  # propagate drives from the slot only
    scheduling_contract_audited = True

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width
        self._slot: Optional[Token] = None
        self._out_ch = None  # bound lazily after wiring

    def _bind(self):
        self._out_ch = self.outputs["out"]
        self._in_ch = self.inputs["in"]
        return self._out_ch

    def propagate(self) -> None:
        out_ch = self._out_ch or self._bind()
        slot = self._slot
        if slot is None:
            self._in_ch.ready = True
            return
        out_ch.valid = True
        out_ch.data = slot
        if out_ch.ready:
            self._in_ch.ready = True

    def tick(self):
        out_ch = self._out_ch or self._bind()
        changed = False
        if self._slot is not None and out_ch.valid and out_ch.ready:
            self._slot = None
            changed = True
        in_ch = self._in_ch
        if in_ch.valid and in_ch.ready:
            self._slot = in_ch.data
            changed = True
        return changed

    def flush(self, domain: int, min_iter: int) -> None:
        if self._slot is not None and self._slot.is_squashed_by(domain, min_iter):
            self._slot = None

    def perf_model(self):
        return (1, 1)  # registered slot: one cycle, one token

    @property
    def occupancy(self) -> int:
        return 0 if self._slot is None else 1

    @property
    def resource_params(self):
        return {"width": self.width}


class TransparentBuffer(Component):
    """One-slot transparent elastic buffer (TEHB).

    Cuts the combinational *ready* path: ``in.ready`` depends only on the
    slot state, never on ``out.ready``.  When empty, tokens pass through
    combinationally; when the consumer stalls, the token parks in the slot.
    An OEHB+TEHB pair on a loop back-edge breaks both the valid and the
    ready cycles, which is what lets a single token circulate with II = 1.
    """

    resource_class = "tehb"
    observes_output_ready = False  # in.ready depends on the slot only
    scheduling_contract_audited = True

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width
        self._slot: Optional[Token] = None
        self._out_ch = None  # bound lazily after wiring

    def _bind(self):
        self._out_ch = self.outputs["out"]
        self._in_ch = self.inputs["in"]
        return self._out_ch

    def propagate(self) -> None:
        out_ch = self._out_ch or self._bind()
        slot = self._slot
        if slot is not None:
            out_ch.valid = True
            out_ch.data = slot
            return
        in_ch = self._in_ch
        if in_ch.valid:
            out_ch.valid = True
            out_ch.data = in_ch.data
        in_ch.ready = True

    def tick(self):
        out_ch = self._out_ch or self._bind()
        out_fired = out_ch.valid and out_ch.ready
        in_ch = self._in_ch
        if self._slot is None:
            if in_ch.valid and in_ch.ready and not out_fired:
                self._slot = in_ch.data
                return True
        elif out_fired:
            self._slot = None
            return True
        return False

    def flush(self, domain: int, min_iter: int) -> None:
        if self._slot is not None and self._slot.is_squashed_by(domain, min_iter):
            self._slot = None

    def perf_model(self):
        return (0, 1)  # combinational pass-through with one parking slot

    @property
    def occupancy(self) -> int:
        return 0 if self._slot is None else 1

    @property
    def resource_params(self):
        return {"width": self.width}


class TransparentFifo(Component):
    """Depth-N transparent FIFO: zero latency when empty, slack when stalled.

    The generalization of the TEHB to N slots: tokens pass through
    combinationally while the consumer keeps up and park in the FIFO when
    it stalls.  ``in.ready`` depends only on occupancy (state), so the
    ready path is cut.  Used as the slack Dynamatic's buffer placement
    inserts in front of memory ports, letting address computation run
    ahead of data computation.
    """

    resource_class = "fifo"
    observes_output_ready = False  # in.ready depends on occupancy only
    scheduling_contract_audited = True

    def __init__(self, name: str, depth: int, width: int = 32):
        super().__init__(name)
        if depth < 1:
            raise ValueError("fifo depth must be >= 1")
        self.depth = depth
        self.width = width
        self._items: Deque[Token] = deque()
        self._out_ch = None  # bound lazily after wiring

    def _bind(self):
        self._out_ch = self.outputs["out"]
        self._in_ch = self.inputs["in"]
        return self._out_ch

    def propagate(self) -> None:
        out_ch = self._out_ch or self._bind()
        items = self._items
        in_ch = self._in_ch
        if items:
            out_ch.valid = True
            out_ch.data = items[0]
        elif in_ch.valid:
            out_ch.valid = True
            out_ch.data = in_ch.data
        if len(items) < self.depth:
            in_ch.ready = True

    def tick(self):
        out_ch = self._out_ch or self._bind()
        out_fired = out_ch.valid and out_ch.ready
        in_ch = self._in_ch
        in_fired = in_ch.valid and in_ch.ready
        if self._items:
            if out_fired:
                self._items.popleft()
            if in_fired:
                self._items.append(in_ch.data)
            return out_fired or in_fired
        if in_fired and not out_fired:
            self._items.append(in_ch.data)
            return True
        return False

    def flush(self, domain: int, min_iter: int) -> None:
        self._items = deque(
            t for t in self._items if not t.is_squashed_by(domain, min_iter)
        )

    def perf_model(self):
        return (0, self.depth)  # zero-latency when empty, depth slots

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def resource_params(self):
        return {"width": self.width, "depth": self.depth}


class Fifo(Component):
    """Depth-N opaque FIFO with single-cycle minimum latency."""

    resource_class = "fifo"
    observes_input_valid = False  # propagate drives from stored items only
    scheduling_contract_audited = True

    def __init__(self, name: str, depth: int, width: int = 32):
        super().__init__(name)
        if depth < 1:
            raise ValueError("fifo depth must be >= 1")
        self.depth = depth
        self.width = width
        self._items: Deque[Token] = deque()
        self._out_ch = None  # bound lazily after wiring

    def _bind(self):
        self._out_ch = self.outputs["out"]
        self._in_ch = self.inputs["in"]
        return self._out_ch

    def propagate(self) -> None:
        out_ch = self._out_ch or self._bind()
        items = self._items
        if items:
            out_ch.valid = True
            out_ch.data = items[0]
        if len(items) < self.depth or out_ch.ready:
            self._in_ch.ready = True

    def tick(self):
        out_ch = self._out_ch or self._bind()
        changed = False
        if self._items and out_ch.valid and out_ch.ready:
            self._items.popleft()
            changed = True
        in_ch = self._in_ch
        if in_ch.valid and in_ch.ready:
            self._items.append(in_ch.data)
            changed = True
        return changed

    def flush(self, domain: int, min_iter: int) -> None:
        self._items = deque(
            t for t in self._items if not t.is_squashed_by(domain, min_iter)
        )

    def perf_model(self):
        return (1, self.depth)  # registered FIFO: one cycle, depth slots

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def resource_params(self):
        return {"width": self.width, "depth": self.depth}
