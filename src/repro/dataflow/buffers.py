"""Elastic storage: opaque buffers and FIFOs.

* :class:`OpaqueBuffer` (OEHB) — one-slot registered buffer.  It cuts the
  combinational valid/data path, providing the storage that lets tokens
  live on loop back-edges.  ``ready`` is combinational: the slot is
  acceptable when empty or when its occupant leaves this cycle.
* :class:`Fifo` — depth-N opaque FIFO (Dynamatic's elastic FIFO).  Used to
  decouple the main pipeline from the PreVV arbiter ("we use a simple FIFO
  to cache data before it enters the arbiter", Sec. IV-A) and for slack on
  memory paths.

Both honour :meth:`flush`: tokens belonging to squashed iterations vanish,
modelling the pipeline flush that follows an erroneous premature operation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .component import Component
from .token import Token


class OpaqueBuffer(Component):
    """One-slot opaque elastic buffer (OEHB)."""

    resource_class = "oehb"

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width
        self._slot: Optional[Token] = None

    def propagate(self) -> None:
        if self._slot is not None:
            self.drive_out("out", self._slot)
        if self._slot is None or self.out_ready("out"):
            self.drive_ready("in", True)

    def tick(self) -> None:
        if self._slot is not None and self.outputs["out"].fires:
            self._slot = None
        in_ch = self.inputs["in"]
        if in_ch.fires:
            self._slot = in_ch.data

    def flush(self, domain: int, min_iter: int) -> None:
        if self._slot is not None and self._slot.is_squashed_by(domain, min_iter):
            self._slot = None

    @property
    def occupancy(self) -> int:
        return 0 if self._slot is None else 1

    @property
    def resource_params(self):
        return {"width": self.width}


class TransparentBuffer(Component):
    """One-slot transparent elastic buffer (TEHB).

    Cuts the combinational *ready* path: ``in.ready`` depends only on the
    slot state, never on ``out.ready``.  When empty, tokens pass through
    combinationally; when the consumer stalls, the token parks in the slot.
    An OEHB+TEHB pair on a loop back-edge breaks both the valid and the
    ready cycles, which is what lets a single token circulate with II = 1.
    """

    resource_class = "tehb"

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width
        self._slot: Optional[Token] = None

    def propagate(self) -> None:
        if self._slot is not None:
            self.drive_out("out", self._slot)
        elif self.in_valid("in"):
            self.drive_out("out", self.in_token("in"))
        if self._slot is None:
            self.drive_ready("in", True)

    def tick(self) -> None:
        out_fired = self.outputs["out"].fires
        in_ch = self.inputs["in"]
        if self._slot is None:
            if in_ch.fires and not out_fired:
                self._slot = in_ch.data
        elif out_fired:
            self._slot = None

    def flush(self, domain: int, min_iter: int) -> None:
        if self._slot is not None and self._slot.is_squashed_by(domain, min_iter):
            self._slot = None

    @property
    def occupancy(self) -> int:
        return 0 if self._slot is None else 1

    @property
    def resource_params(self):
        return {"width": self.width}


class TransparentFifo(Component):
    """Depth-N transparent FIFO: zero latency when empty, slack when stalled.

    The generalization of the TEHB to N slots: tokens pass through
    combinationally while the consumer keeps up and park in the FIFO when
    it stalls.  ``in.ready`` depends only on occupancy (state), so the
    ready path is cut.  Used as the slack Dynamatic's buffer placement
    inserts in front of memory ports, letting address computation run
    ahead of data computation.
    """

    resource_class = "fifo"

    def __init__(self, name: str, depth: int, width: int = 32):
        super().__init__(name)
        if depth < 1:
            raise ValueError("fifo depth must be >= 1")
        self.depth = depth
        self.width = width
        self._items: Deque[Token] = deque()

    def propagate(self) -> None:
        if self._items:
            self.drive_out("out", self._items[0])
        elif self.in_valid("in"):
            self.drive_out("out", self.in_token("in"))
        if len(self._items) < self.depth:
            self.drive_ready("in", True)

    def tick(self) -> None:
        out_fired = self.outputs["out"].fires
        in_fired = self.inputs["in"].fires
        if self._items:
            if out_fired:
                self._items.popleft()
            if in_fired:
                self._items.append(self.inputs["in"].data)
        elif in_fired and not out_fired:
            self._items.append(self.inputs["in"].data)

    def flush(self, domain: int, min_iter: int) -> None:
        self._items = deque(
            t for t in self._items if not t.is_squashed_by(domain, min_iter)
        )

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def resource_params(self):
        return {"width": self.width, "depth": self.depth}


class Fifo(Component):
    """Depth-N opaque FIFO with single-cycle minimum latency."""

    resource_class = "fifo"

    def __init__(self, name: str, depth: int, width: int = 32):
        super().__init__(name)
        if depth < 1:
            raise ValueError("fifo depth must be >= 1")
        self.depth = depth
        self.width = width
        self._items: Deque[Token] = deque()

    def propagate(self) -> None:
        if self._items:
            self.drive_out("out", self._items[0])
        if len(self._items) < self.depth or self.out_ready("out"):
            self.drive_ready("in", True)

    def tick(self) -> None:
        if self._items and self.outputs["out"].fires:
            self._items.popleft()
        in_ch = self.inputs["in"]
        if in_ch.fires:
            self._items.append(in_ch.data)

    def flush(self, domain: int, min_iter: int) -> None:
        self._items = deque(
            t for t in self._items if not t.is_squashed_by(domain, min_iter)
        )

    @property
    def occupancy(self) -> int:
        return len(self._items)

    @property
    def resource_params(self):
        return {"width": self.width, "depth": self.depth}
