"""Cycle-accurate simulation of elastic circuits.

Each cycle has two phases:

1. **Combinational fixpoint** — channel signals are reset, then components'
   :meth:`propagate` methods run until no signal changes.  Because all
   handshake logic is monotone (valid/ready only rise within a cycle), the
   iteration reaches the unique least fixpoint regardless of evaluation
   order.  The engine exploits that freedom: components are evaluated once
   in a **statically levelized order** (topological over the valid
   network, computed by :mod:`repro.dataflow.schedule` at construction),
   which settles the forward valid/data wave in a single sweep; the
   backward ready wave and any cyclic residue are finished by a
   dirty worklist that re-evaluates exactly the components whose watched
   signals changed, draining in *schedule-position order* (a binary heap
   keyed by the levelized position): when several components are dirty,
   the most-upstream one runs first, so one re-evaluation wave settles
   reconvergent fan-out instead of bouncing each component once per
   predecessor.  Signal state is *slotted*: every
   channel owns an integer slot in flat last-seen arrays, so change
   detection is list indexing instead of per-round dict/tuple snapshots.

2. **Clock edge** — statistics are recorded (skipped entirely when the
   simulator was built with ``collect_stats=False``) and every stateful
   component's :meth:`tick` commits sequential state.  The components that
   actually override :meth:`tick`, and those whose :attr:`is_busy` can
   ever be true, are cached at construction so the per-cycle loops touch
   no dead weight.

The fixpoint this engine reaches is bit-identical to the seed worklist
algorithm, which is preserved as
:class:`repro.dataflow.reference.ReferenceSimulator` and pinned by the
equivalence suite in ``tests/dataflow/test_engine_equivalence.py``.

The simulator also provides the deadlock detector used to demonstrate the
paper's Fig. 6 scenario: if no channel fires and no component reports
internal progress for ``deadlock_window`` consecutive cycles, a
:class:`~repro.errors.DeadlockError` is raised with the set of stalled
channels (valid-but-not-ready), which is exactly the observable signature
of a premature-queue deadlock.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional

from ..errors import ConvergenceError, DeadlockError, SimulationError
from .arith import Operator
from .component import Component
from .circuit import Circuit
from .schedule import levelize, ready_network_acyclic


class SimulationStats:
    """Aggregate counters for one simulation run."""

    def __init__(self):
        self.cycles = 0
        self.transfers = 0
        self.propagate_calls = 0
        self.squashes = 0
        self.squashed_iterations = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SimulationStats({self.as_dict()})"


def _overrides(comp: Component, name: str) -> bool:
    """True when ``comp`` overrides ``Component.<name>`` (class or instance)."""
    if name in comp.__dict__:  # instance-level monkey patch (tests do this)
        return True
    return getattr(type(comp), name) is not getattr(Component, name)


class Simulator:
    """Drives a :class:`Circuit` cycle by cycle."""

    def __init__(
        self,
        circuit: Circuit,
        max_cycles: int = 1_000_000,
        deadlock_window: int = 256,
        fixpoint_cap: int = 10_000,
        trace=None,
        collect_stats: bool = True,
        incremental: Optional[bool] = None,
    ):
        self.circuit = circuit
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.fixpoint_cap = fixpoint_cap
        self.trace = trace
        self.collect_stats = collect_stats
        #: None = auto (incremental when sound), False = force classic
        #: levelized, True = request incremental (still clamped to the
        #: soundness conditions — it silently degrades, never breaks).
        self._incremental_request = incremental
        self.stats = SimulationStats()
        self._quiet_cycles = 0
        #: callables invoked after every clock edge (e.g. squash execution)
        self.end_of_cycle_hooks: List[Callable[[], None]] = []
        #: optional fail-fast predicate checked once per cycle by run();
        #: returning True ends the run immediately (PVSan uses this to
        #: stop a sanitized simulation at the first oracle error instead
        #: of running a corrupted circuit to completion).
        self.abort_condition: Optional[Callable[[], bool]] = None
        circuit.validate()
        self._build_schedule()

    # ------------------------------------------------------------------
    # Static schedule construction
    # ------------------------------------------------------------------
    def _build_schedule(self) -> None:
        circuit = self.circuit
        self._channels = list(circuit.channels)
        self.schedule = levelize(circuit)
        order = self.schedule.order
        self._order = order
        pos_of = {id(c): i for i, c in enumerate(order)}

        # Slotted signal state: channel i owns slot i of the flat last-seen
        # arrays below.  A component's evaluation can only change signals it
        # drives — valid/data on its outputs, ready on its inputs — so the
        # per-component watch lists pair each driven channel with the slot
        # to diff against and the position of the single component that
        # reads the signal (the consumer for valid/data, the producer for
        # ready).  A reader that declares it never looks at the signal
        # (``observes_input_valid`` / ``observes_output_ready`` False) gets
        # no wake target at all: its outputs cannot change, so re-running
        # it would be pure waste.  Entries are split statically into *wake*
        # lists (diff against last-seen, enqueue the reader on change) and
        # *record* lists (unconditional last-seen update, no compare) —
        # during the levelized sweep a reader positioned later needs no
        # wake because the sweep has not reached it yet.
        slot_of = {id(ch): s for s, ch in enumerate(self._channels)}
        sweep_plan = []
        drain_plan = []
        props = []
        for pos, comp in enumerate(order):
            ow, orc, iw, irc = [], [], [], []  # sweep-phase lists
            dow, dorc, diw, dirc = [], [], [], []  # drain-phase lists
            for ch in comp.outputs.values():
                s = slot_of[id(ch)]
                cons = ch.consumer
                if cons is not None and cons.observes_input_valid:
                    tgt = pos_of[id(cons)]
                    dow.append((ch, s, tgt))
                    if tgt <= pos:
                        ow.append((ch, s, tgt))
                    else:
                        orc.append((ch, s))
                else:
                    dorc.append((ch, s))
                    orc.append((ch, s))
            for ch in comp.inputs.values():
                s = slot_of[id(ch)]
                prod = ch.producer
                if prod is not None and prod.observes_output_ready:
                    tgt = pos_of[id(prod)]
                    diw.append((ch, s, tgt))
                    if tgt <= pos:
                        iw.append((ch, s, tgt))
                    else:
                        irc.append((ch, s))
                else:
                    dirc.append((ch, s))
                    irc.append((ch, s))
            # The component itself goes into the plan (not a prebound
            # method): tests swap instance-level propagate overrides in
            # and out after the Simulator is built.
            sweep_plan.append(
                (comp, tuple(ow), tuple(orc), tuple(iw), tuple(irc))
            )
            drain_plan.append(
                (tuple(dow), tuple(dorc), tuple(diw), tuple(dirc))
            )
        self._sweep_plan = sweep_plan
        self._drain_plan = drain_plan
        # Signals each component drives, for the incremental engine's
        # clear-before-eval (outputs' valid/data, inputs' ready).
        self._driven = [
            (tuple(c.outputs.values()), tuple(c.inputs.values()))
            for c in order
        ]

        n = len(self._channels)
        self._last_valid = bytearray(n)
        self._last_ready = bytearray(n)
        self._last_data: List = [None] * n
        self._zeros = bytes(n)
        self._nones: List = [None] * n
        self._queued = bytearray(len(order))
        # Dirty worklist: a min-heap of schedule positions (deduplicated
        # by the _queued byte array), so draining always evaluates the
        # most-upstream dirty component first.
        self._worklist: List[int] = []

        # Per-cycle loops only visit components that can do anything there.
        comps = circuit.components
        self._tick_comps = [
            c
            for c in comps
            if _overrides(c, "tick")
            and not (
                isinstance(c, Operator)
                and "tick" not in c.__dict__
                and c.latency == 0
            )
        ]
        self._busy_comps = [c for c in comps if _overrides(c, "is_busy")]
        self._tick_plan = [(c, pos_of[id(c)]) for c in self._tick_comps]

        # Incremental (cross-cycle event-driven) mode: settled signals
        # persist between cycles and only components whose watched inputs
        # or internal state changed are re-evaluated.  Chaotic relaxation
        # from last cycle's fixpoint is only guaranteed to reach the same
        # fixpoint as a from-reset evaluation when the per-signal
        # dependence graph is acyclic: the valid network must levelize
        # without residue and the ready network must be cut by TEHBs
        # (``ready_network_acyclic``).  Stats mode keeps the classic
        # engine — tests that monkey-patch propagate mid-run rely on
        # every-cycle re-evaluation.
        self._use_incremental = (
            self._incremental_request is not False
            and not self.collect_stats
            and not self.schedule.cyclic
            and ready_network_acyclic(circuit)
        )
        self._all_dirty = True

    @property
    def engine_name(self) -> str:
        """Which interpreted evaluation strategy this instance runs."""
        return "incremental" if self._use_incremental else "levelized"

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------
    def _fixpoint(self) -> None:
        channels = self._channels
        lv = self._last_valid
        lr = self._last_ready
        ld = self._last_data
        for ch in channels:
            ch.valid = False
            ch.ready = False
            ch.data = None
        lv[:] = self._zeros
        lr[:] = self._zeros
        ld[:] = self._nones

        queued = self._queued
        worklist = self._worklist
        calls = len(self._sweep_plan)

        # Phase 1: one levelized sweep.  The topological order means a
        # changed signal whose reader comes later needs no bookkeeping —
        # only readers already behind us go on the worklist (the wake
        # lists), everything else just records its last-seen value.
        for comp, ow, orc, iw, irc in self._sweep_plan:
            comp.propagate()
            for ch, s, tgt in ow:
                v = ch.valid
                d = ch.data
                if v != lv[s] or (d is not ld[s] and d != ld[s]):
                    lv[s] = v
                    ld[s] = d
                    if not queued[tgt]:
                        queued[tgt] = 1
                        heappush(worklist, tgt)
            for ch, s in orc:
                lv[s] = ch.valid
                ld[s] = ch.data
            for ch, s, tgt in iw:
                r = ch.ready
                if r != lr[s]:
                    lr[s] = r
                    if not queued[tgt]:
                        queued[tgt] = 1
                        heappush(worklist, tgt)
            for ch, s in irc:
                lr[s] = ch.ready

        # Phase 2: drain the dirty worklist (backward ready chains and the
        # cyclic residue).  Monotonicity bounds the number of rises, but a
        # buggy non-monotone component could oscillate — cap the drain.
        order = self._order
        drain_plan = self._drain_plan
        cap = max(self.fixpoint_cap, 4 * calls)
        drained = 0
        while worklist:
            drained += 1
            if drained > cap:
                self.stats.propagate_calls += calls + drained
                raise ConvergenceError(
                    f"{self.circuit.name}: combinational fixpoint did not "
                    f"settle within {cap} re-evaluations at cycle "
                    f"{self.stats.cycles}"
                )
            pos = heappop(worklist)
            queued[pos] = 0
            order[pos].propagate()
            dow, dorc, diw, dirc = drain_plan[pos]
            for ch, s, tgt in dow:
                v = ch.valid
                d = ch.data
                if v != lv[s] or (d is not ld[s] and d != ld[s]):
                    lv[s] = v
                    ld[s] = d
                    if not queued[tgt]:
                        queued[tgt] = 1
                        heappush(worklist, tgt)
            for ch, s in dorc:
                lv[s] = ch.valid
                ld[s] = ch.data
            for ch, s, tgt in diw:
                r = ch.ready
                if r != lr[s]:
                    lr[s] = r
                    if not queued[tgt]:
                        queued[tgt] = 1
                        heappush(worklist, tgt)
            for ch, s in dirc:
                lr[s] = ch.ready
        self.stats.propagate_calls += calls + drained

    def _fixpoint_incremental(self) -> None:
        """Settle the cycle starting from last cycle's fixpoint.

        No reset: settled signals persist and the worklist was seeded at
        the previous clock edge with the components whose tick changed
        state.  Each evaluation *clears* the component's driven signals
        first (so dropped valids/readys actually fall), re-propagates,
        and wakes the readers of whatever changed.  Sound only under the
        acyclicity conditions checked at construction (see
        ``_use_incremental``).
        """
        if self._all_dirty:
            # Cold start, or an end-of-cycle hook (squash) mutated circuit
            # state behind the engine's back: one full from-reset sweep.
            # It also drains any tick-seeded worklist entries.
            self._all_dirty = False
            self._fixpoint()
            return
        lv = self._last_valid
        lr = self._last_ready
        ld = self._last_data
        queued = self._queued
        worklist = self._worklist
        order = self._order
        drain_plan = self._drain_plan
        driven = self._driven
        cap = max(self.fixpoint_cap, 4 * len(order))
        drained = 0
        while worklist:
            drained += 1
            if drained > cap:
                self.stats.propagate_calls += drained
                raise ConvergenceError(
                    f"{self.circuit.name}: combinational fixpoint did not "
                    f"settle within {cap} re-evaluations at cycle "
                    f"{self.stats.cycles}"
                )
            pos = heappop(worklist)
            queued[pos] = 0
            outs, ins = driven[pos]
            for ch in outs:
                ch.valid = False
                ch.data = None
            for ch in ins:
                ch.ready = False
            order[pos].propagate()
            dow, dorc, diw, dirc = drain_plan[pos]
            for ch, s, tgt in dow:
                v = ch.valid
                d = ch.data
                if v != lv[s] or (d is not ld[s] and d != ld[s]):
                    lv[s] = v
                    ld[s] = d
                    if not queued[tgt]:
                        queued[tgt] = 1
                        heappush(worklist, tgt)
            for ch, s in dorc:
                lv[s] = ch.valid
                ld[s] = ch.data
            for ch, s, tgt in diw:
                r = ch.ready
                if r != lr[s]:
                    lr[s] = r
                    if not queued[tgt]:
                        queued[tgt] = 1
                        heappush(worklist, tgt)
            for ch, s in dirc:
                lr[s] = ch.ready
        self.stats.propagate_calls += drained

    def step(self) -> int:
        """Simulate one cycle; returns the number of channel transfers."""
        incremental = self._use_incremental
        if incremental:
            self._fixpoint_incremental()
        else:
            self._fixpoint()
        fired = 0
        if self.collect_stats:
            for chan in self._channels:
                chan.record_stats()
                if chan.valid and chan.ready:
                    fired += 1
        else:
            # The last-seen arrays mirror the settled signals: count fires
            # without touching a single Channel object (1-valued bytes).
            fired = bin(
                int.from_bytes(bytes(self._last_valid), "big")
                & int.from_bytes(bytes(self._last_ready), "big")
            ).count("1")
        if self.trace is not None:
            self.trace.capture(self.circuit, self.stats.cycles)
        if incremental:
            queued = self._queued
            worklist = self._worklist
            for comp, pos in self._tick_plan:
                if comp.tick() is not False and not queued[pos]:
                    queued[pos] = 1
                    heappush(worklist, pos)
            for hook in self.end_of_cycle_hooks:
                if hook():
                    self._all_dirty = True
        else:
            for comp in self._tick_comps:
                comp.tick()
            for hook in self.end_of_cycle_hooks:
                hook()
        self.stats.cycles += 1
        self.stats.transfers += fired
        return fired

    # ------------------------------------------------------------------
    # Full runs
    # ------------------------------------------------------------------
    def run(self, done: Callable[[], bool]) -> SimulationStats:
        """Run until ``done()`` is true; raise on deadlock or cycle budget."""
        self._quiet_cycles = 0
        while not done():
            if self.abort_condition is not None and self.abort_condition():
                return self.stats
            if self.stats.cycles >= self.max_cycles:
                raise SimulationError(
                    f"{self.circuit.name}: exceeded {self.max_cycles} cycles "
                    "without completing"
                )
            fired = self.step()
            busy = fired > 0 or any(c.is_busy for c in self._busy_comps)
            if busy:
                self._quiet_cycles = 0
            else:
                self._quiet_cycles += 1
                if self._quiet_cycles >= self.deadlock_window:
                    self._raise_deadlock()
        return self.stats

    def run_cycles(self, n: int) -> SimulationStats:
        """Run exactly ``n`` cycles (no completion/deadlock checks)."""
        for _ in range(n):
            self.step()
        return self.stats

    def _raise_deadlock(self) -> None:
        stuck = [c for c in self.circuit.channels if c.valid and not c.ready]
        names = ", ".join(c.name for c in stuck[:8])
        more = "" if len(stuck) <= 8 else f" (+{len(stuck) - 8} more)"
        raise DeadlockError(
            f"{self.circuit.name}: no progress for {self.deadlock_window} cycles "
            f"at cycle {self.stats.cycles}; stalled channels: {names}{more}",
            stuck_channels=stuck,
        )


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
#: engines make_simulator accepts; "auto" prefers compiled when eligible.
ENGINES = ("auto", "compiled", "vector", "incremental", "levelized",
           "reference")


def make_simulator(
    circuit: Circuit,
    engine: str = "auto",
    max_cycles: int = 1_000_000,
    deadlock_window: int = 256,
    fixpoint_cap: int = 10_000,
    trace=None,
    collect_stats: bool = False,
    count_transfers: bool = False,
):
    """Build the best simulator for ``circuit`` under one engine policy.

    ``engine``:

    * ``"auto"`` — the compiled engine when eligible (no trace, no
      per-channel stats, circuit accepted by the compiler), otherwise
      the interpreted :class:`Simulator` with its own auto-selection.
    * ``"compiled"`` — request the compiled engine, but *fall back* to
      the interpreted engine when the compiler declines (callers must
      read ``sim.engine_name`` for the engine actually used — this is
      what the bench/eval layers record per point).
    * ``"vector"`` — request the lockstep vector engine (a batch of 1
      here; ``run_batch`` uses the same engine at full width), falling
      back to compiled and then interpreted when it declines.
    * ``"incremental"`` / ``"levelized"`` — the interpreted engine with
      the cross-cycle event-driven path requested/disabled.
    * ``"reference"`` — the seed worklist oracle.

    ``count_transfers`` asks for per-channel transfer counts; the
    compiled engine supplies them via its fused counters, the
    interpreted fallbacks via full ``collect_stats``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if engine == "reference":
        from .reference import ReferenceSimulator

        return ReferenceSimulator(
            circuit,
            max_cycles=max_cycles,
            deadlock_window=deadlock_window,
            fixpoint_cap=fixpoint_cap,
            trace=trace,
            collect_stats=True if count_transfers else collect_stats,
        )
    if engine == "vector" and trace is None and not collect_stats:
        from ..errors import VectorUnsupportedError
        from .vector import VectorSimulator

        try:
            return VectorSimulator(
                circuit,
                max_cycles=max_cycles,
                deadlock_window=deadlock_window,
                fixpoint_cap=fixpoint_cap,
                count_transfers=count_transfers,
            )
        except VectorUnsupportedError:
            pass  # compiled fallback below
    if (
        engine in ("auto", "compiled", "vector")
        and trace is None
        and not collect_stats
    ):
        from .codegen import CodegenUnsupportedError, CompiledSimulator

        try:
            return CompiledSimulator(
                circuit,
                max_cycles=max_cycles,
                deadlock_window=deadlock_window,
                fixpoint_cap=fixpoint_cap,
                count_transfers=count_transfers,
            )
        except CodegenUnsupportedError:
            pass  # interpreted fallback below
    incremental: Optional[bool] = None
    if engine == "incremental":
        incremental = True
    elif engine == "levelized":
        incremental = False
    return Simulator(
        circuit,
        max_cycles=max_cycles,
        deadlock_window=deadlock_window,
        fixpoint_cap=fixpoint_cap,
        trace=trace,
        collect_stats=True if count_transfers else collect_stats,
        incremental=incremental,
    )
