"""Elastic dataflow-circuit substrate: components, channels, simulator.

This package implements the latency-insensitive circuit model that
Dynamatic-generated VHDL implements on the FPGA: handshaked channels,
eager forks, merges/muxes/branches for control-flow routing, elastic
buffers/FIFOs for storage, and pipelined operators — plus a two-phase
cycle-accurate simulator.
"""

from .token import Token, combine, merge_tags
from .channel import Channel
from .component import Component
from .primitives import Constant, Entry, Fork, Join, Sink, Source
from .routing import Branch, ControlMerge, Merge, Mux, Select
from .buffers import Fifo, OpaqueBuffer, TransparentBuffer, TransparentFifo
from .arith import OP_TABLE, Operator
from .circuit import Circuit
from .schedule import (
    LevelSchedule,
    levelize,
    strongly_connected_components,
    token_flow_adjacency,
    valid_dependence_edges,
)
from .simulator import ENGINES, SimulationStats, Simulator, make_simulator
from .reference import ReferenceSimulator
from .codegen import (
    CompiledPlan,
    CompiledSimulator,
    class_support,
    clear_plan_cache,
    emitted_source,
    plan_cache_stats,
    plan_for,
    why_not_compilable,
)
from .vector import (
    VectorBatch,
    VectorPlan,
    VectorSimulator,
    clear_vector_plan_cache,
    vector_plan_cache_stats,
    vector_plan_for,
    why_not_vectorizable,
)
from .tracing import ChannelTrace, OrderTrace
from .visualize import to_dot

__all__ = [
    "Token",
    "combine",
    "merge_tags",
    "Channel",
    "Component",
    "Entry",
    "Source",
    "Sink",
    "Constant",
    "Fork",
    "Join",
    "Merge",
    "ControlMerge",
    "Mux",
    "Branch",
    "Select",
    "OpaqueBuffer",
    "TransparentBuffer",
    "TransparentFifo",
    "Fifo",
    "Operator",
    "OP_TABLE",
    "Circuit",
    "LevelSchedule",
    "levelize",
    "strongly_connected_components",
    "token_flow_adjacency",
    "valid_dependence_edges",
    "Simulator",
    "SimulationStats",
    "ReferenceSimulator",
    "CompiledSimulator",
    "CompiledPlan",
    "make_simulator",
    "ENGINES",
    "class_support",
    "why_not_compilable",
    "plan_for",
    "plan_cache_stats",
    "clear_plan_cache",
    "emitted_source",
    "VectorBatch",
    "VectorPlan",
    "VectorSimulator",
    "why_not_vectorizable",
    "vector_plan_for",
    "vector_plan_cache_stats",
    "clear_vector_plan_cache",
    "ChannelTrace",
    "OrderTrace",
    "to_dot",
]
