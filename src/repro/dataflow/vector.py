"""Lockstep vector engine: N same-structure simulations per sweep.

The compiled engine (:mod:`repro.dataflow.codegen`) removed per-cycle
dispatch but still executes scalar bytecode per simulation.  This module
runs a *batch* of B circuits that share one :func:`structural_key` in
lockstep: every channel signal becomes one slot of a *lane plane* — a
Python integer whose bit ``l`` is lane ``l``'s value — so one bitwise
operation advances all B simulations at once.  (The issue sketch says
"one ``(B,)`` array per signal slot"; packed integer planes are the same
layout with the batch dimension in the bits of one machine word per 64
lanes, which beats dtype=bool ndarrays for B ≤ a few hundred because a
full plane op is *one* interpreter dispatch.  numpy is still used where
arrays win: decoding the per-channel transfer counters at the end of a
run and aggregating per-lane results.)

Plane layout per channel ``ci``::

    V[ci]   valid plane            R[ci]  ready plane
    F[ci]   fired plane (V & R & active)
    D[ci]   per-lane token list    DCH[ci] "data identity changed" plane

Token *data* stays per-lane (a list of Token refs per channel): data-
dependent work — combine calls, select decode, branch steering — runs in
per-lane loops that are *dirty-gated*, i.e. proportional to actual token
traffic, while the valid/ready/fire waves are pure plane arithmetic.

Change-propagation protocol (mirrors the compiled sweep exactly):

* ``DCH[ci]`` is assigned exactly once per cycle, at the producer's
  phase-1 position.  Levelization orders every valid-observing consumer
  after its producer, so forward consumers read a fresh plane; backward
  (state-edge) consumers read last cycle's plane — the same one-cycle-
  stale values the compiled schedule gives them.
* Each data op recomputes lane ``l`` when an input's DCH bit is set, its
  activation rose this cycle, or the lane was force-marked (cold start /
  squash flush).  Recomputation goes through the same per-component
  identity caches the compiled templates use, so the sequence of cache
  mutations — hence every token identity — is bit-identical.
* The five stateful subsystems (PreVVUnit / MemoryController /
  LoadStoreQueue / ControlMerge / DomainGate) run as real per-lane
  objects behind an event gate: propagate is re-driven for a lane only
  when an input valid/data changed, its own tick reported a state
  change, or (phase 2) an output ready changed; ticks run only for
  lanes with adjacent channel activity, a truthy previous tick, a
  squash flush, or ``is_busy`` — the change-report contract the PV207
  audit marker certifies.

Finished lanes retire from the active plane without stalling the rest;
a retired lane's channel objects are left exactly as the compiled
engine leaves them (valid=False, data=None).

Public surface: :func:`why_not_vectorizable`, :class:`VectorPlan` /
:func:`vector_plan_for` (cached per structural key), :class:`VectorBatch`
(the B-lane engine), :class:`VectorSimulator` (B=1 adapter used by
``make_simulator(engine="vector")``).
"""
from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import DeadlockError, SimulationError, VectorUnsupportedError
from .circuit import Circuit
from .codegen import (
    _CALLED,
    _INLINE,
    _class_key,
    plan_for,
    structural_key,
    why_not_compilable,
)
from .schedule import levelize
from .simulator import SimulationStats, _overrides
from .token import Token, combine

try:  # numpy is only needed to decode counters / aggregate results
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a pinned dependency
    _np = None

VECTOR_VERSION = 1

#: Inline tags whose flush the engine mirrors itself (their state is
#: shadowed in lane planes); everything else flushes the real object.
_ENGINE_FLUSHED = frozenset(
    {"fork", "operator", "oehb", "tehb", "tfifo", "fifo"}
)

#: Inline classes known to override flush.  A new inline class with an
#: unmirrored flush must decline vectorization rather than silently
#: desync the planes during a squash.
_FLUSH_OVERRIDING_TAGS = _ENGINE_FLUSHED | {"sink"}


def why_not_vectorizable(circuit: Circuit) -> Optional[str]:
    """First reason ``circuit`` cannot run on the vector engine, or None.

    The vector engine reuses the compiled engine's audited component
    set and acyclic schedule, so its restrictions are a superset of
    :func:`repro.dataflow.codegen.why_not_compilable` plus numpy
    availability (needed for counter decode / result aggregation).
    """
    if _np is None:  # pragma: no cover - numpy is a pinned dependency
        return "numpy is not importable (required by the vector engine)"
    reason = why_not_compilable(circuit)
    if reason is not None:
        return reason
    for comp in circuit.components:
        tag = _INLINE.get(_class_key(type(comp)))
        if tag is None:
            continue
        if _overrides(comp, "flush") and tag not in _FLUSH_OVERRIDING_TAGS:
            return (
                f"component {comp.name!r}: inline class with a flush "
                "override the vector engine does not mirror"
            )
    return None


# ----------------------------------------------------------------------
# Plan cache (shares the structural_key space with the codegen cache)
# ----------------------------------------------------------------------
class VectorPlan:
    """Structure-level schedule shared by every batch of one key.

    Holds component-index orders (phase 1 = levelized, phase 2 = the
    compiled engine's Kahn ready order) and the compiled plan's
    ``n_evals`` so per-lane ``propagate_calls`` match the compiled
    engine exactly.
    """

    __slots__ = ("key", "ph1_idx", "ph2_idx", "n_evals")

    def __init__(self, key, ph1_idx, ph2_idx, n_evals):
        self.key = key
        self.ph1_idx = ph1_idx
        self.ph2_idx = ph2_idx
        self.n_evals = n_evals


_VPLAN_CACHE: Dict[Tuple, VectorPlan] = {}
_VCACHE_STATS = {"hits": 0, "misses": 0}


def vector_plan_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the vector-plan cache (for tests/benchmarks)."""
    return dict(_VCACHE_STATS)


def clear_vector_plan_cache() -> None:
    """Drop all cached vector plans and reset the counters."""
    _VPLAN_CACHE.clear()
    _VCACHE_STATS["hits"] = 0
    _VCACHE_STATS["misses"] = 0


def _phase2_idx(circuit: Circuit, xidx: Dict[int, int], tag) -> List[int]:
    """Component-index replica of ``_StepEmitter._phase2_order``."""
    comps = list(circuit.components)
    nodes = [c for c in comps if c.inputs and tag.get(id(c)) != "sink"]
    node_ids = {id(c) for c in nodes}
    succs: Dict[int, List] = {id(c): [] for c in nodes}
    indeg: Dict[int, int] = {id(c): 0 for c in nodes}
    for c in nodes:
        if not c.observes_output_ready:
            continue
        seen = set()
        for ch in c.outputs.values():
            u = ch.consumer
            if u is None or id(u) not in node_ids or id(u) in seen:
                continue
            if u is c:
                continue
            seen.add(id(u))
            succs[id(u)].append(c)
            indeg[id(c)] += 1
    heap = [xidx[id(c)] for c in nodes if indeg[id(c)] == 0]
    heapq.heapify(heap)
    order: List[int] = []
    while heap:
        i = heapq.heappop(heap)
        order.append(i)
        for succ in succs[id(comps[i])]:
            indeg[id(succ)] -= 1
            if indeg[id(succ)] == 0:
                heapq.heappush(heap, xidx[id(succ)])
    if len(order) != len(nodes):  # pragma: no cover - caught by why_not
        raise VectorUnsupportedError(
            f"{circuit.name}: ready network left a cyclic residue"
        )
    return order


def vector_plan_for(circuit: Circuit) -> VectorPlan:
    """Cached :class:`VectorPlan` for ``circuit``'s structure."""
    key = structural_key(circuit)
    plan = _VPLAN_CACHE.get(key)
    if plan is not None:
        _VCACHE_STATS["hits"] += 1
        return plan
    _VCACHE_STATS["misses"] += 1
    comps = list(circuit.components)
    xidx = {id(c): i for i, c in enumerate(comps)}
    tag = {id(c): _INLINE.get(_class_key(type(c))) for c in comps}
    ph1_idx = [xidx[id(c)] for c in levelize(circuit).order]
    ph2_idx = _phase2_idx(circuit, xidx, tag)
    n_evals = plan_for(circuit, False).n_evals
    plan = VectorPlan(key, ph1_idx, ph2_idx, n_evals)
    _VPLAN_CACHE[key] = plan
    return plan


# ----------------------------------------------------------------------
# The batch engine
# ----------------------------------------------------------------------
class VectorBatch:
    """Runs B same-structure circuits in lockstep.

    Each lane keeps its own circuit (its own component/channel objects,
    memory, PreVV units, ...); the engine shadows every channel signal
    in lane planes and keeps per-lane object state — buffer slots, FIFO
    deques, operator pipes — as the architectural truth, so done
    conditions, squash flushes and deadlock diagnostics read real
    objects by construction.

    One-shot: build, optionally :meth:`add_hook` per lane, then
    :meth:`run` once with one done condition per lane.
    """

    def __init__(
        self,
        circuits: List[Circuit],
        max_cycles: int = 1_000_000,
        deadlock_window: int = 256,
        count_transfers: bool = False,
    ):
        circuits = list(circuits)
        if not circuits:
            raise ValueError("VectorBatch needs at least one circuit")
        if len({id(c) for c in circuits}) != len(circuits):
            raise VectorUnsupportedError(
                "each lane needs its own circuit instance"
            )
        first = circuits[0]
        reason = why_not_vectorizable(first)
        if reason is not None:
            raise VectorUnsupportedError(f"{first.name}: {reason}")
        self.plan = vector_plan_for(first)
        for c in circuits[1:]:
            if structural_key(c) != self.plan.key:
                raise VectorUnsupportedError(
                    f"{c.name}: structure differs from {first.name} "
                    "(one VectorBatch runs one structural key; group "
                    "mixed batches by structural_key first)"
                )
        for c in circuits:
            c.validate()
        self.circuits = circuits
        self.B = B = len(circuits)
        self.FULL = (1 << B) - 1
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.count_transfers = count_transfers

        nch = len(first.channels)
        self._nch = nch
        comps = list(first.components)
        self._comps = comps
        lane_chs = [list(c.channels) for c in circuits]
        lane_xs = [list(c.components) for c in circuits]
        #: [channel][lane] -> Channel object / [comp][lane] -> Component
        self.chobj = [[lane_chs[l][ci] for l in range(B)] for ci in range(nch)]
        self.xobj = [
            [lane_xs[l][xi] for l in range(B)] for xi in range(len(comps))
        ]

        self.V = [0] * nch
        self.R = [0] * nch
        self.F = [0] * nch
        self.DCH = [0] * nch
        self.D: List[List] = [[None] * B for _ in range(nch)]
        self.ACT = [self.FULL]
        self.FORCE = [self.FULL]
        self._anyv = 0
        self._fany = 0
        self._tplanes: List[List[int]] = [[] for _ in range(nch)]
        self.cycles = 0
        self.lane_cycles = [0] * B
        self.hooks: List[List[Callable]] = [[] for _ in range(B)]
        self.stats: List[SimulationStats] = [SimulationStats() for _ in range(B)]
        self._quiet = [0] * B
        self._nzq = 0

        self._cidx = {id(ch): i for i, ch in enumerate(first.channels)}
        self._tag = {
            i: _INLINE.get(_class_key(type(c))) for i, c in enumerate(comps)
        }
        xidx = {id(c): i for i, c in enumerate(comps)}
        self._sink_chs = [
            self._cidx[id(ch)]
            for ch in first.channels
            if ch.consumer is not None
            and self._tag[xidx[id(ch.consumer)]] == "sink"
        ]
        self._build()

    # -- helpers ---------------------------------------------------------
    def _ci(self, ch) -> int:
        return self._cidx[id(ch)]

    # -- construction ----------------------------------------------------
    def _build(self) -> None:
        B = self.B
        FULL = self.FULL
        D = self.D
        comps = self._comps
        tag = self._tag
        plan = self.plan

        # Sink inputs are unconditionally ready (compiled folds the
        # constant and pins it in the prologue).
        for ci in self._sink_chs:
            self.R[ci] = FULL
            for ch in self.chobj[ci]:
                ch.ready = True

        # Aliasing pass, in levelized order so producers resolve first:
        # fork outputs share the input's token list, branch's two
        # outputs share one list (compiled writes the same _o to
        # whichever side is taken).
        for xi in plan.ph1_idx:
            c = comps[xi]
            t = tag[xi]
            if t == "fork":
                i = self._ci(c.inputs["in"])
                for k in range(c.n_outputs):
                    D[self._ci(c.outputs[f"out{k}"])] = D[i]
            elif t == "branch":
                shared: List = [None] * B
                D[self._ci(c.outputs["true"])] = shared
                D[self._ci(c.outputs["false"])] = shared

        builders = {
            "entry": self._b_entry,
            "source": self._b_source,
            "sink": self._b_sink,
            "constant": self._b_constant,
            "fork": self._b_fork,
            "join": self._b_join,
            "merge": self._b_merge,
            "mux": self._b_mux,
            "branch": self._b_branch,
            "select": self._b_select,
            "operator": self._b_operator,
            "oehb": self._b_oehb,
            "tehb": self._b_tehb,
            "tfifo": self._b_tfifo,
            "fifo": self._b_fifo,
            "pair_packer": self._b_pair_packer,
            "fake_gen": self._b_fake_gen,
            "done_gen": self._b_done_gen,
        }
        self._outsync: List[List] = []  # [ci, chobj row, [shadow]]
        self._opbusy: List[Tuple[List[int], List[int]]] = []
        self._realbusy: List[List] = []
        per: Dict[int, Dict[str, Callable]] = {}
        for xi in range(len(comps)):
            t = tag[xi]
            if t is None:
                per[xi] = self._b_called(xi, comps[xi])
            else:
                per[xi] = builders[t](xi, comps[xi])
            if _overrides(comps[xi], "is_busy") and t != "operator":
                self._realbusy.append(self.xobj[xi])

        self._ph1 = [
            per[xi]["ph1"] for xi in plan.ph1_idx if per[xi].get("ph1")
        ]
        self._ph2 = [
            per[xi]["ph2"] for xi in plan.ph2_idx if per[xi].get("ph2")
        ]
        ticks: List[Callable] = []
        for xi, c in enumerate(comps):
            if not _overrides(c, "tick"):
                continue
            if tag[xi] == "operator" and c.latency == 0:
                continue
            tk = per[xi].get("tick")
            if tk is not None:
                ticks.append(tk)
        self._ticks = ticks
        self._flushers = [per[xi].get("flush") for xi in range(len(comps))]

    # -- per-class builders ---------------------------------------------
    # Each returns {"ph1": fn, "ph2": fn, "tick": fn, "flush": fn} with
    # any subset present.  Closures bind planes/cells via default args.

    def _b_entry(self, xi, c):
        V, D, F, DCH, FULL = self.V, self.D, self.F, self.DCH, self.FULL
        o = self._ci(c.outputs["out"])
        Do = D[o]
        objs = self.xobj[xi]
        em = 0
        for lane, x in enumerate(objs):
            if x._token is None:
                x._token = Token(x.value)
            Do[lane] = x._token
            if x._emitted:
                em |= 1 << lane
        cell = [em]

        def ph1(o=o, cell=cell):
            V[o] = FULL ^ cell[0]
            DCH[o] = 0

        def tick(o=o, cell=cell, objs=objs):
            m = F[o] & ~cell[0]
            if m:
                cell[0] |= m
                while m:
                    b = m & -m
                    m ^= b
                    objs[b.bit_length() - 1]._emitted = True

        return {"ph1": ph1, "tick": tick}

    def _b_source(self, xi, c):
        V, D, F, DCH = self.V, self.D, self.F, self.DCH
        o = self._ci(c.outputs["out"])
        Do = D[o]
        objs = self.xobj[xi]
        av = 0
        for lane, x in enumerate(objs):
            if x._token is None:
                x._token = Token(x.value)
            Do[lane] = x._token
            if x.limit is None or x.emitted < x.limit:
                av |= 1 << lane
        cell = [av]

        def ph1(o=o, cell=cell):
            V[o] = cell[0]
            DCH[o] = 0

        def tick(o=o, cell=cell, objs=objs):
            m = F[o]
            while m:
                b = m & -m
                m ^= b
                x = objs[b.bit_length() - 1]
                x.emitted += 1
                if x.limit is not None and x.emitted >= x.limit:
                    cell[0] &= ~b

        return {"ph1": ph1, "tick": tick}

    def _b_sink(self, xi, c):
        D, F = self.D, self.F
        i = self._ci(c.inputs["in"])
        Di = D[i]
        objs = self.xobj[xi]
        rec = bool(c.record)

        def tick(i=i, Di=Di, objs=objs, rec=rec):
            m = F[i]
            while m:
                b = m & -m
                m ^= b
                lane = b.bit_length() - 1
                x = objs[lane]
                x.count += 1
                if rec:
                    x.received.append(Di[lane])

        def flush(lane, bmask, domain, min_iter, objs=objs):
            objs[lane].flush(domain, min_iter)

        return {"tick": tick, "flush": flush}

    def _b_constant(self, xi, c):
        V, R, D, DCH, FORCE = self.V, self.R, self.D, self.DCH, self.FORCE
        i = self._ci(c.inputs["ctrl"])
        o = self._ci(c.outputs["out"])
        Di, Do = D[i], D[o]
        objs = self.xobj[xi]
        la = [0]

        def ph1(i=i, o=o, Di=Di, Do=Do, objs=objs, la=la):
            a = V[i]
            d = a & (DCH[i] | (a & ~la[0]) | FORCE[0])
            la[0] = a
            ch = 0
            while d:
                b = d & -d
                d ^= b
                lane = b.bit_length() - 1
                t = Di[lane]
                x = objs[lane]
                _a = x._cache
                if _a[0] is t:
                    out = _a[1]
                else:
                    out = combine(x.value, t)
                    _a[0] = t
                    _a[1] = out
                if Do[lane] is not out:
                    Do[lane] = out
                    ch |= b
            V[o] = a
            DCH[o] = ch

        def ph2(i=i, o=o):
            R[i] = V[i] & R[o]

        return {"ph1": ph1, "ph2": ph2}

    def _b_fork(self, xi, c):
        V, R, D, F, DCH = self.V, self.R, self.D, self.F, self.DCH
        ACT, FULL = self.ACT, self.FULL
        i = self._ci(c.inputs["in"])
        n = c.n_outputs
        outs = [self._ci(c.outputs[f"out{k}"]) for k in range(n)]
        Di = D[i]
        objs = self.xobj[xi]
        dn = [0] * n
        for lane, x in enumerate(objs):
            for k in range(n):
                if x._done[k]:
                    dn[k] |= 1 << lane

        def ph1(i=i, outs=outs, dn=dn):
            vi = V[i]
            dch = DCH[i]
            for k, ok in enumerate(outs):
                V[ok] = vi & ~dn[k]
                DCH[ok] = dch

        def ph2(i=i, outs=outs, dn=dn):
            acc = FULL
            for k, ok in enumerate(outs):
                acc &= dn[k] | R[ok]
            R[i] = V[i] & acc

        def tick(i=i, outs=outs, dn=dn, objs=objs, n=n):
            vi = V[i] & ACT[0]
            if not vi:
                return
            ri = R[i]
            c1 = vi & ri
            if c1:
                anyd = 0
                for k in range(n):
                    anyd |= dn[k]
                rst = c1 & anyd
                if rst:
                    m = rst
                    while m:
                        b = m & -m
                        m ^= b
                        objs[b.bit_length() - 1]._done = [False] * n
                    for k in range(n):
                        dn[k] &= ~rst
            c2 = vi & ~ri
            if c2:
                for k, ok in enumerate(outs):
                    nd = c2 & V[ok] & R[ok] & ~dn[k]
                    if nd:
                        dn[k] |= nd
                        m = nd
                        while m:
                            b = m & -m
                            m ^= b
                            objs[b.bit_length() - 1]._done[k] = True

        def flush(lane, bmask, domain, min_iter, i=i, Di=Di, dn=dn,
                  objs=objs, n=n):
            if (V[i] >> lane) & 1:
                tok = Di[lane]
                if tok is not None and tok.is_squashed_by(domain, min_iter):
                    objs[lane]._done = [False] * n
                    for k in range(n):
                        dn[k] &= ~bmask

        return {"ph1": ph1, "ph2": ph2, "tick": tick, "flush": flush}

    def _b_join(self, xi, c):
        V, R, D, DCH, FORCE = self.V, self.R, self.D, self.DCH, self.FORCE
        FULL = self.FULL
        n = c.n_inputs
        ins = [self._ci(c.inputs[f"in{k}"]) for k in range(n)]
        o = self._ci(c.outputs["out"])
        Dins = [D[ik] for ik in ins]
        Do = D[o]
        objs = self.xobj[xi]
        la = [0]

        def ph1(ins=ins, o=o, Dins=Dins, Do=Do, objs=objs, la=la, n=n):
            a = FULL
            dch = 0
            for ik in ins:
                a &= V[ik]
                dch |= DCH[ik]
            d = a & (dch | (a & ~la[0]) | FORCE[0])
            la[0] = a
            ch = 0
            while d:
                b = d & -d
                d ^= b
                lane = b.bit_length() - 1
                toks = [Dk[lane] for Dk in Dins]
                _a = objs[lane]._cache
                _l = _a[0]
                same = _l is not None
                if same:
                    for kk in range(n):
                        if _l[kk] is not toks[kk]:
                            same = False
                            break
                if same:
                    out = _a[1]
                else:
                    out = combine(toks[0].value, *toks)
                    _a[0] = toks
                    _a[1] = out
                if Do[lane] is not out:
                    Do[lane] = out
                    ch |= b
            V[o] = a
            DCH[o] = ch

        def ph2(ins=ins, o=o):
            a = FULL
            for ik in ins:
                a &= V[ik]
            r = a & R[o]
            for ik in ins:
                R[ik] = r

        return {"ph1": ph1, "ph2": ph2}

    def _b_merge(self, xi, c):
        V, R, D, DCH, FORCE = self.V, self.R, self.D, self.DCH, self.FORCE
        FULL = self.FULL
        n = c.n_inputs
        ins = [self._ci(c.inputs[f"in{k}"]) for k in range(n)]
        o = self._ci(c.outputs["out"])
        Dins = [D[ik] for ik in ins]
        Do = D[o]
        W = [0] * n
        lw = [0] * n

        def ph1(ins=ins, o=o, Dins=Dins, Do=Do, W=W, lw=lw):
            rem = FULL
            ch = 0
            f = FORCE[0]
            for k, ik in enumerate(ins):
                w = V[ik] & rem
                rem &= ~w
                W[k] = w
                d = w & (DCH[ik] | (w & ~lw[k]) | f)
                lw[k] = w
                if d:
                    Dk = Dins[k]
                    while d:
                        b = d & -d
                        d ^= b
                        lane = b.bit_length() - 1
                        t = Dk[lane]
                        if Do[lane] is not t:
                            Do[lane] = t
                            ch |= b
            V[o] = FULL ^ rem
            DCH[o] = ch

        def ph2(ins=ins, o=o, W=W):
            ro = R[o]
            for k, ik in enumerate(ins):
                R[ik] = W[k] & ro

        return {"ph1": ph1, "ph2": ph2}

    def _b_mux(self, xi, c):
        V, R, D, DCH, FORCE = self.V, self.R, self.D, self.DCH, self.FORCE
        B = self.B
        n = c.n_inputs
        s = self._ci(c.inputs["select"])
        ins = [self._ci(c.inputs[f"in{k}"]) for k in range(n)]
        o = self._ci(c.outputs["out"])
        Ds = D[s]
        Dins = [D[ik] for ik in ins]
        Do = D[o]
        objs = self.xobj[xi]
        SM = [0] * n
        sidx = [-1] * B
        lak = [0] * n
        lvs = [0]

        def ph1(s=s, ins=ins, o=o, Ds=Ds, Dins=Dins, Do=Do, objs=objs,
                SM=SM, sidx=sidx, lak=lak, lvs=lvs, n=n):
            vs = V[s]
            f = FORCE[0]
            ds = vs & (DCH[s] | (vs & ~lvs[0]) | f)
            lvs[0] = vs
            while ds:
                b = ds & -ds
                ds ^= b
                lane = b.bit_length() - 1
                ival = int(Ds[lane].value)
                if 0 <= ival < n:
                    k = ival
                elif -n <= ival < 0:
                    k = ival + n
                else:
                    raise IndexError("mux select out of range")
                old = sidx[lane]
                if old != k:
                    if old >= 0:
                        SM[old] &= ~b
                    SM[k] |= b
                    sidx[lane] = k
            vo = 0
            ch = 0
            dchs = DCH[s]
            for k, ik in enumerate(ins):
                ak = vs & SM[k] & V[ik]
                vo |= ak
                d = ak & (dchs | DCH[ik] | (ak & ~lak[k]) | f)
                lak[k] = ak
                if d:
                    Dk = Dins[k]
                    while d:
                        b = d & -d
                        d ^= b
                        lane = b.bit_length() - 1
                        st = Ds[lane]
                        dt = Dk[lane]
                        _a = objs[lane]._cache
                        if _a[0] is st and _a[1] is dt:
                            out = _a[2]
                        else:
                            out = combine(dt.value, dt, st)
                            _a[0] = st
                            _a[1] = dt
                            _a[2] = out
                        if Do[lane] is not out:
                            Do[lane] = out
                            ch |= b
            V[o] = vo
            DCH[o] = ch

        def ph2(s=s, ins=ins, o=o, SM=SM):
            vs = V[s]
            ro = R[o]
            rs = 0
            for k, ik in enumerate(ins):
                g = vs & SM[k] & V[ik] & ro
                R[ik] = g
                rs |= g
            R[s] = rs

        return {"ph1": ph1, "ph2": ph2}

    def _b_branch(self, xi, c):
        V, R, D, DCH, FORCE = self.V, self.R, self.D, self.DCH, self.FORCE
        cnd = self._ci(c.inputs["cond"])
        dat = self._ci(c.inputs["data"])
        tt = self._ci(c.outputs["true"])
        ff = self._ci(c.outputs["false"])
        Dc, Dd = D[cnd], D[dat]
        bd = D[tt]  # aliased with D[ff]
        objs = self.xobj[xi]
        la = [0]
        CT = [0]

        def ph1(cnd=cnd, dat=dat, tt=tt, ff=ff, Dc=Dc, Dd=Dd, bd=bd,
                objs=objs, la=la, CT=CT):
            a = V[cnd] & V[dat]
            d = a & (DCH[cnd] | DCH[dat] | (a & ~la[0]) | FORCE[0])
            la[0] = a
            ch = 0
            while d:
                b = d & -d
                d ^= b
                lane = b.bit_length() - 1
                ctk = Dc[lane]
                dtk = Dd[lane]
                _a = objs[lane]._cache
                if _a[0] is ctk and _a[1] is dtk:
                    out = _a[2]
                else:
                    out = combine(dtk.value, dtk, ctk)
                    _a[0] = ctk
                    _a[1] = dtk
                    _a[2] = out
                if ctk.value:
                    CT[0] |= b
                else:
                    CT[0] &= ~b
                if bd[lane] is not out:
                    bd[lane] = out
                    ch |= b
            ct = CT[0]
            V[tt] = a & ct
            V[ff] = a & ~ct
            DCH[tt] = ch
            DCH[ff] = ch

        def ph2(cnd=cnd, dat=dat, tt=tt, ff=ff, CT=CT):
            a = V[tt] | V[ff]
            ct = CT[0]
            r = ((R[tt] & ct) | (R[ff] & ~ct)) & a
            R[cnd] = r
            R[dat] = r

        return {"ph1": ph1, "ph2": ph2}

    def _b_select(self, xi, c):
        V, R, D, DCH, FORCE = self.V, self.R, self.D, self.DCH, self.FORCE
        cnd = self._ci(c.inputs["cond"])
        aa = self._ci(c.inputs["a"])
        bb = self._ci(c.inputs["b"])
        o = self._ci(c.outputs["out"])
        Dc, Da, Db = D[cnd], D[aa], D[bb]
        Do = D[o]
        objs = self.xobj[xi]
        la = [0]

        def ph1(cnd=cnd, aa=aa, bb=bb, o=o, Dc=Dc, Da=Da, Db=Db, Do=Do,
                objs=objs, la=la):
            a = V[cnd] & V[aa] & V[bb]
            d = a & (
                DCH[cnd] | DCH[aa] | DCH[bb] | (a & ~la[0]) | FORCE[0]
            )
            la[0] = a
            ch = 0
            while d:
                b = d & -d
                d ^= b
                lane = b.bit_length() - 1
                ct = Dc[lane]
                at = Da[lane]
                bt = Db[lane]
                _a = objs[lane]._cache
                if _a[0] is ct and _a[1] is at and _a[2] is bt:
                    out = _a[3]
                else:
                    chosen = at if ct.value else bt
                    out = combine(chosen.value, ct, at, bt)
                    _a[0] = ct
                    _a[1] = at
                    _a[2] = bt
                    _a[3] = out
                if Do[lane] is not out:
                    Do[lane] = out
                    ch |= b
            V[o] = a
            DCH[o] = ch

        def ph2(cnd=cnd, aa=aa, bb=bb, o=o):
            r = V[cnd] & V[aa] & V[bb] & R[o]
            R[cnd] = r
            R[aa] = r
            R[bb] = r

        return {"ph1": ph1, "ph2": ph2}

    def _b_operator(self, xi, c):
        V, R, D, F, DCH, FORCE = (
            self.V, self.R, self.D, self.F, self.DCH, self.FORCE,
        )
        ACT, FULL = self.ACT, self.FULL
        n = c.n_inputs
        ins = [self._ci(c.inputs[f"in{k}"]) for k in range(n)]
        o = self._ci(c.outputs["out"])
        Dins = [D[ik] for ik in ins]
        Do = D[o]
        objs = self.xobj[xi]
        fns = [x.fn for x in objs]

        if c.latency == 0:
            def ph1(ins=ins, o=o, Dins=Dins, Do=Do, objs=objs, fns=fns,
                    la=[0], n=n):
                a = FULL
                dch = 0
                for ik in ins:
                    a &= V[ik]
                    dch |= DCH[ik]
                d = a & (dch | (a & ~la[0]) | FORCE[0])
                la[0] = a
                ch = 0
                while d:
                    b = d & -d
                    d ^= b
                    lane = b.bit_length() - 1
                    toks = [Dk[lane] for Dk in Dins]
                    _a = objs[lane]._c0_cache
                    _l = _a[0]
                    same = _l is not None
                    if same:
                        for kk in range(n):
                            if _l[kk] is not toks[kk]:
                                same = False
                                break
                    if same:
                        out = _a[1]
                    else:
                        out = combine(
                            fns[lane](*[tk.value for tk in toks]), *toks
                        )
                        _a[0] = toks
                        _a[1] = out
                    if Do[lane] is not out:
                        Do[lane] = out
                        ch |= b
                V[o] = a
                DCH[o] = ch

            def ph2(ins=ins, o=o):
                a = FULL
                for ik in ins:
                    a &= V[ik]
                r = a & R[o]
                for ik in ins:
                    R[ik] = r

            return {"ph1": ph1, "ph2": ph2}

        tv = [0]
        pz = [0]
        pub = [0]
        for lane, x in enumerate(objs):
            pipe = x._pipe
            if pipe[-1] is not None:
                tv[0] |= 1 << lane
                Do[lane] = pipe[-1]
            if any(tk is not None for tk in pipe):
                pz[0] |= 1 << lane

        # D-list publication happens here, never in tick/flush (see
        # _b_oehb): lanes whose pipe moved re-expose the tail token.
        def ph1(o=o, tv=tv, pub=pub, Do=Do, objs=objs):
            ch = 0
            m = pub[0]
            pub[0] = 0
            while m:
                b = m & -m
                m ^= b
                lane = b.bit_length() - 1
                tail = objs[lane]._pipe[-1]
                if tail is not None and Do[lane] is not tail:
                    Do[lane] = tail
                    ch |= b
            V[o] = tv[0]
            DCH[o] = ch

        def ph2(ins=ins, o=o, tv=tv):
            a = FULL
            for ik in ins:
                a &= V[ik]
            r = a & ((FULL ^ tv[0]) | R[o])
            for ik in ins:
                R[ik] = r

        in0 = ins[0]

        def tick(ins=ins, in0=in0, o=o, Dins=Dins, objs=objs,
                 fns=fns, tv=tv, pz=pz, pub=pub):
            a = ACT[0]
            adv = ((FULL ^ tv[0]) | F[o]) & a
            if not adv:
                return
            allv = FULL
            for ik in ins:
                allv &= V[ik]
            acc = adv & allv & R[in0]
            work = adv & (acc | pz[0])
            if not work:
                return
            t_new = tv[0]
            p_new = pz[0]
            pub[0] |= work
            while work:
                b = work & -work
                work ^= b
                lane = b.bit_length() - 1
                x = objs[lane]
                pipe = x._pipe
                if (acc >> lane) & 1:
                    toks = [Dk[lane] for Dk in Dins]
                    out = combine(
                        fns[lane](*[tk.value for tk in toks]), *toks
                    )
                else:
                    out = None
                pipe = [out] + pipe[:-1]
                x._pipe = pipe
                if pipe[-1] is None:
                    t_new &= ~b
                else:
                    t_new |= b
                nz = False
                for tk in pipe:
                    if tk is not None:
                        nz = True
                        break
                if nz:
                    p_new |= b
                else:
                    p_new &= ~b
            tv[0] = t_new
            pz[0] = p_new

        def flush(lane, bmask, domain, min_iter, objs=objs,
                  tv=tv, pz=pz, pub=pub):
            x = objs[lane]
            old = x._pipe
            changed = False
            newp = []
            for tk in old:
                if tk is not None and tk.is_squashed_by(domain, min_iter):
                    newp.append(None)
                    changed = True
                else:
                    newp.append(tk)
            if not changed:
                return
            x._pipe = newp
            pub[0] |= bmask
            if newp[-1] is None:
                tv[0] &= ~bmask
            else:
                tv[0] |= bmask
            if any(tk is not None for tk in newp):
                pz[0] |= bmask
            else:
                pz[0] &= ~bmask

        self._opbusy.append((tv, pz))
        return {"ph1": ph1, "ph2": ph2, "tick": tick, "flush": flush}

    def _b_oehb(self, xi, c):
        V, R, D, F, DCH, FULL = (
            self.V, self.R, self.D, self.F, self.DCH, self.FULL,
        )
        i = self._ci(c.inputs["in"])
        o = self._ci(c.outputs["out"])
        Di, Do = D[i], D[o]
        objs = self.xobj[xi]
        sv = [0]
        pub = [0]
        for lane, x in enumerate(objs):
            if x._slot is not None:
                sv[0] |= 1 << lane
                Do[lane] = x._slot

        # Ticks mutate slots only; the D list is published here, like
        # the compiled template's `D(o) = _slot`.  A tick must never
        # write a D list: another component's tick (or a squash flush)
        # ordered after it would read next cycle's token.
        def ph1(o=o, sv=sv, pub=pub, Do=Do, objs=objs):
            ch = 0
            m = pub[0]
            pub[0] = 0
            while m:
                b = m & -m
                m ^= b
                lane = b.bit_length() - 1
                tok = objs[lane]._slot
                if tok is not None and Do[lane] is not tok:
                    Do[lane] = tok
                    ch |= b
            V[o] = sv[0]
            DCH[o] = ch

        def ph2(i=i, o=o, sv=sv):
            R[i] = (FULL ^ sv[0]) | R[o]

        def tick(i=i, o=o, Di=Di, objs=objs, sv=sv, pub=pub):
            drop = sv[0] & F[o]
            fill = F[i]
            if not (drop | fill):
                return
            sv[0] = (sv[0] & ~drop) | fill
            pub[0] |= fill
            m = fill
            while m:
                b = m & -m
                m ^= b
                lane = b.bit_length() - 1
                objs[lane]._slot = Di[lane]
            m = drop & ~fill
            while m:
                b = m & -m
                m ^= b
                objs[b.bit_length() - 1]._slot = None

        def flush(lane, bmask, domain, min_iter, objs=objs, sv=sv):
            x = objs[lane]
            s = x._slot
            if s is not None and s.is_squashed_by(domain, min_iter):
                x._slot = None
                sv[0] &= ~bmask

        return {"ph1": ph1, "ph2": ph2, "tick": tick, "flush": flush}

    def _b_tehb(self, xi, c):
        V, R, D, F, DCH, FORCE, FULL = (
            self.V, self.R, self.D, self.F, self.DCH, self.FORCE, self.FULL,
        )
        i = self._ci(c.inputs["in"])
        o = self._ci(c.outputs["out"])
        Di, Do = D[i], D[o]
        objs = self.xobj[xi]
        sv = [0]
        lpo = [0]
        for lane, x in enumerate(objs):
            if x._slot is not None:
                sv[0] |= 1 << lane
                Do[lane] = x._slot

        def ph1(i=i, o=o, Di=Di, Do=Do, sv=sv, lpo=lpo):
            s = sv[0]
            vi = V[i]
            po = vi & ~s
            d = po & (DCH[i] | (po & ~lpo[0]) | FORCE[0])
            lpo[0] = po
            ch = 0
            while d:
                b = d & -d
                d ^= b
                lane = b.bit_length() - 1
                t = Di[lane]
                if Do[lane] is not t:
                    Do[lane] = t
                    ch |= b
            V[o] = s | vi
            DCH[o] = ch

        def ph2(i=i, sv=sv):
            R[i] = FULL ^ sv[0]

        def tick(i=i, o=o, Di=Di, objs=objs, sv=sv):
            outf = F[o]
            inf = F[i]
            s = sv[0]
            park = inf & ~s & ~outf
            unpark = s & outf
            if park:
                sv[0] |= park
                m = park
                while m:
                    b = m & -m
                    m ^= b
                    lane = b.bit_length() - 1
                    objs[lane]._slot = Di[lane]
            if unpark:
                sv[0] &= ~unpark
                m = unpark
                while m:
                    b = m & -m
                    m ^= b
                    objs[b.bit_length() - 1]._slot = None

        def flush(lane, bmask, domain, min_iter, objs=objs, sv=sv):
            x = objs[lane]
            s = x._slot
            if s is not None and s.is_squashed_by(domain, min_iter):
                x._slot = None
                sv[0] &= ~bmask

        return {"ph1": ph1, "ph2": ph2, "tick": tick, "flush": flush}

    def _buf_fifo_state(self, xi, c):
        """Shared init for tfifo/fifo: (i, o, Di, Do, objs, cells)."""
        D = self.D
        i = self._ci(c.inputs["in"])
        o = self._ci(c.outputs["out"])
        Di, Do = D[i], D[o]
        objs = self.xobj[xi]
        ne = [0]
        nf = [0]
        pub = [0]
        depth = c.depth
        for lane, x in enumerate(objs):
            q = x._items
            if q:
                ne[0] |= 1 << lane
                Do[lane] = q[0]
            if len(q) < depth:
                nf[0] |= 1 << lane
        return i, o, Di, Do, objs, ne, nf, pub, depth

    def _buf_flush(self, objs, ne, nf, pub, depth):
        def flush(lane, bmask, domain, min_iter):
            x = objs[lane]
            q = x._items
            newq = type(q)(
                tk for tk in q if not tk.is_squashed_by(domain, min_iter)
            )
            if len(newq) == len(q):
                return
            x._items = newq
            pub[0] |= bmask
            if newq:
                ne[0] |= bmask
            else:
                ne[0] &= ~bmask
            if len(newq) < depth:
                nf[0] |= bmask
            else:
                nf[0] &= ~bmask

        return flush

    def _buf_publish(self, pub, Do, objs):
        """Head publication for tfifo/fifo ph1 (see _b_oehb on why the
        D list is written here rather than in tick/flush)."""
        m = pub[0]
        pub[0] = 0
        ch = 0
        while m:
            b = m & -m
            m ^= b
            lane = b.bit_length() - 1
            q = objs[lane]._items
            if q:
                h = q[0]
                if Do[lane] is not h:
                    Do[lane] = h
                    ch |= b
        return ch

    def _b_tfifo(self, xi, c):
        V, R, D, F, DCH, FORCE = (
            self.V, self.R, self.D, self.F, self.DCH, self.FORCE,
        )
        i, o, Di, Do, objs, ne, nf, pub, depth = self._buf_fifo_state(xi, c)
        lpo = [0]
        publish = self._buf_publish

        def ph1(i=i, o=o, Di=Di, Do=Do, objs=objs, ne=ne, pub=pub,
                lpo=lpo, publish=publish):
            ch = publish(pub, Do, objs)
            nem = ne[0]
            vi = V[i]
            po = vi & ~nem
            d = po & (DCH[i] | (po & ~lpo[0]) | FORCE[0])
            lpo[0] = po
            while d:
                b = d & -d
                d ^= b
                lane = b.bit_length() - 1
                t = Di[lane]
                if Do[lane] is not t:
                    Do[lane] = t
                    ch |= b
            V[o] = nem | vi
            DCH[o] = ch

        def ph2(i=i, nf=nf):
            R[i] = nf[0]

        def tick(i=i, o=o, Di=Di, objs=objs, ne=ne, nf=nf,
                 pub=pub, depth=depth):
            outf = F[o]
            inf = F[i]
            nem = ne[0]
            w = (nem & (outf | inf)) | (inf & ~nem & ~outf)
            pub[0] |= w
            while w:
                b = w & -w
                w ^= b
                lane = b.bit_length() - 1
                x = objs[lane]
                q = x._items
                if (nem >> lane) & 1:
                    if (outf >> lane) & 1:
                        q.popleft()
                    if (inf >> lane) & 1:
                        q.append(Di[lane])
                else:
                    q.append(Di[lane])
                if q:
                    ne[0] |= b
                else:
                    ne[0] &= ~b
                if len(q) < depth:
                    nf[0] |= b
                else:
                    nf[0] &= ~b

        return {
            "ph1": ph1,
            "ph2": ph2,
            "tick": tick,
            "flush": self._buf_flush(objs, ne, nf, pub, depth),
        }

    def _b_fifo(self, xi, c):
        V, R, D, F, DCH = self.V, self.R, self.D, self.F, self.DCH
        i, o, Di, Do, objs, ne, nf, pub, depth = self._buf_fifo_state(xi, c)
        publish = self._buf_publish

        def ph1(o=o, Do=Do, objs=objs, ne=ne, pub=pub, publish=publish):
            ch = publish(pub, Do, objs)
            V[o] = ne[0]
            DCH[o] = ch

        def ph2(i=i, o=o, nf=nf):
            R[i] = nf[0] | R[o]

        def tick(i=i, o=o, Di=Di, objs=objs, ne=ne, nf=nf,
                 pub=pub, depth=depth):
            outf = F[o]
            inf = F[i]
            w = outf | inf
            pub[0] |= w
            while w:
                b = w & -w
                w ^= b
                lane = b.bit_length() - 1
                x = objs[lane]
                q = x._items
                if (outf >> lane) & 1:
                    q.popleft()
                if (inf >> lane) & 1:
                    q.append(Di[lane])
                if q:
                    ne[0] |= b
                else:
                    ne[0] &= ~b
                if len(q) < depth:
                    nf[0] |= b
                else:
                    nf[0] &= ~b

        return {
            "ph1": ph1,
            "ph2": ph2,
            "tick": tick,
            "flush": self._buf_flush(objs, ne, nf, pub, depth),
        }

    def _b_pair_packer(self, xi, c):
        V, R, D, DCH, FORCE = self.V, self.R, self.D, self.DCH, self.FORCE
        ix = self._ci(c.inputs["index"])
        vl = self._ci(c.inputs["value"])
        o = self._ci(c.outputs["out"])
        Dx, Dv = D[ix], D[vl]
        Do = D[o]
        objs = self.xobj[xi]
        la = [0]

        def ph1(ix=ix, vl=vl, o=o, Dx=Dx, Dv=Dv, Do=Do, objs=objs, la=la):
            a = V[ix] & V[vl]
            d = a & (DCH[ix] | DCH[vl] | (a & ~la[0]) | FORCE[0])
            la[0] = a
            ch = 0
            while d:
                b = d & -d
                d ^= b
                lane = b.bit_length() - 1
                it = Dx[lane]
                vt = Dv[lane]
                _a = objs[lane]._cache
                if _a[0] is it and _a[1] is vt:
                    out = _a[2]
                else:
                    out = combine((it.value, vt.value), it, vt)
                    out.version = vt.version
                    _a[0] = it
                    _a[1] = vt
                    _a[2] = out
                if Do[lane] is not out:
                    Do[lane] = out
                    ch |= b
            V[o] = a
            DCH[o] = ch

        def ph2(ix=ix, vl=vl, o=o):
            r = V[ix] & V[vl] & R[o]
            R[ix] = r
            R[vl] = r

        return {"ph1": ph1, "ph2": ph2}

    def _b_gen(self, xi, c, value):
        V, R, D, F, DCH, FORCE = (
            self.V, self.R, self.D, self.F, self.DCH, self.FORCE,
        )
        i = self._ci(c.inputs["in"])
        o = self._ci(c.outputs["out"])
        Di, Do = D[i], D[o]
        objs = self.xobj[xi]
        la = [0]

        def ph1(i=i, o=o, Di=Di, Do=Do, objs=objs, la=la, value=value):
            a = V[i]
            d = a & (DCH[i] | (a & ~la[0]) | FORCE[0])
            la[0] = a
            ch = 0
            while d:
                b = d & -d
                d ^= b
                lane = b.bit_length() - 1
                t = Di[lane]
                _a = objs[lane]._cache
                if _a[0] is not t:
                    _a[0] = t
                    _a[1] = t.with_value((value,))
                out = _a[1]
                if Do[lane] is not out:
                    Do[lane] = out
                    ch |= b
            V[o] = a
            DCH[o] = ch

        def ph2(i=i, o=o):
            R[i] = V[i] & R[o]

        def tick(o=o, objs=objs):
            m = F[o]
            while m:
                b = m & -m
                m ^= b
                objs[b.bit_length() - 1].generated += 1

        return {"ph1": ph1, "ph2": ph2, "tick": tick}

    def _b_fake_gen(self, xi, c):
        return self._b_gen(xi, c, "fake")

    def _b_done_gen(self, xi, c):
        return self._b_gen(xi, c, "done")

    def _b_called(self, xi, comp):
        V, R, D, F, DCH = self.V, self.R, self.D, self.F, self.DCH
        ACT, FORCE = self.ACT, self.FORCE
        ins = [self._ci(ch) for ch in comp.inputs.values()]
        outs = [self._ci(ch) for ch in comp.outputs.values()]
        inrows = [self.chobj[ci] for ci in ins]
        outrows = [self.chobj[ci] for ci in outs]
        Din = [D[ci] for ci in ins]
        Dout = [D[ci] for ci in outs]
        objs = self.xobj[xi]
        props = [x.propagate for x in objs]
        tks = [x.tick for x in objs]
        obs_ready = bool(comp.observes_output_ready)
        nouts = len(outs)
        prevVin = [0] * len(ins)
        lastRout = [0] * nouts
        pdch = [0] * nouts
        pend = [0]  # lanes whose last tick reported a state change
        trig = [0]
        ticked = [0]
        adjchs = ins + outs
        for ci in outs:
            self._outsync.append([ci, self.chobj[ci], [0]])

        def ph1(ins=ins, outs=outs, inrows=inrows, outrows=outrows,
                Din=Din, Dout=Dout, props=props, prevVin=prevVin,
                pdch=pdch, pend=pend, trig=trig, nouts=nouts):
            t = pend[0] | FORCE[0]
            for j, ik in enumerate(ins):
                v = V[ik]
                t |= (v ^ prevVin[j]) | DCH[ik]
                prevVin[j] = v
            t &= ACT[0]
            trig[0] = t
            if not nouts:
                return
            if not t:
                for j, ok in enumerate(outs):
                    DCH[ok] = pdch[j]
                    pdch[j] = 0
                return
            newd = list(pdch)
            for j in range(nouts):
                pdch[j] = 0
            m = t
            while m:
                b = m & -m
                m ^= b
                lane = b.bit_length() - 1
                for j, ik in enumerate(ins):
                    chx = inrows[j][lane]
                    if (V[ik] >> lane) & 1:
                        chx.valid = True
                        chx.data = Din[j][lane]
                    else:
                        chx.valid = False
                        chx.data = None
                for j in range(nouts):
                    chx = outrows[j][lane]
                    chx.valid = False
                    chx.data = None
                props[lane]()
                for j, ok in enumerate(outs):
                    chx = outrows[j][lane]
                    if chx.valid:
                        V[ok] |= b
                    else:
                        V[ok] &= ~b
                    tok = chx.data
                    dl = Dout[j]
                    if dl[lane] is not tok:
                        dl[lane] = tok
                        newd[j] |= b
            for j, ok in enumerate(outs):
                DCH[ok] = newd[j]

        def ph2(ins=ins, outs=outs, inrows=inrows, outrows=outrows,
                Din=Din, Dout=Dout, props=props, prevVin=prevVin,
                lastRout=lastRout, pdch=pdch, trig=trig, nouts=nouts,
                obs_ready=obs_ready):
            t = trig[0]
            a = ACT[0]
            # A back-edge producer's phase 1 runs *after* this
            # component's, so its valid/data arrive between our two
            # phases; the compiled re-drive sees them — so must we.
            for j, ik in enumerate(ins):
                v = V[ik]
                t |= ((v ^ prevVin[j]) | DCH[ik]) & a
                prevVin[j] = v
            if obs_ready:
                for j, ok in enumerate(outs):
                    r = R[ok]
                    t |= (r ^ lastRout[j]) & a
                    lastRout[j] = r
            m = t
            while m:
                b = m & -m
                m ^= b
                lane = b.bit_length() - 1
                for j, ik in enumerate(ins):
                    chx = inrows[j][lane]
                    if (V[ik] >> lane) & 1:
                        chx.valid = True
                        chx.data = Din[j][lane]
                    else:
                        chx.valid = False
                        chx.data = None
                    chx.ready = False
                for j, ok in enumerate(outs):
                    chx = outrows[j][lane]
                    chx.valid = False
                    chx.data = None
                    chx.ready = bool((R[ok] >> lane) & 1)
                props[lane]()
                for j, ik in enumerate(ins):
                    if inrows[j][lane].ready:
                        R[ik] |= b
                    else:
                        R[ik] &= ~b
                for j, ok in enumerate(outs):
                    chx = outrows[j][lane]
                    if chx.valid:
                        V[ok] |= b
                    else:
                        V[ok] &= ~b
                    tok = chx.data
                    dl = Dout[j]
                    if dl[lane] is not tok:
                        dl[lane] = tok
                        pdch[j] |= b

        # Tick gate: a lane ticks when its previous tick reported a
        # change, it was force-marked (cold start / squash), an adjacent
        # channel fired or changed valid/ready, an input's data identity
        # changed, or the object says it is busy.  Anything outside that
        # set has, by the audited contract, a tick that is a no-op.
        prevAV = [0] * len(adjchs)
        prevAR = [0] * len(adjchs)

        def tick(ins=ins, adjchs=adjchs, objs=objs, tks=tks, pend=pend,
                 ticked=ticked, prevAV=prevAV, prevAR=prevAR):
            a = ACT[0]
            if not a:
                return
            m = (ticked[0] | FORCE[0]) & a
            chg = 0
            for j, ci in enumerate(adjchs):
                v = V[ci]
                r = R[ci]
                chg |= F[ci] | (v ^ prevAV[j]) | (r ^ prevAR[j])
                prevAV[j] = v
                prevAR[j] = r
            for ik in ins:
                chg |= DCH[ik]
            m |= chg & a
            rest = a & ~m
            while rest:
                b = rest & -rest
                rest ^= b
                if objs[b.bit_length() - 1].is_busy:
                    m |= b
            nt = 0
            while m:
                b = m & -m
                m ^= b
                if tks[b.bit_length() - 1]():
                    nt |= b
            ticked[0] = nt
            pend[0] |= nt

        def flush(lane, bmask, domain, min_iter, objs=objs):
            objs[lane].flush(domain, min_iter)

        return {"ph1": ph1, "ph2": ph2, "tick": tick, "flush": flush}

    # -- per-cycle plumbing ---------------------------------------------
    def _settle_fires(self) -> None:
        """Compute fire planes, any-valid, and the transfer counters."""
        V, R, F = self.V, self.R, self.F
        act = self.ACT[0]
        planes = self._tplanes
        anyv = 0
        fany = 0
        for ci in range(self._nch):
            v = V[ci]
            anyv |= v
            f = v & R[ci] & act
            F[ci] = f
            if f:
                fany |= f
                p = planes[ci]
                i = 0
                while f:
                    if i == len(p):
                        p.append(0)
                    x = p[i]
                    p[i] = x ^ f
                    f &= x
                    i += 1
        self._anyv = anyv
        self._fany = fany

    def _sync_called_ready(self) -> None:
        """Push settled readies onto called-producer output objects.

        Consumer phase-2 blocks write planes, not objects, but a called
        component's *tick* reads ``out.fires`` — so every lane whose
        settled ready differs from the object gets refreshed each cycle.
        """
        R = self.R
        act = self.ACT[0]
        for ent in self._outsync:
            ci, row, shadow = ent
            cur = R[ci]
            diff = (cur ^ shadow[0]) & act
            shadow[0] = cur
            while diff:
                b = diff & -diff
                diff ^= b
                lane = b.bit_length() - 1
                row[lane].ready = bool((cur >> lane) & 1)

    def _check_quiet(self) -> None:
        """Per-lane deadlock-window accounting (mirrors compiled busy)."""
        act = self.ACT[0]
        busy = self._fany
        for tv, pz in self._opbusy:
            busy |= pz[0] & ~tv[0]
        still = act & ~busy
        if still and self._realbusy:
            m = still
            while m:
                b = m & -m
                m ^= b
                lane = b.bit_length() - 1
                for row in self._realbusy:
                    if row[lane].is_busy:
                        still ^= b
                        break
        q = self._quiet
        window = self.deadlock_window
        tozero = self._nzq & act & ~still
        while tozero:
            b = tozero & -tozero
            tozero ^= b
            q[b.bit_length() - 1] = 0
        m = still
        while m:
            b = m & -m
            m ^= b
            lane = b.bit_length() - 1
            n = q[lane] + 1
            q[lane] = n
            if n >= window:
                self._raise_deadlock(lane)
        self._nzq = still

    def _sync_lane(self, lane: int) -> None:
        """Spill one lane's planes onto its channel objects."""
        V, R, D = self.V, self.R, self.D
        for ci in range(self._nch):
            ch = self.chobj[ci][lane]
            if (V[ci] >> lane) & 1:
                ch.valid = True
                ch.data = D[ci][lane]
            else:
                ch.valid = False
                ch.data = None
            ch.ready = bool((R[ci] >> lane) & 1)

    def _raise_deadlock(self, lane: int) -> None:
        self._sync_lane(lane)
        circ = self.circuits[lane]
        stuck = [c for c in circ.channels if c.valid and not c.ready]
        names = ", ".join(c.name for c in stuck[:8])
        more = "" if len(stuck) <= 8 else f" (+{len(stuck) - 8} more)"
        raise DeadlockError(
            f"{circ.name}: no progress for {self.deadlock_window} "
            f"cycles at cycle {self.cycles}; stalled channels: "
            f"{names}{more}",
            stuck_channels=stuck,
        )

    def _flush_lane(self, lane: int, domain: int, min_iter: int) -> None:
        """Per-lane replacement for ``Circuit.flush`` during a squash."""
        bmask = 1 << lane
        self.FORCE[0] |= bmask
        for fl in self._flushers:
            if fl is not None:
                fl(lane, bmask, domain, min_iter)

    def _retire(self, lane: int) -> None:
        self.ACT[0] &= ~(1 << lane)
        self.lane_cycles[lane] = self.cycles
        # Same post-run contract as the compiled engine: settled
        # valid/data cleared, ready left as-is.
        for ci in range(self._nch):
            ch = self.chobj[ci][lane]
            ch.valid = False
            ch.data = None
        self.circuits[lane].__dict__.pop("flush", None)

    def add_hook(self, lane: int, hook: Callable) -> None:
        """Register an end-of-cycle hook for one lane (squash controllers)."""
        self.hooks[lane].append(hook)

    # -- the run loop ----------------------------------------------------
    def run(self, dones: List[Callable[[], bool]]) -> List[SimulationStats]:
        """Run every lane to completion; per-lane stats, compiled-identical.

        ``dones[l]`` must carry the ``split = (pre, post)`` attribute of
        :func:`repro.eval.runner.make_done_condition`; hooks must
        duck-type as squash controllers — the same preconditions as the
        compiled engine's fast path, except the vector engine has no
        synced fallback and raises :class:`VectorUnsupportedError`.
        """
        B = self.B
        if len(dones) != B:
            raise ValueError(
                f"expected {B} done conditions, got {len(dones)}"
            )
        pres = []
        posts = []
        for dn in dones:
            split = getattr(dn, "split", None)
            if split is None:
                raise VectorUnsupportedError(
                    "vector engine requires a split done condition "
                    "(see make_done_condition)"
                )
            pres.append(split[0])
            posts.append(split[1])
        for lane in range(B):
            for h in self.hooks[lane]:
                if not hasattr(
                    getattr(h, "__self__", None), "has_pending_squash"
                ):
                    raise VectorUnsupportedError(
                        "vector engine supports only squash-controller "
                        "end-of-cycle hooks"
                    )
        ACT = self.ACT
        FORCE = self.FORCE
        # Squash flushes must hit only the squashed lane: intercept
        # Circuit.flush per instance for the duration of the run.
        for lane, circ in enumerate(self.circuits):
            circ.flush = (
                lambda domain, min_iter, _l=lane: self._flush_lane(
                    _l, domain, min_iter
                )
            )
        try:
            for lane in range(B):
                if dones[lane]():
                    self._retire(lane)
            ph1 = self._ph1
            ph2 = self._ph2
            ticks = self._ticks
            hooks = self.hooks
            max_cycles = self.max_cycles
            while ACT[0]:
                if self.cycles >= max_cycles:
                    lane = (ACT[0] & -ACT[0]).bit_length() - 1
                    raise SimulationError(
                        f"{self.circuits[lane].name}: exceeded "
                        f"{max_cycles} cycles without completing"
                    )
                for fn in ph1:
                    fn()
                for fn in ph2:
                    fn()
                self._settle_fires()
                self._sync_called_ready()
                for fn in ticks:
                    fn()
                FORCE[0] = 0
                m = ACT[0]
                while m:
                    b = m & -m
                    m ^= b
                    for h in hooks[b.bit_length() - 1]:
                        h()
                self.cycles += 1
                self._check_quiet()
                cand = ACT[0] & ~self._anyv
                while cand:
                    b = cand & -cand
                    cand ^= b
                    lane = b.bit_length() - 1
                    if pres[lane]() and posts[lane]():
                        self._retire(lane)
        finally:
            for circ in self.circuits:
                circ.__dict__.pop("flush", None)
        self._finalize()
        return self.stats

    def _finalize(self) -> None:
        B = self.B
        n_evals = self.plan.n_evals
        totals = _np.zeros(B, dtype=_np.int64)
        per_channel = _np.zeros(B, dtype=_np.int64) if self.count_transfers \
            else None
        nbytes = (B + 7) // 8
        for ci in range(self._nch):
            planes = self._tplanes[ci]
            if per_channel is not None:
                per_channel[:] = 0
            acc = per_channel if per_channel is not None else totals
            for k, plane in enumerate(planes):
                if not plane:
                    continue
                bits = _np.unpackbits(
                    _np.frombuffer(
                        plane.to_bytes(nbytes, "little"), dtype=_np.uint8
                    ),
                    bitorder="little",
                )[:B]
                acc += bits.astype(_np.int64) << k
            if per_channel is not None:
                totals += per_channel
                for lane in range(B):
                    n = int(per_channel[lane])
                    if n:
                        self.chobj[ci][lane].transfers += n
        for lane in range(B):
            st = self.stats[lane]
            st.cycles = self.lane_cycles[lane]
            st.transfers = int(totals[lane])
            st.propagate_calls = n_evals * st.cycles


# ----------------------------------------------------------------------
# Single-circuit adapter (make_simulator engine="vector")
# ----------------------------------------------------------------------
class VectorSimulator:
    """B=1 adapter over :class:`VectorBatch` with the simulator surface.

    Exists so ``make_simulator(engine="vector")`` and the engine-
    equivalence suite can drive the vector code paths through the same
    interface as every other engine.  Batch throughput comes from
    :class:`VectorBatch` via ``run_batch``, not from this adapter.
    """

    engine_name = "vector"

    def __init__(
        self,
        circuit: Circuit,
        max_cycles: int = 1_000_000,
        deadlock_window: int = 256,
        fixpoint_cap: int = 10_000,  # accepted for ctor parity; unused
        trace=None,
        collect_stats: bool = False,
        count_transfers: bool = False,
    ):
        if trace is not None:
            raise VectorUnsupportedError(
                "tracing requires an interpreted engine"
            )
        if collect_stats:
            raise VectorUnsupportedError(
                "per-channel stall/idle statistics require an interpreted "
                "engine (use count_transfers=True for transfer counts)"
            )
        self.circuit = circuit
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.trace = None
        self.collect_stats = False
        self.count_transfers = count_transfers
        self.stats = SimulationStats()
        self.end_of_cycle_hooks: List[Callable] = []
        self.abort_condition: Optional[Callable[[], bool]] = None
        self._batch = VectorBatch(
            [circuit],
            max_cycles=max_cycles,
            deadlock_window=deadlock_window,
            count_transfers=count_transfers,
        )
        self.plan = self._batch.plan

    def run(self, done: Callable[[], bool]) -> SimulationStats:
        """Run to completion (one-shot; see :meth:`VectorBatch.run`)."""
        if self.abort_condition is not None:
            raise VectorUnsupportedError(
                "abort_condition requires a scalar engine"
            )
        batch = self._batch
        batch.hooks[0] = list(self.end_of_cycle_hooks)
        self.stats = batch.run([done])[0]
        return self.stats

    def run_cycles(self, n: int) -> SimulationStats:
        """Advance exactly ``n`` cycles (no completion/deadlock checks).

        Equivalence-suite surface, mirroring the other engines'
        ``run_cycles``; squash-controller hooks are not supported here
        (use :meth:`run`).
        """
        batch = self._batch
        if self.end_of_cycle_hooks:
            raise VectorUnsupportedError(
                "run_cycles does not support end-of-cycle hooks"
            )
        ph1, ph2, ticks = batch._ph1, batch._ph2, batch._ticks
        for _ in range(n):
            for fn in ph1:
                fn()
            for fn in ph2:
                fn()
            batch._settle_fires()
            batch._sync_called_ready()
            for fn in ticks:
                fn()
            batch.FORCE[0] = 0
            batch.cycles += 1
        batch.lane_cycles[0] = batch.cycles
        batch._sync_lane(0)
        batch._finalize()
        self.stats = batch.stats[0]
        return self.stats
