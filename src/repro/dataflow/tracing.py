"""Optional waveform-style tracing for debugging circuits."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple


class ChannelTrace:
    """Records per-cycle handshake events for selected channels.

    Each event is ``(cycle, channel_name, state, value)`` where state is one
    of ``"fire"``, ``"stall"`` (valid without ready) or nothing for idle
    channels (idle cycles are not recorded to keep traces small).
    """

    def __init__(self, channel_filter: Optional[Callable[[str], bool]] = None):
        self.channel_filter = channel_filter
        self.events: List[Tuple[int, str, str, object]] = []

    def capture(self, circuit, cycle: int) -> None:
        for chan in circuit.channels:
            if self.channel_filter is not None and not self.channel_filter(chan.name):
                continue
            if chan.fires:
                value = chan.data.value if chan.data is not None else None
                self.events.append((cycle, chan.name, "fire", value))
            elif chan.valid:
                value = chan.data.value if chan.data is not None else None
                self.events.append((cycle, chan.name, "stall", value))

    def fires(self, channel_name: str) -> List[Tuple[int, object]]:
        """All (cycle, value) transfers observed on one channel."""
        return [
            (cycle, value)
            for cycle, name, state, value in self.events
            if name == channel_name and state == "fire"
        ]

    def format(self, limit: int = 200) -> str:
        lines = [
            f"{cycle:>6} {state:<5} {name} = {value!r}"
            for cycle, name, state, value in self.events[:limit]
        ]
        if len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)


class OrderTrace:
    """Chronological record of arbiter-level memory-ordering events.

    Fed by the PVSan SC oracle (not by the channel layer): one event per
    processed operation, violation verdict, retirement and executed
    squash.  Each event is ``(kind, unit_name, detail)`` where ``detail``
    is a short human-readable summary — enough to reconstruct *why* the
    sanitizer flagged (or cleared) a run without re-simulating it.
    """

    def __init__(self, limit: int = 100_000):
        self.limit = limit
        self.events: List[Tuple[str, str, str]] = []
        self.dropped = 0

    def record(self, kind: str, unit: str, detail: str) -> None:
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append((kind, unit, detail))

    def of_kind(self, kind: str) -> List[Tuple[str, str, str]]:
        return [e for e in self.events if e[0] == kind]

    def format(self, limit: int = 200) -> str:
        lines = [
            f"{kind:<10} {unit:<14} {detail}"
            for kind, unit, detail in self.events[:limit]
        ]
        hidden = len(self.events) - limit + self.dropped
        if hidden > 0:
            lines.append(f"... ({hidden} more events)")
        return "\n".join(lines)
