"""Optional waveform-style tracing for debugging circuits."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple


class ChannelTrace:
    """Records per-cycle handshake events for selected channels.

    Each event is ``(cycle, channel_name, state, value)`` where state is one
    of ``"fire"``, ``"stall"`` (valid without ready) or nothing for idle
    channels (idle cycles are not recorded to keep traces small).
    """

    def __init__(self, channel_filter: Optional[Callable[[str], bool]] = None):
        self.channel_filter = channel_filter
        self.events: List[Tuple[int, str, str, object]] = []

    def capture(self, circuit, cycle: int) -> None:
        for chan in circuit.channels:
            if self.channel_filter is not None and not self.channel_filter(chan.name):
                continue
            if chan.fires:
                value = chan.data.value if chan.data is not None else None
                self.events.append((cycle, chan.name, "fire", value))
            elif chan.valid:
                value = chan.data.value if chan.data is not None else None
                self.events.append((cycle, chan.name, "stall", value))

    def fires(self, channel_name: str) -> List[Tuple[int, object]]:
        """All (cycle, value) transfers observed on one channel."""
        return [
            (cycle, value)
            for cycle, name, state, value in self.events
            if name == channel_name and state == "fire"
        ]

    def format(self, limit: int = 200) -> str:
        lines = [
            f"{cycle:>6} {state:<5} {name} = {value!r}"
            for cycle, name, state, value in self.events[:limit]
        ]
        if len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
