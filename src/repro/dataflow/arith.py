"""Pipelined arithmetic/logic operators.

:class:`Operator` joins its N inputs, applies a Python function, and pushes
the result through an L-stage fully pipelined shift register (initiation
interval 1).  ``latency == 0`` gives a purely combinational unit.  The
pipeline stalls as a whole when its output is blocked, which is the
behaviour of Dynamatic's non-elastic inner operator wrapped in elastic
glue.

The :data:`OP_TABLE` maps IR opcodes to (function, latency, resource-class)
tuples.  Latencies follow typical Vivado IP figures at ~250 MHz used by
Dynamatic's component library: integer add/sub/compare are combinational,
multiply takes 4 cycles, divide 8.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .component import Component
from .token import Token, combine


def _c_div(a: int, b: int) -> int:
    """C-style integer division (truncate toward zero)."""
    if b == 0:
        raise ZeroDivisionError("division by zero in dataflow operator")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _c_rem(a: int, b: int) -> int:
    """C-style remainder: a - (a/b)*b with truncating division."""
    return a - _c_div(a, b) * b


#: opcode -> (function, latency cycles, resource-class key)
OP_TABLE = {
    "add": (lambda a, b: a + b, 0, "add"),
    "sub": (lambda a, b: a - b, 0, "add"),
    "mul": (lambda a, b: a * b, 4, "mul"),
    "div": (_c_div, 8, "div"),
    "rem": (_c_rem, 8, "div"),
    "and": (lambda a, b: a & b, 0, "logic"),
    "or": (lambda a, b: a | b, 0, "logic"),
    "xor": (lambda a, b: a ^ b, 0, "logic"),
    "shl": (lambda a, b: a << b, 0, "shift"),
    "shr": (lambda a, b: a >> b, 0, "shift"),
    "eq": (lambda a, b: int(a == b), 0, "cmp"),
    "ne": (lambda a, b: int(a != b), 0, "cmp"),
    "lt": (lambda a, b: int(a < b), 0, "cmp"),
    "le": (lambda a, b: int(a <= b), 0, "cmp"),
    "gt": (lambda a, b: int(a > b), 0, "cmp"),
    "ge": (lambda a, b: int(a >= b), 0, "cmp"),
    "neg": (lambda a: -a, 0, "add"),
    "not": (lambda a: int(not a), 0, "logic"),
}


class Operator(Component):
    """N-input pipelined operator with initiation interval 1."""

    scheduling_contract_audited = True

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        n_inputs: int,
        latency: int = 0,
        width: int = 32,
        resource: str = "logic",
    ):
        super().__init__(name)
        self.fn = fn
        self.n_inputs = n_inputs
        self.latency = latency
        self.width = width
        self.resource_class = resource
        # Pipeline slots, index 0 = newest; only used when latency >= 1.
        self._pipe: List[Optional[Token]] = [None] * latency
        self._in_chs = None  # bound lazily after wiring
        self._c0_cache = [None, None]  # [input token list, output token]

    @classmethod
    def from_opcode(cls, name: str, opcode: str, width: int = 32) -> "Operator":
        fn, latency, resource = OP_TABLE[opcode]
        n_inputs = fn.__code__.co_argcount
        return cls(name, fn, n_inputs, latency=latency, width=width, resource=resource)

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def _bind(self):
        chs = [self.inputs[f"in{i}"] for i in range(self.n_inputs)]
        self._in_chs = chs
        self._out_ch = self.outputs["out"]
        return chs

    def _inputs_valid(self):
        toks = []
        for ch in self._in_chs or self._bind():
            if not ch.valid:
                return None
            toks.append(ch.data)
        return toks

    def _compute(self, toks) -> Token:
        result = self.fn(*[t.value for t in toks])
        return combine(result, *toks)

    def propagate(self) -> None:
        ins = self._in_chs or self._bind()
        toks = []
        for ch in ins:
            if not ch.valid:
                toks = None
                break
            toks.append(ch.data)
        out_ch = self._out_ch
        if self.latency == 0:
            if toks is None:
                return
            out_ch.valid = True
            cache = self._c0_cache
            last = cache[0]
            if last is not None and all(a is b for a, b in zip(last, toks)):
                out_ch.data = cache[1]
            else:
                out = self._compute(toks)
                cache[0] = toks
                cache[1] = out
                out_ch.data = out
            if out_ch.ready:
                for ch in ins:
                    ch.ready = True
            return
        # Pipelined: output from the last stage; accept when the pipe shifts.
        tail = self._pipe[-1]
        if tail is not None:
            out_ch.valid = True
            out_ch.data = tail
        if toks is not None and (tail is None or out_ch.ready):
            for ch in ins:
                ch.ready = True

    def tick(self):
        if self.latency == 0:
            return False
        ins = self._in_chs or self._bind()
        out_ch = self._out_ch
        pipe = self._pipe
        tail = pipe[-1]
        advance = tail is None or (out_ch.valid and out_ch.ready)
        if not advance:
            return False
        toks = self._inputs_valid()
        first = ins[0]
        accepted = toks is not None and first.valid and first.ready
        new_head = self._compute(toks) if accepted else None
        # Only the tail slot feeds propagate, but any occupied slot moving
        # is a state change that will reach it; report them all.
        changed = accepted or any(t is not None for t in pipe)
        self._pipe = [new_head] + pipe[:-1]
        return changed

    def flush(self, domain: int, min_iter: int) -> None:
        self._pipe = [
            None if (t is not None and t.is_squashed_by(domain, min_iter)) else t
            for t in self._pipe
        ]

    @property
    def is_busy(self) -> bool:
        # Progress without channel traffic only happens while bubbles let the
        # pipeline shift; a pipeline blocked at its tail is genuinely stuck.
        return bool(
            self._pipe
            and self._pipe[-1] is None
            and any(t is not None for t in self._pipe)
        )

    def perf_model(self):
        # Fully pipelined: latency stages, each holding one token.
        if self.latency == 0:
            return (0, 0)
        return (self.latency, self.latency)

    @property
    def resource_params(self):
        return {"width": self.width, "n": self.n_inputs, "latency": self.latency}
