"""Compile an elastic circuit's static schedule to straight-line Python.

The interpreted engines (:mod:`repro.dataflow.simulator`) *walk* the
levelized schedule every cycle: per-component dispatch, per-channel
watch-list diffing, a heap-ordered drain.  Profiling shows that on the
audited component library this bookkeeping — not the handshake logic —
dominates the per-cycle cost.  This module removes it by emitting, once
per circuit *structure*, a specialized ``step`` function in which the
whole cycle is straight-line code:

* **Phase 1 (valid/data)** — every component's forward half is unrolled
  in :func:`~repro.dataflow.schedule.levelize` order.  Library components
  are *inlined* (their ``propagate`` bodies are re-expressed as templates
  over flat local variables, reusing each instance's token caches so
  token identity matches the interpreted engines); complex stateful
  components (control merges, domain gates, PreVV units, memory
  controllers, LSQs) are *called* through pre-bound method references
  after their driven signals are cleared.
* **Phase 2 (ready)** — input readies are computed in reverse
  ready-topological order (consumers before observing producers), so the
  backward wave also settles in one pass.  Channel transfers are counted
  at the same time.  The two-pass schedule reaches the interpreted
  engines' unique least fixpoint because no audited component's output
  valid/data reads its own output ready within a cycle.
* **Clock edge** — ``tick`` bodies are inlined (or called) with the
  settled signals still in registers.

Channel signals live in Python locals wherever both endpoints are
inlined, and on the real :class:`~repro.dataflow.channel.Channel`
objects next to called components.  A ``sync`` flag spills the locals to
the channel objects only when an external reader (deadlock diagnosis,
tracing hooks, the public :meth:`CompiledSimulator.step`) needs them.

Compiled plans are cached per :func:`structural_key` — one compilation
serves every simulation of structurally identical circuits, which is
what makes batched evaluation (:func:`repro.eval.runner.run_batch`)
cheap.  Circuits the compiler cannot prove safe (unaudited or unknown
component classes, instance-level ``propagate``/``tick`` patches,
cyclic valid or ready residue) raise
:class:`~repro.errors.CodegenUnsupportedError`; engine selection
(:func:`repro.dataflow.simulator.make_simulator`) falls back to the
interpreted engine, and the PV208 lint pass makes the fallback visible.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import (
    CodegenUnsupportedError,
    DeadlockError,
    SimulationError,
)
from .circuit import Circuit
from .component import Component
from .schedule import levelize, ready_network_acyclic
from .simulator import SimulationStats, _overrides
from .token import Token, combine

#: Bump when the emitted code's semantics change: it keys the plan cache,
#: so stale plans can never serve a newer engine.
CODEGEN_VERSION = 1

#: Component classes whose propagate/tick bodies are re-expressed as
#: inline templates, keyed by dotted class name (string keys keep this
#: module free of imports from the prevv/memory/lsq layers, which would
#: be circular).  The template of each class is audited against the
#: library source; the structural key pins the parameters the templates
#: bake in.
_INLINE: Dict[str, str] = {
    "repro.dataflow.primitives.Entry": "entry",
    "repro.dataflow.primitives.Source": "source",
    "repro.dataflow.primitives.Sink": "sink",
    "repro.dataflow.primitives.Constant": "constant",
    "repro.dataflow.primitives.Fork": "fork",
    "repro.dataflow.primitives.Join": "join",
    "repro.dataflow.routing.Merge": "merge",
    "repro.dataflow.routing.Mux": "mux",
    "repro.dataflow.routing.Branch": "branch",
    "repro.dataflow.routing.Select": "select",
    "repro.dataflow.arith.Operator": "operator",
    "repro.dataflow.buffers.OpaqueBuffer": "oehb",
    "repro.dataflow.buffers.TransparentBuffer": "tehb",
    "repro.dataflow.buffers.TransparentFifo": "tfifo",
    "repro.dataflow.buffers.Fifo": "fifo",
    "repro.prevv.fake.PairPacker": "pair_packer",
    "repro.prevv.fake.FakeTokenGenerator": "fake_gen",
    "repro.prevv.fake.DoneTokenGenerator": "done_gen",
}

#: Stateful component classes invoked through pre-bound ``propagate`` /
#: ``tick`` references (cleared-then-called, once per phase).  Audit
#: requirement for membership: ``propagate`` must be a pure function of
#: (input signals, internal state) — it is called twice per cycle.
_CALLED = frozenset(
    {
        "repro.dataflow.routing.ControlMerge",
        "repro.prevv.replay.DomainGate",
        "repro.prevv.unit.PreVVUnit",
        "repro.memory.controller.MemoryController",
        "repro.lsq.lsq.LoadStoreQueue",
    }
)

_GATE_KEY = "repro.prevv.replay.DomainGate"


def _class_key(cls: type) -> str:
    return f"{cls.__module__}.{cls.__name__}"


def class_support(cls: type) -> Optional[str]:
    """How the compiler handles ``cls``: ``"inline"``, ``"call"`` or None.

    Exact-class matching by design: a subclass may override behaviour the
    template bakes in, so it is *not* compilable until audited and added.
    """
    key = _class_key(cls)
    if key in _INLINE:
        return "inline"
    if key in _CALLED:
        return "call"
    return None


def why_not_compilable(circuit: Circuit) -> Optional[str]:
    """First reason ``circuit`` cannot be compiled, or None if it can."""
    for comp in circuit.components:
        cls = type(comp)
        if class_support(cls) is None:
            return (
                f"component {comp.name!r}: class {_class_key(cls)} is not "
                "in the audited codegen set"
            )
        if not cls.scheduling_contract_audited:
            return (
                f"component {comp.name!r}: scheduling contract not audited"
            )
        for meth in ("propagate", "tick"):
            if meth in comp.__dict__:
                return (
                    f"component {comp.name!r}: instance-level {meth} "
                    "override defeats the emitted template"
                )
    sched = levelize(circuit)
    if sched.cyclic:
        names = ", ".join(c.name for c in sched.cyclic[:4])
        return f"combinational valid cycle through {names}"
    if not ready_network_acyclic(circuit):
        return "combinational ready network has a cycle"
    return None


def _params_of(comp: Component) -> Tuple:
    """Template parameters the emitted code bakes in for ``comp``."""
    tag = _INLINE.get(_class_key(type(comp)))
    if tag == "fork":
        return (comp.n_outputs,)
    if tag in ("join", "merge", "mux"):
        return (comp.n_inputs,)
    if tag == "operator":
        return (comp.n_inputs, comp.latency)
    if tag in ("fifo", "tfifo"):
        return (comp.depth,)
    if tag == "sink":
        return (bool(comp.record),)
    return ()


def structural_key(circuit: Circuit, count_transfers: bool = False) -> Tuple:
    """Hashable structure fingerprint: class, params and wiring of every
    component (channel endpoints by index).  Two circuits with equal keys
    execute byte-identical emitted code; only the bound instances differ.
    """
    cidx = {id(ch): i for i, ch in enumerate(circuit.channels)}
    parts: List = [CODEGEN_VERSION, bool(count_transfers), len(circuit.channels)]
    for comp in circuit.components:
        parts.append(
            (
                _class_key(type(comp)),
                _params_of(comp),
                tuple(
                    sorted((p, cidx[id(ch)]) for p, ch in comp.inputs.items())
                ),
                tuple(
                    sorted((p, cidx[id(ch)]) for p, ch in comp.outputs.items())
                ),
            )
        )
    return tuple(parts)


# ----------------------------------------------------------------------
# Source emission
# ----------------------------------------------------------------------
class _StepEmitter:
    """Builds the source of ``make_step(channels, comps)`` for one circuit."""

    def __init__(self, circuit: Circuit, count_transfers: bool):
        self.circuit = circuit
        self.count = count_transfers
        self.comps = list(circuit.components)
        self.channels = list(circuit.channels)
        self.cidx = {id(ch): i for i, ch in enumerate(self.channels)}
        self.xidx = {id(c): i for i, c in enumerate(self.comps)}
        self.tag = {
            id(c): _INLINE.get(_class_key(type(c))) for c in self.comps
        }
        # Hybrid storage: locals between inlined endpoints, live Channel
        # attributes next to called components.
        self.is_local = {
            id(ch): (
                self.tag[id(ch.producer)] is not None
                and self.tag[id(ch.consumer)] is not None
            )
            for ch in self.channels
        }
        self.need_comp: set = set()
        self.need_fn: set = set()
        self.need_call: set = set()
        self.n_evals = 0
        # Transfer-count terms accumulated during phase 2 and summed in
        # one branch-free pass at the end of the step (signals are final
        # once every block ran, so evaluation can be deferred).  The
        # count_transfers variant needs per-channel counters and keeps
        # explicit if-blocks instead.
        self._fire_terms: List[str] = []

    # -- signal accessors ------------------------------------------------
    def V(self, ch) -> str:
        i = self.cidx[id(ch)]
        return f"v{i}" if self.is_local[id(ch)] else f"c{i}.valid"

    def D(self, ch) -> str:
        i = self.cidx[id(ch)]
        return f"d{i}" if self.is_local[id(ch)] else f"c{i}.data"

    def R(self, ch) -> str:
        # A sink is unconditionally ready; the constant is folded here and
        # pinned on the channel object once in the make_step prologue.
        if self.tag.get(id(ch.consumer)) == "sink":
            return "True"
        i = self.cidx[id(ch)]
        return f"r{i}" if self.is_local[id(ch)] else f"c{i}.ready"

    def X(self, comp) -> str:
        i = self.xidx[id(comp)]
        self.need_comp.add(i)
        return f"x{i}"

    def _fire(self, ch) -> List[str]:
        """Count this channel's transfer (each channel exactly once, in
        its consumer's phase-2 block / the sink section)."""
        cond = self.V(ch)
        if self.tag.get(id(ch.consumer)) != "sink":
            cond = f"{cond} and {self.R(ch)}"
        if self.count:
            i = self.cidx[id(ch)]
            return [f"if {cond}:", "    fired += 1", f"    T[{i}] += 1"]
        self._fire_terms.append(cond)
        return []

    # -- per-class phase-1 templates (output valid/data) -----------------
    def ph1(self, comp) -> List[str]:
        tag = self.tag[id(comp)]
        if tag is None:
            return self._ph1_called(comp)
        emit = getattr(self, f"_ph1_{tag}", None)
        if emit is None:
            return []
        return emit(comp)

    def _ph1_called(self, comp) -> List[str]:
        if not comp.outputs:
            return []  # e.g. PreVVUnit: nothing to drive forward
        i = self.xidx[id(comp)]
        self.need_call.add(i)
        lines = []
        for ch in comp.outputs.values():
            s = self.cidx[id(ch)]
            lines.append(f"c{s}.valid = False; c{s}.data = None")
        lines.append(f"x{i}_prop()")
        return lines

    def _ph1_entry(self, c) -> List[str]:
        x = self.X(c)
        o = c.outputs["out"]
        return [
            f"if {x}._emitted:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
            "else:",
            f"    _t = {x}._token",
            "    if _t is None:",
            f"        _t = {x}._token = Token({x}.value)",
            f"    {self.V(o)} = True; {self.D(o)} = _t",
        ]

    def _ph1_source(self, c) -> List[str]:
        x = self.X(c)
        o = c.outputs["out"]
        return [
            f"if {x}.limit is None or {x}.emitted < {x}.limit:",
            f"    _t = {x}._token",
            "    if _t is None:",
            f"        _t = {x}._token = Token({x}.value)",
            f"    {self.V(o)} = True; {self.D(o)} = _t",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_constant(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["ctrl"], c.outputs["out"]
        return [
            f"if {self.V(i)}:",
            f"    _t = {self.D(i)}",
            f"    _a = {x}._cache",
            "    if _a[0] is _t:",
            "        _o = _a[1]",
            "    else:",
            f"        _o = combine({x}.value, _t)",
            "        _a[0] = _t; _a[1] = _o",
            f"    {self.V(o)} = True; {self.D(o)} = _o",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_fork(self, c) -> List[str]:
        x = self.X(c)
        i = c.inputs["in"]
        outs = [c.outputs[f"out{k}"] for k in range(c.n_outputs)]
        lines = [f"if {self.V(i)}:", f"    _t = {self.D(i)}",
                 f"    _dn = {x}._done"]
        for k, o in enumerate(outs):
            lines += [
                f"    if _dn[{k}]:",
                f"        {self.V(o)} = False; {self.D(o)} = None",
                "    else:",
                f"        {self.V(o)} = True; {self.D(o)} = _t",
            ]
        lines.append("else:")
        for o in outs:
            lines.append(f"    {self.V(o)} = False; {self.D(o)} = None")
        return lines

    def _ph1_join(self, c) -> List[str]:
        x = self.X(c)
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        allv = " and ".join(self.V(ch) for ch in ins)
        same = " and ".join(
            f"_l[{k}] is {self.D(ch)}" for k, ch in enumerate(ins)
        )
        toks = ", ".join(self.D(ch) for ch in ins)
        return [
            f"if {allv}:",
            f"    _a = {x}._cache",
            "    _l = _a[0]",
            f"    if _l is not None and {same}:",
            "        _o = _a[1]",
            "    else:",
            f"        _l = [{toks}]",
            "        _o = combine(_l[0].value, *_l)",
            "        _a[0] = _l; _a[1] = _o",
            f"    {self.V(o)} = True; {self.D(o)} = _o",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_merge(self, c) -> List[str]:
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        lines = []
        for k, ch in enumerate(ins):
            kw = "if" if k == 0 else "elif"
            lines += [
                f"{kw} {self.V(ch)}:",
                f"    {self.V(o)} = True; {self.D(o)} = {self.D(ch)}",
            ]
        lines += ["else:", f"    {self.V(o)} = False; {self.D(o)} = None"]
        return lines

    def _ph1_mux(self, c) -> List[str]:
        x = self.X(c)
        s = c.inputs["select"]
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        n = c.n_inputs
        lines = [
            f"if {self.V(s)}:",
            f"    _st = {self.D(s)}",
            "    _i = int(_st.value)",
        ]
        for k, ch in enumerate(ins):
            kw = "if" if k == 0 else "elif"
            # `k - n` mirrors Python's negative list indexing in the
            # interpreted `ins[int(sel.value)]`.
            lines += [
                f"    {kw} _i == {k} or _i == {k - n}:",
                f"        _dv = {self.V(ch)}; _dt = {self.D(ch)}",
            ]
        lines += [
            "    else:",
            "        raise IndexError('mux select out of range')",
            "    if _dv:",
            f"        _a = {x}._cache",
            "        if _a[0] is _st and _a[1] is _dt:",
            "            _o = _a[2]",
            "        else:",
            "            _o = combine(_dt.value, _dt, _st)",
            "            _a[0] = _st; _a[1] = _dt; _a[2] = _o",
            f"        {self.V(o)} = True; {self.D(o)} = _o",
            "    else:",
            f"        {self.V(o)} = False; {self.D(o)} = None",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]
        return lines

    def _ph1_branch(self, c) -> List[str]:
        x = self.X(c)
        cond, data = c.inputs["cond"], c.inputs["data"]
        t, f = c.outputs["true"], c.outputs["false"]
        return [
            f"if {self.V(cond)} and {self.V(data)}:",
            f"    _ct = {self.D(cond)}; _dt = {self.D(data)}",
            f"    _a = {x}._cache",
            "    if _a[0] is _ct and _a[1] is _dt:",
            "        _o = _a[2]",
            "    else:",
            "        _o = combine(_dt.value, _dt, _ct)",
            "        _a[0] = _ct; _a[1] = _dt; _a[2] = _o",
            "    if _ct.value:",
            f"        {self.V(t)} = True; {self.D(t)} = _o",
            f"        {self.V(f)} = False; {self.D(f)} = None",
            "    else:",
            f"        {self.V(f)} = True; {self.D(f)} = _o",
            f"        {self.V(t)} = False; {self.D(t)} = None",
            "else:",
            f"    {self.V(t)} = False; {self.D(t)} = None",
            f"    {self.V(f)} = False; {self.D(f)} = None",
        ]

    def _ph1_select(self, c) -> List[str]:
        x = self.X(c)
        cond, a, b = c.inputs["cond"], c.inputs["a"], c.inputs["b"]
        o = c.outputs["out"]
        return [
            f"if {self.V(cond)} and {self.V(a)} and {self.V(b)}:",
            f"    _a = {x}._cache",
            f"    if _a[0] is {self.D(cond)} and _a[1] is {self.D(a)} "
            f"and _a[2] is {self.D(b)}:",
            "        _o = _a[3]",
            "    else:",
            f"        _ch = {self.D(a)} if {self.D(cond)}.value "
            f"else {self.D(b)}",
            f"        _o = combine(_ch.value, {self.D(cond)}, {self.D(a)}, "
            f"{self.D(b)})",
            f"        _a[0] = {self.D(cond)}; _a[1] = {self.D(a)}; "
            f"_a[2] = {self.D(b)}; _a[3] = _o",
            f"    {self.V(o)} = True; {self.D(o)} = _o",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_operator(self, c) -> List[str]:
        x = self.X(c)
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        if c.latency > 0:
            return [
                f"_p = {x}._pipe[-1]",
                "if _p is None:",
                f"    {self.V(o)} = False; {self.D(o)} = None",
                "else:",
                f"    {self.V(o)} = True; {self.D(o)} = _p",
            ]
        i = self.xidx[id(c)]
        self.need_fn.add(i)
        allv = " and ".join(self.V(ch) for ch in ins)
        same = " and ".join(
            f"_l[{k}] is {self.D(ch)}" for k, ch in enumerate(ins)
        )
        toks = ", ".join(self.D(ch) for ch in ins)
        vals = ", ".join(f"_l[{k}].value" for k in range(c.n_inputs))
        return [
            f"if {allv}:",
            f"    _a = {x}._c0_cache",
            "    _l = _a[0]",
            f"    if _l is not None and {same}:",
            "        _o = _a[1]",
            "    else:",
            f"        _l = [{toks}]",
            f"        _o = combine(x{i}_fn({vals}), *_l)",
            "        _a[0] = _l; _a[1] = _o",
            f"    {self.V(o)} = True; {self.D(o)} = _o",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_oehb(self, c) -> List[str]:
        x = self.X(c)
        o = c.outputs["out"]
        return [
            f"_s = {x}._slot",
            "if _s is None:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
            "else:",
            f"    {self.V(o)} = True; {self.D(o)} = _s",
        ]

    def _ph1_tehb(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [
            f"_s = {x}._slot",
            "if _s is not None:",
            f"    {self.V(o)} = True; {self.D(o)} = _s",
            f"elif {self.V(i)}:",
            f"    {self.V(o)} = True; {self.D(o)} = {self.D(i)}",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_tfifo(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [
            f"_q = {x}._items",
            "if _q:",
            f"    {self.V(o)} = True; {self.D(o)} = _q[0]",
            f"elif {self.V(i)}:",
            f"    {self.V(o)} = True; {self.D(o)} = {self.D(i)}",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_fifo(self, c) -> List[str]:
        x = self.X(c)
        o = c.outputs["out"]
        return [
            f"_q = {x}._items",
            "if _q:",
            f"    {self.V(o)} = True; {self.D(o)} = _q[0]",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_pair_packer(self, c) -> List[str]:
        x = self.X(c)
        ix, vl = c.inputs["index"], c.inputs["value"]
        o = c.outputs["out"]
        return [
            f"if {self.V(ix)} and {self.V(vl)}:",
            f"    _it = {self.D(ix)}; _vt = {self.D(vl)}",
            f"    _a = {x}._cache",
            "    if _a[0] is _it and _a[1] is _vt:",
            "        _o = _a[2]",
            "    else:",
            "        _o = combine((_it.value, _vt.value), _it, _vt)",
            "        _o.version = _vt.version",
            "        _a[0] = _it; _a[1] = _vt; _a[2] = _o",
            f"    {self.V(o)} = True; {self.D(o)} = _o",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_gen(self, c, value: str) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [
            f"if {self.V(i)}:",
            f"    _t = {self.D(i)}",
            f"    _a = {x}._cache",
            "    if _a[0] is not _t:",
            "        _a[0] = _t",
            f"        _a[1] = _t.with_value(({value},))",
            f"    {self.V(o)} = True; {self.D(o)} = _a[1]",
            "else:",
            f"    {self.V(o)} = False; {self.D(o)} = None",
        ]

    def _ph1_fake_gen(self, c) -> List[str]:
        return self._ph1_gen(c, "'fake'")

    def _ph1_done_gen(self, c) -> List[str]:
        return self._ph1_gen(c, "'done'")

    # -- per-class phase-2 templates (input ready + transfer count) ------
    def ph2(self, comp) -> List[str]:
        tag = self.tag[id(comp)]
        if tag is None:
            return self._ph2_called(comp)
        emit = getattr(self, f"_ph2_{tag}", None)
        lines = [] if emit is None else emit(comp)
        for ch in comp.inputs.values():
            lines += self._fire(ch)
        return lines

    def _ph2_called(self, comp) -> List[str]:
        i = self.xidx[id(comp)]
        self.need_call.add(i)
        lines = []
        # Re-drive from scratch with every consumer ready now settled:
        # outputs (identical values — propagate is state/input-valid
        # driven) and input readies (now final).
        for ch in comp.outputs.values():
            s = self.cidx[id(ch)]
            lines.append(f"c{s}.valid = False; c{s}.data = None")
        for ch in comp.inputs.values():
            s = self.cidx[id(ch)]
            lines.append(f"c{s}.ready = False")
        lines.append(f"x{i}_prop()")
        for ch in comp.inputs.values():
            lines += self._fire(ch)
        return lines

    def _ph2_constant(self, c) -> List[str]:
        i, o = c.inputs["ctrl"], c.outputs["out"]
        return [f"{self.R(i)} = {self.V(i)} and {self.R(o)}"]

    def _ph2_fork(self, c) -> List[str]:
        x = self.X(c)
        i = c.inputs["in"]
        outs = [c.outputs[f"out{k}"] for k in range(c.n_outputs)]
        terms = " and ".join(
            f"(_dn[{k}] or {self.R(o)})" for k, o in enumerate(outs)
        )
        return [
            f"_dn = {x}._done",
            f"{self.R(i)} = {self.V(i)} and {terms}",
        ]

    def _ph2_join(self, c) -> List[str]:
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        allv = " and ".join(self.V(ch) for ch in ins)
        lines = [f"_r = {allv} and {self.R(o)}"]
        for ch in ins:
            lines.append(f"{self.R(ch)} = _r")
        return lines

    def _ph2_merge(self, c) -> List[str]:
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        lines = []
        for k, ch in enumerate(ins):
            kw = "if" if k == 0 else "elif"
            lines.append(f"{kw} {self.V(ch)}:")
            for j, other in enumerate(ins):
                val = self.R(o) if j == k else "False"
                lines.append(f"    {self.R(other)} = {val}")
        lines.append("else:")
        for ch in ins:
            lines.append(f"    {self.R(ch)} = False")
        return lines

    def _ph2_mux(self, c) -> List[str]:
        s = c.inputs["select"]
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        n = c.n_inputs
        lines = [f"{self.R(s)} = False"]
        for ch in ins:
            lines.append(f"{self.R(ch)} = False")
        lines += [f"if {self.V(s)}:", f"    _i = int({self.D(s)}.value)"]
        for k, ch in enumerate(ins):
            kw = "if" if k == 0 else "elif"
            lines += [
                f"    {kw} _i == {k} or _i == {k - n}:",
                f"        if {self.V(ch)} and {self.R(o)}:",
                f"            {self.R(s)} = True; {self.R(ch)} = True",
            ]
        return lines

    def _ph2_branch(self, c) -> List[str]:
        cond, data = c.inputs["cond"], c.inputs["data"]
        t, f = c.outputs["true"], c.outputs["false"]
        return [
            f"if {self.V(cond)} and {self.V(data)}:",
            f"    _r = {self.R(t)} if {self.D(cond)}.value else {self.R(f)}",
            f"    {self.R(cond)} = _r; {self.R(data)} = _r",
            "else:",
            f"    {self.R(cond)} = False; {self.R(data)} = False",
        ]

    def _ph2_select(self, c) -> List[str]:
        cond, a, b = c.inputs["cond"], c.inputs["a"], c.inputs["b"]
        o = c.outputs["out"]
        return [
            f"_r = {self.V(cond)} and {self.V(a)} and {self.V(b)} "
            f"and {self.R(o)}",
            f"{self.R(cond)} = _r; {self.R(a)} = _r; {self.R(b)} = _r",
        ]

    def _ph2_operator(self, c) -> List[str]:
        x = None
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        allv = " and ".join(self.V(ch) for ch in ins)
        if c.latency > 0:
            x = self.X(c)
            lines = [
                f"_r = {allv} and ({x}._pipe[-1] is None or {self.R(o)})"
            ]
        else:
            lines = [f"_r = {allv} and {self.R(o)}"]
        for ch in ins:
            lines.append(f"{self.R(ch)} = _r")
        return lines

    def _ph2_oehb(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [f"{self.R(i)} = {x}._slot is None or {self.R(o)}"]

    def _ph2_tehb(self, c) -> List[str]:
        x = self.X(c)
        i = c.inputs["in"]
        return [f"{self.R(i)} = {x}._slot is None"]

    def _ph2_tfifo(self, c) -> List[str]:
        x = self.X(c)
        i = c.inputs["in"]
        return [f"{self.R(i)} = len({x}._items) < {c.depth}"]

    def _ph2_fifo(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [
            f"{self.R(i)} = len({x}._items) < {c.depth} or {self.R(o)}"
        ]

    def _ph2_pair_packer(self, c) -> List[str]:
        ix, vl = c.inputs["index"], c.inputs["value"]
        o = c.outputs["out"]
        return [
            f"_r = {self.V(ix)} and {self.V(vl)} and {self.R(o)}",
            f"{self.R(ix)} = _r; {self.R(vl)} = _r",
        ]

    def _ph2_fake_gen(self, c) -> List[str]:
        i, o = c.inputs["in"], c.outputs["out"]
        return [f"{self.R(i)} = {self.V(i)} and {self.R(o)}"]

    _ph2_done_gen = _ph2_fake_gen

    # -- per-class tick templates ---------------------------------------
    def tick(self, comp) -> List[str]:
        tag = self.tag[id(comp)]
        if tag is None:
            i = self.xidx[id(comp)]
            self.need_call.add(i)
            return [f"x{i}_tick()"]
        emit = getattr(self, f"_tick_{tag}", None)
        if emit is None:
            return []
        return emit(comp)

    def _tick_entry(self, c) -> List[str]:
        x = self.X(c)
        o = c.outputs["out"]
        return [
            f"if not {x}._emitted and {self.V(o)} and {self.R(o)}:",
            f"    {x}._emitted = True",
        ]

    def _tick_source(self, c) -> List[str]:
        x = self.X(c)
        o = c.outputs["out"]
        return [
            f"if {self.V(o)} and {self.R(o)}:",
            f"    {x}.emitted += 1",
        ]

    def _tick_sink(self, c) -> List[str]:
        x = self.X(c)
        i = c.inputs["in"]
        lines = [f"if {self.V(i)}:", f"    {x}.count += 1"]
        if c.record:
            lines.append(f"    {x}.received.append({self.D(i)})")
        return lines

    def _tick_fork(self, c) -> List[str]:
        x = self.X(c)
        i = c.inputs["in"]
        outs = [c.outputs[f"out{k}"] for k in range(c.n_outputs)]
        lines = [
            f"if {self.V(i)}:",
            f"    if {self.R(i)}:",
            f"        if True in {x}._done:",
            f"            {x}._done = [False] * {c.n_outputs}",
            "    else:",
            f"        _dn = {x}._done",
        ]
        for k, o in enumerate(outs):
            lines.append(
                f"        if {self.V(o)} and {self.R(o)} and not _dn[{k}]: "
                f"_dn[{k}] = True"
            )
        return lines

    def _tick_operator(self, c) -> List[str]:
        if c.latency == 0:
            return []
        i = self.xidx[id(c)]
        x = self.X(c)
        self.need_fn.add(i)
        ins = [c.inputs[f"in{k}"] for k in range(c.n_inputs)]
        o = c.outputs["out"]
        allv = " and ".join(self.V(ch) for ch in ins)
        vals = ", ".join(f"{self.D(ch)}.value" for ch in ins)
        toks = ", ".join(self.D(ch) for ch in ins)
        return [
            f"_p = {x}._pipe",
            f"if _p[-1] is None or ({self.V(o)} and {self.R(o)}):",
            f"    if {allv} and {self.R(ins[0])}:",
            f"        _o = combine(x{i}_fn({vals}), {toks})",
            "    else:",
            "        _o = None",
            f"    {x}._pipe = [_o] + _p[:-1]",
        ]

    def _tick_oehb(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [
            f"_s = {x}._slot",
            f"if _s is not None and {self.V(o)} and {self.R(o)}:",
            "    _s = None",
            f"if {self.V(i)} and {self.R(i)}:",
            f"    _s = {self.D(i)}",
            f"{x}._slot = _s",
        ]

    def _tick_tehb(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [
            f"if {x}._slot is None:",
            f"    if {self.V(i)} and {self.R(i)} "
            f"and not ({self.V(o)} and {self.R(o)}):",
            f"        {x}._slot = {self.D(i)}",
            f"elif {self.V(o)} and {self.R(o)}:",
            f"    {x}._slot = None",
        ]

    def _tick_tfifo(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [
            f"_q = {x}._items",
            f"_of = {self.V(o)} and {self.R(o)}",
            "if _q:",
            "    if _of:",
            "        _q.popleft()",
            f"    if {self.V(i)} and {self.R(i)}:",
            f"        _q.append({self.D(i)})",
            f"elif {self.V(i)} and {self.R(i)} and not _of:",
            f"    _q.append({self.D(i)})",
        ]

    def _tick_fifo(self, c) -> List[str]:
        x = self.X(c)
        i, o = c.inputs["in"], c.outputs["out"]
        return [
            f"_q = {x}._items",
            f"if _q and {self.V(o)} and {self.R(o)}:",
            "    _q.popleft()",
            f"if {self.V(i)} and {self.R(i)}:",
            f"    _q.append({self.D(i)})",
        ]

    def _tick_fake_gen(self, c) -> List[str]:
        x = self.X(c)
        o = c.outputs["out"]
        return [
            f"if {self.V(o)} and {self.R(o)}:",
            f"    {x}.generated += 1",
        ]

    _tick_done_gen = _tick_fake_gen

    # -- phase-2 evaluation order ---------------------------------------
    def _phase2_order(self) -> List[Component]:
        """Kahn order with consumers before ready-observing producers.

        A component's phase-2 block finalizes its *input* readies; a
        producer that observes output ready must therefore run after all
        its consumers' blocks.  The inverse of the acyclic ready network
        checked by :func:`why_not_compilable`, so the sort always
        completes.
        """
        import heapq

        nodes = [
            c
            for c in self.comps
            if c.inputs and self.tag[id(c)] != "sink"
        ]
        node_ids = {id(c) for c in nodes}
        succs: Dict[int, List[Component]] = {id(c): [] for c in nodes}
        indeg: Dict[int, int] = {id(c): 0 for c in nodes}
        for c in nodes:
            if not c.observes_output_ready:
                continue
            seen = set()
            for ch in c.outputs.values():
                u = ch.consumer
                if u is None or id(u) not in node_ids or id(u) in seen:
                    continue
                if u is c:
                    continue
                seen.add(id(u))
                succs[id(u)].append(c)
                indeg[id(c)] += 1
        heap = [
            self.xidx[id(c)] for c in nodes if indeg[id(c)] == 0
        ]
        heapq.heapify(heap)
        order: List[Component] = []
        while heap:
            c = self.comps[heapq.heappop(heap)]
            order.append(c)
            for succ in succs[id(c)]:
                indeg[id(succ)] -= 1
                if indeg[id(succ)] == 0:
                    heapq.heappush(heap, self.xidx[id(succ)])
        if len(order) != len(nodes):
            raise CodegenUnsupportedError(
                f"{self.circuit.name}: ready network left a cyclic residue"
            )
        return order

    # -- assembly --------------------------------------------------------
    def emit(self) -> Tuple[str, int]:
        """Return ``(source, n_evals)`` of the ``make_step`` module."""
        body: List[str] = ["fired = 0"]

        body.append("# ---- phase 1: valid/data wave (levelized order) ----")
        for comp in levelize(self.circuit).order:
            block = self.ph1(comp)
            if block:
                body.append(f"# ph1 {comp.name} ({type(comp).__name__})")
                body += block
                self.n_evals += 1

        body.append("# ---- phase 2: ready wave (reverse ready-topo) ----")
        for comp in self._phase2_order():
            body.append(f"# ph2 {comp.name} ({type(comp).__name__})")
            body += self.ph2(comp)
            self.n_evals += 1

        sink_chs = [
            ch
            for ch in self.channels
            if self.tag.get(id(ch.consumer)) == "sink"
        ]
        if sink_chs:
            body.append("# ---- sink transfers (ready is constant) ----")
            for ch in sink_chs:
                body += self._fire(ch)

        if self._fire_terms:
            body.append("# ---- transfer count (signals are final) ----")
            terms = self._fire_terms
            for start in range(0, len(terms), 16):
                chunk = " + ".join(
                    f"({t})" for t in terms[start:start + 16]
                )
                body.append(f"fired += {chunk}")

        body.append("# ---- any-valid (feeds the done fast path) ----")
        terms = [self.V(ch) for ch in self.channels]
        if not terms:
            body.append("av = False")
        else:
            first, rest = terms[:16], terms[16:]
            body.append(f"av = {' or '.join(first)}")
            while rest:
                chunk, rest = rest[:16], rest[16:]
                body.append("if not av:")
                body.append(f"    av = {' or '.join(chunk)}")

        body.append("# ---- clock edge ----")
        for comp in self.comps:
            if not _overrides(comp, "tick"):
                continue
            if self.tag[id(comp)] == "operator" and comp.latency == 0:
                continue
            block = self.tick(comp)
            if block:
                body.append(f"# tick {comp.name}")
                body += block

        # Fork.flush reads its input channel's data during a squash, so
        # those signals must be live whenever squash hooks can run.
        gated = any(
            _class_key(type(c)) == _GATE_KEY for c in self.comps
        )
        always_spill: set = set()
        if gated:
            body.append("# ---- fork inputs stay live for squash flush ----")
            for ch in self.channels:
                if (
                    self.is_local[id(ch)]
                    and self.tag.get(id(ch.consumer)) == "fork"
                ):
                    i = self.cidx[id(ch)]
                    always_spill.add(id(ch))
                    body.append(f"c{i}.valid = v{i}; c{i}.data = d{i}")

        body.append("if sync:")
        spilled = False
        for ch in self.channels:
            if not self.is_local[id(ch)]:
                continue
            i = self.cidx[id(ch)]
            parts = []
            if id(ch) not in always_spill:
                parts += [f"c{i}.valid = v{i}", f"c{i}.data = d{i}"]
            if self.tag.get(id(ch.consumer)) != "sink":
                parts.append(f"c{i}.ready = r{i}")
            if parts:
                body.append("    " + "; ".join(parts))
                spilled = True
        if not spilled:
            body.append("    pass")
        body.append("return fired, av")

        # Bindings: channel objects, component instances, pre-bound
        # methods — passed as default arguments so every access inside
        # step() is a LOAD_FAST.
        binds = [f"c{i}=c{i}" for i in range(len(self.channels))]
        binds += [f"x{i}=x{i}" for i in sorted(self.need_comp)]
        binds += [f"x{i}_fn=x{i}_fn" for i in sorted(self.need_fn)]
        binds += [f"x{i}_prop=x{i}_prop" for i in sorted(self.need_call)]
        binds += ["T=T", "combine=combine", "Token=Token", "int=int",
                  "len=len"]
        tick_binds = [
            f"x{i}_tick=x{i}_tick" for i in sorted(self.need_call)
        ]
        binds += tick_binds

        out: List[str] = [
            f"# generated by repro.dataflow.codegen v{CODEGEN_VERSION} "
            f"for circuit structure of {self.circuit.name!r}",
            f"# components: {len(self.comps)}  channels: "
            f"{len(self.channels)}  evals/cycle: {self.n_evals}",
            "",
            "def make_step(channels, comps):",
        ]
        for i in range(len(self.channels)):
            out.append(f"    c{i} = channels[{i}]")
        for i in sorted(self.need_comp):
            out.append(f"    x{i} = comps[{i}]")
        for i in sorted(self.need_fn):
            out.append(f"    x{i}_fn = comps[{i}].fn")
        for i in sorted(self.need_call):
            out.append(f"    x{i}_prop = comps[{i}].propagate")
            out.append(f"    x{i}_tick = comps[{i}].tick")
        out.append(f"    T = [0] * {len(self.channels)}")
        for ch in self.channels:
            if self.tag.get(id(ch.consumer)) == "sink":
                out.append(f"    c{self.cidx[id(ch)]}.ready = True")
        sig = ", ".join(["sync"] + binds)
        out.append(f"    def step({sig}):")
        for line in body:
            out.append(f"        {line}")
        out.append("        pass")
        out.append("    return step, T")
        out.append("")
        return "\n".join(out), self.n_evals

# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------
class CompiledPlan:
    """One compiled circuit structure: emitted source + exec'd factory.

    A plan is structure-bound, not instance-bound: :meth:`bind` attaches
    it to any circuit with the same :func:`structural_key`, which is how
    batched runs reuse one compilation across many rebuilt circuits.
    """

    __slots__ = ("key", "source", "make_step", "n_evals")

    def __init__(self, key: Tuple, source: str, make_step, n_evals: int):
        self.key = key
        self.source = source
        self.make_step = make_step
        self.n_evals = n_evals

    def bind(self, circuit: Circuit):
        """Return ``(step_fn, transfer_counts)`` bound to ``circuit``."""
        return self.make_step(list(circuit.channels), list(circuit.components))


_PLAN_CACHE: Dict[Tuple, CompiledPlan] = {}
_CACHE_STATS = {"hits": 0, "misses": 0}


def plan_cache_stats() -> Dict[str, int]:
    """Copy of the hit/miss counters (test hook for no-recompile proofs)."""
    return dict(_CACHE_STATS)


def clear_plan_cache() -> None:
    _PLAN_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def plan_for(circuit: Circuit, count_transfers: bool = False) -> CompiledPlan:
    """Compile ``circuit`` (or fetch the cached plan for its structure).

    Raises :class:`CodegenUnsupportedError` when the circuit cannot be
    compiled; :func:`why_not_compilable` gives the reason.
    """
    reason = why_not_compilable(circuit)
    if reason is not None:
        raise CodegenUnsupportedError(f"{circuit.name}: {reason}")
    key = structural_key(circuit, count_transfers)
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _CACHE_STATS["hits"] += 1
        return plan
    _CACHE_STATS["misses"] += 1
    source, n_evals = _StepEmitter(circuit, count_transfers).emit()
    namespace = {"combine": combine, "Token": Token}
    exec(  # noqa: S102 - the source is generated above, not user input
        compile(source, f"<codegen:{circuit.name}>", "exec"), namespace
    )
    plan = CompiledPlan(key, source, namespace["make_step"], n_evals)
    _PLAN_CACHE[key] = plan
    return plan


def emitted_source(circuit: Circuit, count_transfers: bool = False) -> str:
    """The generated ``make_step`` module for ``circuit`` (debug artifact)."""
    return plan_for(circuit, count_transfers).source


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class CompiledSimulator:
    """Drives a circuit with its compiled step function.

    Drop-in for :class:`~repro.dataflow.simulator.Simulator` on the
    stat-free path: same constructor shape, same ``run``/``run_cycles``/
    ``step`` surface, same error behaviour, bit-identical architectural
    results.  Tracing and per-channel stall statistics are *not*
    supported (``collect_stats=True`` or a ``trace`` raises
    :class:`CodegenUnsupportedError`); ``count_transfers=True`` keeps
    per-channel transfer counts — the only per-channel statistic the
    analysis layers read — at a fraction of the interpreted stat cost.

    After a completed :meth:`run`, channel ``valid``/``data`` hold their
    settled (all-idle) values; ``ready`` attributes are left stale from
    the last synchronized cycle — no library code reads them post-run.
    """

    engine_name = "compiled"

    def __init__(
        self,
        circuit: Circuit,
        max_cycles: int = 1_000_000,
        deadlock_window: int = 256,
        fixpoint_cap: int = 10_000,  # accepted for ctor parity; unused
        trace=None,
        collect_stats: bool = False,
        count_transfers: bool = False,
    ):
        if trace is not None:
            raise CodegenUnsupportedError(
                "tracing requires an interpreted engine"
            )
        if collect_stats:
            raise CodegenUnsupportedError(
                "per-channel stall/idle statistics require an interpreted "
                "engine (use count_transfers=True for transfer counts)"
            )
        self.circuit = circuit
        self.max_cycles = max_cycles
        self.deadlock_window = deadlock_window
        self.trace = None
        self.collect_stats = False
        self.count_transfers = count_transfers
        self.stats = SimulationStats()
        self._quiet_cycles = 0
        self.end_of_cycle_hooks: List[Callable] = []
        self.abort_condition: Optional[Callable[[], bool]] = None
        circuit.validate()
        self.plan = plan_for(circuit, count_transfers)
        self._step_fn, self._transfer_counts = self.plan.bind(circuit)
        self._channels = list(circuit.channels)
        self._busy_comps = [
            c for c in circuit.components if _overrides(c, "is_busy")
        ]

    # ------------------------------------------------------------------
    def _step(self, sync: bool) -> Tuple[int, bool]:
        fired, any_valid = self._step_fn(sync)
        for hook in self.end_of_cycle_hooks:
            hook()
        stats = self.stats
        stats.cycles += 1
        stats.transfers += fired
        stats.propagate_calls += self.plan.n_evals
        return fired, any_valid

    def step(self) -> int:
        """Simulate one cycle (signals synchronized); returns transfers."""
        return self._step(True)[0]

    def run_cycles(self, n: int) -> SimulationStats:
        """Run exactly ``n`` cycles (no completion/deadlock checks)."""
        for _ in range(n):
            self._step(True)
        if self.count_transfers:
            self.flush_channel_stats()
        return self.stats

    def run(self, done: Callable[[], bool]) -> SimulationStats:
        """Run until ``done()`` is true; raise on deadlock or cycle budget.

        When ``done`` carries a ``split = (pre, post)`` attribute (see
        :func:`repro.eval.runner.make_done_condition`), no abort
        condition is installed and every end-of-cycle hook duck-types as
        a squash controller, the loop runs *unsynchronized*: channel
        signals stay in step-function locals and the emitted any-valid
        flag replaces the done condition's channel scan.  Signals are
        spilled as soon as a cycle makes no progress, so deadlock
        diagnostics see live values.
        """
        self._quiet_cycles = 0
        split = getattr(done, "split", None)
        fast = (
            split is not None
            and self.abort_condition is None
            and all(
                hasattr(getattr(h, "__self__", None), "has_pending_squash")
                for h in self.end_of_cycle_hooks
            )
        )
        if not fast:
            return self._run_synced(done)
        pre, post = split
        force_sync = self.deadlock_window <= 1
        any_valid: Optional[bool] = None
        while True:
            if any_valid is None:
                # First iteration: channels are in reset state, which is
                # exactly what done() expects to scan.
                if done():
                    break
            elif not any_valid and pre() and post():
                break
            if self.stats.cycles >= self.max_cycles:
                raise SimulationError(
                    f"{self.circuit.name}: exceeded {self.max_cycles} "
                    "cycles without completing"
                )
            # Quiet cycles run synchronized so a deadlock raise (and any
            # external inspection) sees live channel signals.
            sync = force_sync or self._quiet_cycles > 0
            fired, any_valid = self._step(sync)
            busy = fired > 0 or any(c.is_busy for c in self._busy_comps)
            if busy:
                self._quiet_cycles = 0
            else:
                self._quiet_cycles += 1
                if self._quiet_cycles >= self.deadlock_window:
                    self._raise_deadlock()
        # Leave valid/data in their settled (all-idle) state for external
        # readers; at completion every settled valid is False.
        for ch in self._channels:
            ch.valid = False
            ch.data = None
        if self.count_transfers:
            self.flush_channel_stats()
        return self.stats

    def _run_synced(self, done: Callable[[], bool]) -> SimulationStats:
        while not done():
            if self.abort_condition is not None and self.abort_condition():
                break
            if self.stats.cycles >= self.max_cycles:
                raise SimulationError(
                    f"{self.circuit.name}: exceeded {self.max_cycles} "
                    "cycles without completing"
                )
            fired, _ = self._step(True)
            busy = fired > 0 or any(c.is_busy for c in self._busy_comps)
            if busy:
                self._quiet_cycles = 0
            else:
                self._quiet_cycles += 1
                if self._quiet_cycles >= self.deadlock_window:
                    self._raise_deadlock()
        if self.count_transfers:
            self.flush_channel_stats()
        return self.stats

    def flush_channel_stats(self) -> None:
        """Fold the step function's transfer counters into the channels.

        Idempotent (counters are zeroed as they are folded); called
        automatically at the end of ``run``/``run_cycles`` when
        ``count_transfers`` is on.
        """
        counts = self._transfer_counts
        for i, ch in enumerate(self._channels):
            n = counts[i]
            if n:
                ch.transfers += n
                counts[i] = 0

    def _raise_deadlock(self) -> None:
        stuck = [c for c in self.circuit.channels if c.valid and not c.ready]
        names = ", ".join(c.name for c in stuck[:8])
        more = "" if len(stuck) <= 8 else f" (+{len(stuck) - 8} more)"
        raise DeadlockError(
            f"{self.circuit.name}: no progress for {self.deadlock_window} "
            f"cycles at cycle {self.stats.cycles}; stalled channels: "
            f"{names}{more}",
            stuck_channels=stuck,
        )
