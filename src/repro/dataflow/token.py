"""Tokens flowing through elastic channels.

A token carries a payload ``value`` plus *speculation tags*: a mapping from
squash-domain identifier to the iteration number the token belongs to.
Tags are assigned by :class:`~repro.dataflow.replay.ReplayGate` components at
loop-body entry and propagate through every downstream component by
max-merging, so that a PreVV squash of ``iter >= e`` can kill exactly the
in-flight state produced by the squashed iterations (Sec. IV of the paper:
"the entire pipeline following it needs to be squashed").

Tokens are immutable; combining or retagging produces new tokens.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional


class Token:
    """A single unit of data travelling through the dataflow circuit."""

    __slots__ = ("value", "tags", "version")

    def __init__(
        self,
        value: Any = None,
        tags: Optional[Dict[int, int]] = None,
        version: Optional[int] = None,
    ):
        self.value = value
        self.tags: Dict[int, int] = tags or {}
        #: memory version observed by a load response (None elsewhere);
        #: lets the PreVV arbiter order reads against store commits exactly
        self.version = version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.tags:
            return f"Token({self.value!r}, tags={self.tags})"
        return f"Token({self.value!r})"

    def __eq__(self, other) -> bool:
        """Value equality, so the simulator's fixpoint change detection sees
        identical re-drives of the same logical token as 'no change'."""
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.value == other.value
            and self.tags == other.tags
            and self.version == other.version
        )

    def __hash__(self) -> int:
        return hash(
            (self.value, tuple(sorted(self.tags.items())), self.version)
        )

    def with_value(self, value: Any) -> "Token":
        """A copy of this token carrying ``value`` but the same tags."""
        return Token(value, dict(self.tags), self.version)

    def with_tag(self, domain: int, iteration: int) -> "Token":
        """A copy with the tag for ``domain`` overridden to ``iteration``."""
        tags = dict(self.tags)
        tags[domain] = iteration
        return Token(self.value, tags, self.version)

    def tag(self, domain: int) -> int:
        """Iteration tag for ``domain``; ``-1`` when untagged."""
        return self.tags.get(domain, -1)

    def is_squashed_by(self, domain: int, min_iter: int) -> bool:
        """True when a squash of ``domain`` iterations ``>= min_iter`` kills us."""
        return self.tags.get(domain, -1) >= min_iter


def merge_tags(tokens: Iterable[Token]) -> Dict[int, int]:
    """Max-merge the tags of ``tokens`` (union of domains, max iteration).

    Used by every multi-input component so that derived values inherit the
    speculation of all their sources.  When at most one source carries tags
    — the overwhelmingly common case on this hot path — its dict is
    returned as-is; that aliasing is safe because tokens are immutable
    (:meth:`Token.with_tag` / :meth:`Token.with_value` always copy).
    """
    merged: Optional[Dict[int, int]] = None
    owned = False
    for tok in tokens:
        if tok is None or not tok.tags:
            continue
        tags = tok.tags
        if merged is None:
            merged = tags
        elif tags is not merged:
            if not owned:
                merged = dict(merged)
                owned = True
            get = merged.get
            for dom, it in tags.items():
                if get(dom, -1) < it:
                    merged[dom] = it
    return {} if merged is None else merged


def combine(value: Any, *sources: Token) -> Token:
    """A new token with ``value`` and tags merged from ``sources``."""
    return Token(value, merge_tags(sources))
