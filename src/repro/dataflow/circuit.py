"""Circuit container: components, channels, wiring and validation."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import CircuitError
from .channel import Channel
from .component import Component


class Circuit:
    """A netlist of elastic components connected by point-to-point channels."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.components: List[Component] = []
        self._by_name: Dict[str, Component] = {}
        self.channels: List[Channel] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, component: Component) -> Component:
        if component.name in self._by_name:
            raise CircuitError(f"duplicate component name {component.name!r}")
        self.components.append(component)
        self._by_name[component.name] = component
        return component

    def get(self, name: str) -> Component:
        try:
            return self._by_name[name]
        except KeyError:
            raise CircuitError(f"no component named {name!r}") from None

    def connect(
        self,
        producer: Component,
        out_port: str,
        consumer: Component,
        in_port: str,
        name: Optional[str] = None,
    ) -> Channel:
        """Wire ``producer.out_port`` to ``consumer.in_port``."""
        for comp in (producer, consumer):
            if comp.name not in self._by_name:
                raise CircuitError(
                    f"component {comp.name!r} must be added before connecting"
                )
        chan = Channel(name or f"{producer.name}.{out_port}->{consumer.name}.{in_port}")
        producer.attach_output(out_port, chan)
        consumer.attach_input(in_port, chan)
        self.channels.append(chan)
        return chan

    def validate(self) -> None:
        """Check that every declared port is wired exactly once."""
        problems = []
        for comp in self.components:
            for port in comp.expected_inputs():
                if port not in comp.inputs:
                    problems.append(f"{comp.name}: input {port!r} unconnected")
            for port in comp.expected_outputs():
                if port not in comp.outputs:
                    problems.append(f"{comp.name}: output {port!r} unconnected")
        for chan in self.channels:
            if chan.producer is None or chan.consumer is None:
                problems.append(f"channel {chan.name}: dangling end")
        if problems:
            raise CircuitError("; ".join(problems))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def components_of(self, cls) -> List[Component]:
        return [c for c in self.components if isinstance(c, cls)]

    def flush(self, domain: int, min_iter: int) -> None:
        """Squash: drop every internal token of ``domain`` iterations >= e."""
        for comp in self.components:
            comp.flush(domain, min_iter)

    def total_resources(self):  # convenience; full report in repro.area
        from ..area.report import circuit_report

        return circuit_report(self)

    def stats_summary(self) -> Dict[str, int]:
        return {
            "components": len(self.components),
            "channels": len(self.channels),
            "transfers": sum(c.transfers for c in self.channels),
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Circuit({self.name}, {len(self.components)} components, "
            f"{len(self.channels)} channels)"
        )
