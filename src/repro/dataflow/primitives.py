"""Basic elastic components: entry, source, sink, constant, fork, join.

These mirror the Dynamatic component library [Josipović et al., 2020]:

* :class:`Entry` — emits exactly one start token (the function's control
  activation) and is then silent.
* :class:`Source` — offers an endless stream of constant tokens (used only
  in tests; real circuits trigger constants from control tokens).
* :class:`Sink` — consumes and records everything (always ready).
* :class:`Constant` — one constant-valued token per incoming control token.
* :class:`Fork` — eager fork: each successor receives its copy as soon as it
  is ready, tracked with per-output ``done`` bits.
* :class:`Join` — synchronizes N control tokens into one.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .component import Component
from .token import Token, combine


class Entry(Component):
    """Emits a single start token, then goes quiet.

    The start token models the function-call control activation that
    Dynamatic feeds into the entry basic block.
    """

    resource_class = "entry"
    observes_output_ready = False  # emits unconditionally until consumed
    scheduling_contract_audited = True

    def __init__(self, name: str, value: Any = None):
        super().__init__(name)
        self.value = value
        self._emitted = False
        self._token: Optional[Token] = None  # stable across evaluations

    def propagate(self) -> None:
        if not self._emitted:
            token = self._token
            if token is None:
                token = self._token = Token(self.value)
            self.drive_out("out", token)

    def tick(self):
        if not self._emitted and self.out_fires("out"):
            self._emitted = True
            return True
        return False

    def reset(self) -> None:
        self._emitted = False


class Source(Component):
    """Endless stream of identical tokens (test helper)."""

    resource_class = "source"
    observes_output_ready = False  # offers unconditionally
    scheduling_contract_audited = True

    def __init__(self, name: str, value: Any = None, limit: Optional[int] = None):
        super().__init__(name)
        self.value = value
        self.limit = limit
        self.emitted = 0
        self._token: Optional[Token] = None  # stable across evaluations

    def propagate(self) -> None:
        if self.limit is None or self.emitted < self.limit:
            token = self._token
            if token is None:
                token = self._token = Token(self.value)
            self.drive_out("out", token)

    def tick(self):
        if self.out_fires("out"):
            self.emitted += 1
            # Only a limited source's outputs depend on the count.
            return self.limit is not None
        return False


class Sink(Component):
    """Always-ready consumer that records received tokens."""

    resource_class = "sink"
    observes_input_valid = False  # unconditionally ready
    scheduling_contract_audited = True

    def __init__(self, name: str, record: bool = True):
        super().__init__(name)
        self.record = record
        self.received: List[Token] = []
        self.count = 0

    def propagate(self) -> None:
        self.drive_ready("in", True)

    def tick(self):
        ch = self.inputs["in"]
        if ch.fires:
            self.count += 1
            if self.record:
                self.received.append(ch.data)
        return False  # propagate is unconditionally ready regardless

    def flush(self, domain: int, min_iter: int) -> None:
        kept = [t for t in self.received if not t.is_squashed_by(domain, min_iter)]
        self.count -= len(self.received) - len(kept)
        self.received = kept

    @property
    def values(self) -> List[Any]:
        return [t.value for t in self.received]


class Constant(Component):
    """One constant token per control token (Dynamatic's triggered constant)."""

    resource_class = "constant"
    scheduling_contract_audited = True

    def __init__(self, name: str, value: Any, width: int = 32):
        super().__init__(name)
        self.value = value
        self.width = width
        self._cache = [None, None]  # [ctrl token, combined output token]

    def propagate(self) -> None:
        if self.in_valid("ctrl"):
            ctrl = self.in_token("ctrl")
            cache = self._cache
            if cache[0] is ctrl:
                out = cache[1]
            else:
                out = combine(self.value, ctrl)
                cache[0] = ctrl
                cache[1] = out
            self.drive_out("out", out)
            self.drive_ready("ctrl", self.out_ready("out"))

    @property
    def resource_params(self):
        return {"width": self.width}


class Fork(Component):
    """Eager fork with per-output done bits.

    Output ports are ``out0 .. out{n-1}``.  Each successor may accept its
    copy in a different cycle; the input token is consumed once every
    successor has taken (or takes this cycle) its copy.
    """

    resource_class = "fork"
    scheduling_contract_audited = True

    def __init__(self, name: str, n_outputs: int, width: int = 32):
        super().__init__(name)
        if n_outputs < 1:
            raise ValueError("fork needs at least one output")
        self.n_outputs = n_outputs
        self.width = width
        self._done = [False] * n_outputs
        self._out_chs: Optional[List] = None  # bound lazily after wiring

    def out_port(self, i: int) -> str:
        return f"out{i}"

    def _bind(self):
        chs = [self.outputs[f"out{i}"] for i in range(self.n_outputs)]
        self._out_chs = chs
        return chs

    def propagate(self) -> None:
        in_ch = self.inputs["in"]
        if not in_ch.valid:
            return
        outs = self._out_chs or self._bind()
        tok = in_ch.data
        all_consumed = True
        for ch, done in zip(outs, self._done):
            if done:
                continue
            ch.valid = True
            ch.data = tok
            if not ch.ready:
                all_consumed = False
        if all_consumed:
            in_ch.ready = True

    def tick(self):
        ch = self.inputs["in"]
        if not ch.valid:
            return False
        if ch.ready:
            if any(self._done):
                self._done = [False] * self.n_outputs
                return True
            return False
        outs = self._out_chs or self._bind()
        done = self._done
        changed = False
        for i, out_ch in enumerate(outs):
            if out_ch.valid and out_ch.ready and not done[i]:
                done[i] = True
                changed = True
        return changed

    def flush(self, domain: int, min_iter: int) -> None:
        # A held token lives in the producer-side channel; the circuit-level
        # flush clears channels. Reset done bits so a replayed token is
        # re-offered to every successor.
        tok = self.inputs["in"].data
        if tok is not None and tok.is_squashed_by(domain, min_iter):
            self._done = [False] * self.n_outputs

    @property
    def resource_params(self):
        return {"width": self.width, "n": self.n_outputs}


class Join(Component):
    """Waits for one token on every input, emits one merged control token.

    Input ports are ``in0 .. in{n-1}``; the output token's value is the
    value of input 0 (joins are control synchronizers — Dynamatic joins
    carry the first operand through).
    """

    resource_class = "join"
    scheduling_contract_audited = True

    def __init__(self, name: str, n_inputs: int):
        super().__init__(name)
        if n_inputs < 1:
            raise ValueError("join needs at least one input")
        self.n_inputs = n_inputs
        self._in_chs: Optional[List] = None  # bound lazily after wiring
        self._cache = [None, None]  # [input token tuple, output token]

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def _bind(self):
        chs = [self.inputs[f"in{i}"] for i in range(self.n_inputs)]
        self._in_chs = chs
        return chs

    def propagate(self) -> None:
        ins = self._in_chs or self._bind()
        toks = []
        for ch in ins:
            if not ch.valid:
                return
            toks.append(ch.data)
        out_ch = self.outputs["out"]
        out_ch.valid = True
        cache = self._cache
        last = cache[0]
        if last is not None and len(last) == len(toks) and all(
            a is b for a, b in zip(last, toks)
        ):
            out_ch.data = cache[1]
        else:
            out = combine(toks[0].value, *toks)
            cache[0] = toks
            cache[1] = out
            out_ch.data = out
        if out_ch.ready:
            for ch in ins:
                ch.ready = True

    @property
    def resource_params(self):
        return {"n": self.n_inputs}
