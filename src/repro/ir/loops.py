"""Natural-loop detection over the CFG.

The memory analysis needs to know which loop each memory operation lives
in (ambiguous pairs form between accesses of the same loop nest), and the
elastic builder needs back-edges to know where to place the OEHB+TEHB
storage that lets tokens circulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .basicblock import BasicBlock
from .function import Function


def dominators(fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Classic iterative dominator computation over reachable blocks."""
    blocks = fn.reachable_blocks()
    entry = fn.entry
    dom: Dict[BasicBlock, Set[BasicBlock]] = {b: set(blocks) for b in blocks}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is entry:
                continue
            preds = [p for p in fn.predecessors(block) if p in dom]
            if not preds:
                continue
            new = set.intersection(*[dom[p] for p in preds]) | {block}
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


def back_edges(fn: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    """Edges (tail -> header) where the header dominates the tail."""
    dom = dominators(fn)
    edges = []
    for block in fn.reachable_blocks():
        for succ in block.successors:
            if succ in dom.get(block, set()):
                edges.append((block, succ))
    return edges


@dataclass
class Loop:
    """A natural loop: header plus the body blocks reaching the back-edge."""

    header: BasicBlock
    blocks: Set[BasicBlock] = field(default_factory=set)
    parent: Optional["Loop"] = None
    children: List["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        d, cur = 1, self.parent
        while cur is not None:
            d += 1
            cur = cur.parent
        return d

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def __repr__(self) -> str:  # pragma: no cover
        names = sorted(b.name for b in self.blocks)
        return f"Loop(header={self.header.name}, blocks={names})"


def _natural_loop(fn: Function, tail: BasicBlock, header: BasicBlock) -> Set[BasicBlock]:
    body = {header, tail}
    stack = [tail]
    while stack:
        block = stack.pop()
        if block is header:
            continue
        for pred in fn.predecessors(block):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def find_loops(fn: Function) -> List[Loop]:
    """All natural loops, innermost-last, with parent/child nesting links.

    Loops sharing a header are merged (single Loop per header).
    """
    by_header: Dict[BasicBlock, Loop] = {}
    for tail, header in back_edges(fn):
        body = _natural_loop(fn, tail, header)
        loop = by_header.get(header)
        if loop is None:
            by_header[header] = Loop(header, body)
        else:
            loop.blocks |= body

    loops = list(by_header.values())
    # Nest: parent = smallest enclosing loop.
    for loop in loops:
        candidates = [
            other
            for other in loops
            if other is not loop and loop.blocks < other.blocks
        ]
        if candidates:
            loop.parent = min(candidates, key=lambda l: len(l.blocks))
            loop.parent.children.append(loop)
    loops.sort(key=lambda l: l.depth)
    return loops


def innermost_loop_of(loops: List[Loop], block: BasicBlock) -> Optional[Loop]:
    """Deepest loop containing ``block``; ``None`` when not in any loop."""
    best: Optional[Loop] = None
    for loop in loops:
        if loop.contains(block) and (best is None or loop.depth > best.depth):
            best = loop
    return best
