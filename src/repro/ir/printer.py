"""Textual dump of IR functions (LLVM-flavoured, for debugging and docs)."""

from __future__ import annotations

from .function import Function
from .instructions import (
    BinaryInst,
    BranchInst,
    JumpInst,
    LoadInst,
    RetInst,
    SelectInst,
    StoreInst,
)


def print_function(fn: Function) -> str:
    """Render ``fn`` as readable text."""
    lines = []
    args = ", ".join(f"{a.type!r} %{a.name}" for a in fn.args)
    lines.append(f"func @{fn.name}({args}) {{")
    for decl in fn.arrays.values():
        lines.append(f"  array @{decl.name}[{decl.size} x {decl.elem_type!r}]")
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for phi in block.phis:
            inc = ", ".join(f"[{b.name}: {v.short()}]" for b, v in phi.incomings)
            lines.append(f"  %{phi.name} = phi {inc}")
        for inst in block.instructions:
            lines.append(f"  {_format(inst)}")
    lines.append("}")
    return "\n".join(lines)


def _format(inst) -> str:
    if isinstance(inst, BinaryInst):
        return (
            f"%{inst.name} = {inst.opcode} {inst.lhs.short()}, {inst.rhs.short()}"
        )
    if isinstance(inst, SelectInst):
        return (
            f"%{inst.name} = select {inst.cond.short()}, "
            f"{inst.if_true.short()}, {inst.if_false.short()}"
        )
    if isinstance(inst, LoadInst):
        return f"%{inst.name} = load @{inst.array.name}[{inst.index.short()}]"
    if isinstance(inst, StoreInst):
        return (
            f"store @{inst.array.name}[{inst.index.short()}], "
            f"{inst.value.short()}"
        )
    if isinstance(inst, BranchInst):
        return (
            f"br {inst.cond.short()}, {inst.if_true.name}, {inst.if_false.name}"
        )
    if isinstance(inst, JumpInst):
        return f"jmp {inst.target.name}"
    if isinstance(inst, RetInst):
        return f"ret {inst.value.short()}" if inst.value else "ret"
    return repr(inst)
