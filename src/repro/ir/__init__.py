"""HLS intermediate representation: the input language of the flow.

An IR :class:`Function` is the analogue of the LLVM IR that Dynamatic
consumes — SSA basic blocks with phis, integer arithmetic, loads/stores on
declared arrays, and branch terminators.  The :class:`Interpreter` is the
golden model (the paper's C++ reference run).
"""

from .types import I1, I8, I32, I64, VOID, IntType, Type, VoidType
from .values import Argument, ArrayDecl, ConstInt, Value
from .instructions import (
    BINARY_OPCODES,
    COMPARISON_OPCODES,
    BinaryInst,
    BranchInst,
    Instruction,
    JumpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
)
from .basicblock import BasicBlock
from .function import Function
from .builder import IRBuilder
from .interpreter import InterpResult, Interpreter, MemoryTrace, TraceEvent, run_golden
from .loops import Loop, back_edges, dominators, find_loops, innermost_loop_of
from .printer import print_function
from .verify import verify_function

__all__ = [
    "I1",
    "I8",
    "I32",
    "I64",
    "VOID",
    "IntType",
    "Type",
    "VoidType",
    "Argument",
    "ArrayDecl",
    "ConstInt",
    "Value",
    "BINARY_OPCODES",
    "COMPARISON_OPCODES",
    "BinaryInst",
    "BranchInst",
    "Instruction",
    "JumpInst",
    "LoadInst",
    "PhiInst",
    "RetInst",
    "SelectInst",
    "StoreInst",
    "BasicBlock",
    "Function",
    "IRBuilder",
    "InterpResult",
    "Interpreter",
    "MemoryTrace",
    "TraceEvent",
    "run_golden",
    "Loop",
    "back_edges",
    "dominators",
    "find_loops",
    "innermost_loop_of",
    "print_function",
    "verify_function",
]
