"""Fluent builder for constructing IR functions.

Example — ``for (i = 0; i < n; ++i) c[i] = a[i] + b[i];``::

    fn = Function("vadd")
    b = IRBuilder(fn)
    n = b.arg("n")
    a, bb_, c = b.array("a", 64), b.array("b", 64), b.array("c", 64)

    entry, header, body, exit_ = b.blocks("entry", "header", "body", "exit")
    b.at(entry).jmp(header)

    b.at(header)
    i = b.phi("i")
    i.add_incoming(entry, b.const(0))
    b.br(b.lt(i, n), body, exit_)

    b.at(body)
    total = b.add(b.load(a, i), b.load(bb_, i))
    b.store(c, i, total)
    i_next = b.add(i, b.const(1), name="i_next")
    i.add_incoming(body, i_next)
    b.jmp(header)

    b.at(exit_).ret()
"""

from __future__ import annotations

from typing import Optional, Union

from ..errors import IRError
from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    BinaryInst,
    BranchInst,
    JumpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
)
from .types import I32, IntType, Type
from .values import Argument, ArrayDecl, ConstInt, Value

Operand = Union[Value, int]


class IRBuilder:
    """Positioned instruction builder with automatic naming."""

    def __init__(self, function: Function):
        self.function = function
        self._block: Optional[BasicBlock] = None
        self._counter = 0

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def arg(self, name: str, type_: Type = I32) -> Argument:
        return self.function.add_arg(Argument(name, type_))

    def array(self, name: str, size: int, elem_type: Optional[IntType] = None):
        return self.function.add_array(ArrayDecl(name, size, elem_type))

    def block(self, name: str) -> BasicBlock:
        return self.function.add_block(BasicBlock(name))

    def blocks(self, *names: str):
        return tuple(self.block(n) for n in names)

    def at(self, block: BasicBlock) -> "IRBuilder":
        """Position subsequent emissions at the end of ``block``."""
        self._block = block
        return self

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def const(self, value: int, type_: Optional[IntType] = None) -> ConstInt:
        return ConstInt(value, type_)

    def _as_value(self, operand: Operand) -> Value:
        if isinstance(operand, Value):
            return operand
        if isinstance(operand, int):
            return ConstInt(operand)
        raise IRError(f"cannot use {operand!r} as an operand")

    def _name(self, prefix: str, explicit: Optional[str]) -> str:
        if explicit is not None:
            return explicit
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _emit(self, inst):
        if self._block is None:
            raise IRError("builder is not positioned at a block (call .at(...))")
        return self._block.append(inst)

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------
    def binary(self, opcode: str, lhs: Operand, rhs: Operand,
               name: Optional[str] = None) -> BinaryInst:
        lhs, rhs = self._as_value(lhs), self._as_value(rhs)
        return self._emit(BinaryInst(self._name(opcode, name), opcode, lhs, rhs))

    # Arithmetic / logic conveniences -----------------------------------
    def add(self, a, b, name=None):
        return self.binary("add", a, b, name)

    def sub(self, a, b, name=None):
        return self.binary("sub", a, b, name)

    def mul(self, a, b, name=None):
        return self.binary("mul", a, b, name)

    def div(self, a, b, name=None):
        return self.binary("div", a, b, name)

    def rem(self, a, b, name=None):
        return self.binary("rem", a, b, name)

    def and_(self, a, b, name=None):
        return self.binary("and", a, b, name)

    def or_(self, a, b, name=None):
        return self.binary("or", a, b, name)

    def xor(self, a, b, name=None):
        return self.binary("xor", a, b, name)

    def shl(self, a, b, name=None):
        return self.binary("shl", a, b, name)

    def shr(self, a, b, name=None):
        return self.binary("shr", a, b, name)

    # Comparisons --------------------------------------------------------
    def eq(self, a, b, name=None):
        return self.binary("eq", a, b, name)

    def ne(self, a, b, name=None):
        return self.binary("ne", a, b, name)

    def lt(self, a, b, name=None):
        return self.binary("lt", a, b, name)

    def le(self, a, b, name=None):
        return self.binary("le", a, b, name)

    def gt(self, a, b, name=None):
        return self.binary("gt", a, b, name)

    def ge(self, a, b, name=None):
        return self.binary("ge", a, b, name)

    # Misc ----------------------------------------------------------------
    def select(self, cond: Operand, if_true: Operand, if_false: Operand,
               name: Optional[str] = None) -> SelectInst:
        return self._emit(
            SelectInst(
                self._name("sel", name),
                self._as_value(cond),
                self._as_value(if_true),
                self._as_value(if_false),
            )
        )

    def phi(self, name: Optional[str] = None, type_: Type = I32) -> PhiInst:
        return self._emit(PhiInst(self._name("phi", name), type_))

    def load(self, array: ArrayDecl, index: Operand,
             name: Optional[str] = None) -> LoadInst:
        return self._emit(
            LoadInst(self._name("ld", name), array, self._as_value(index))
        )

    def store(self, array: ArrayDecl, index: Operand, value: Operand) -> StoreInst:
        return self._emit(
            StoreInst(
                self._name("st", None),
                array,
                self._as_value(index),
                self._as_value(value),
            )
        )

    # Terminators ----------------------------------------------------------
    def br(self, cond: Operand, if_true: BasicBlock, if_false: BasicBlock):
        return self._emit(BranchInst(self._as_value(cond), if_true, if_false))

    def jmp(self, target: BasicBlock):
        return self._emit(JumpInst(target))

    def ret(self, value: Optional[Operand] = None):
        val = self._as_value(value) if value is not None else None
        return self._emit(RetInst(val))
