"""IR well-formedness verifier.

Checks the structural invariants that the elastic-circuit builder relies
on; run before compilation so synthesis bugs surface as IR diagnostics.
"""

from __future__ import annotations

from typing import List, Set

from ..errors import IRError
from .function import Function
from .instructions import (
    BinaryInst,
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from .values import Argument, ConstInt, Value


def verify_function(fn: Function) -> None:
    """Raise :class:`IRError` listing every problem found."""
    problems: List[str] = []
    blocks = fn.blocks
    if not blocks:
        raise IRError(f"{fn.name}: function has no blocks")

    block_set = set(id(b) for b in blocks)
    defined: Set[int] = set(id(a) for a in fn.args)
    for block in blocks:
        for inst in block.all_instructions():
            defined.add(id(inst))

    for block in blocks:
        term = block.terminator
        if term is None:
            problems.append(f"block {block.name}: missing terminator")
        else:
            for succ in term.successors:
                if id(succ) not in block_set:
                    problems.append(
                        f"block {block.name}: successor {succ.name} not in function"
                    )
        for i, inst in enumerate(block.instructions[:-1]):
            if inst.is_terminator:
                problems.append(
                    f"block {block.name}: terminator not last (position {i})"
                )

        preds = fn.predecessors(block)
        pred_ids = set(id(p) for p in preds)
        for phi in block.phis:
            incoming_ids = set(id(b) for b, _ in phi.incomings)
            if incoming_ids != pred_ids:
                pred_names = sorted(p.name for p in preds)
                inc_names = sorted(b.name for b, _ in phi.incomings)
                problems.append(
                    f"phi {phi.name} in {block.name}: incomings {inc_names} "
                    f"!= predecessors {pred_names}"
                )

        for inst in block.all_instructions():
            for op in inst.operands:
                if isinstance(op, (ConstInt,)):
                    continue
                if id(op) not in defined:
                    problems.append(
                        f"{block.name}/{inst.name}: operand {op.short()} "
                        "is not defined in this function"
                    )
            if isinstance(inst, (LoadInst, StoreInst)):
                if inst.array.name not in fn.arrays:
                    problems.append(
                        f"{block.name}/{inst.name}: unknown array "
                        f"{inst.array.name!r}"
                    )

    reachable = set(id(b) for b in fn.reachable_blocks())
    for block in blocks:
        if id(block) not in reachable:
            problems.append(f"block {block.name}: unreachable from entry")

    if problems:
        raise IRError(f"{fn.name}: " + "; ".join(problems))
