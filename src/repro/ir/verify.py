"""IR well-formedness verifier (compatibility wrapper).

The actual checks live in the lint framework's IR layer
(:mod:`repro.analysis.lint.ir_passes`, codes ``PV0xx``), which extends
the historical verifier with dominance checking and memory hygiene.
:func:`verify_function` keeps the raise-on-error contract the builder and
the tests rely on: run the IR lint passes, raise :class:`IRError` listing
every error-severity finding.
"""

from __future__ import annotations

from ..errors import IRError
from .function import Function


def verify_function(fn: Function) -> None:
    """Raise :class:`IRError` listing every problem found."""
    from ..analysis.lint import lint_ir

    report = lint_ir(fn)
    if not report.ok:
        problems = "; ".join(d.message for d in report.errors)
        raise IRError(f"{fn.name}: {problems}")
