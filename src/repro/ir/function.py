"""Functions: argument list, array declarations, CFG of basic blocks."""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..errors import IRError
from .basicblock import BasicBlock
from .instructions import Instruction
from .values import Argument, ArrayDecl


class Function:
    """One HLS kernel: scalars in, arrays as the memory interface."""

    def __init__(self, name: str):
        self.name = name
        self.args: List[Argument] = []
        self.arrays: Dict[str, ArrayDecl] = {}
        self.blocks: List[BasicBlock] = []
        self._block_names: Dict[str, BasicBlock] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_arg(self, arg: Argument) -> Argument:
        self.args.append(arg)
        return arg

    def add_array(self, decl: ArrayDecl) -> ArrayDecl:
        if decl.name in self.arrays:
            raise IRError(f"duplicate array {decl.name!r}")
        self.arrays[decl.name] = decl
        return decl

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self._block_names:
            raise IRError(f"duplicate block {block.name!r}")
        self.blocks.append(block)
        self._block_names[block.name] = block
        block.parent = self
        return block

    def block(self, name: str) -> BasicBlock:
        try:
            return self._block_names[name]
        except KeyError:
            raise IRError(f"no block named {name!r}") from None

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    # ------------------------------------------------------------------
    # CFG queries
    # ------------------------------------------------------------------
    def predecessors(self, block: BasicBlock) -> List[BasicBlock]:
        return [b for b in self.blocks if block in b.successors]

    def all_instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.all_instructions()

    def memory_ops(self):
        for block in self.blocks:
            yield from block.memory_ops()

    def reachable_blocks(self) -> List[BasicBlock]:
        seen = []
        seen_set = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if id(block) in seen_set:
                continue
            seen_set.add(id(block))
            seen.append(block)
            stack.extend(reversed(block.successors))
        return seen

    def __repr__(self) -> str:  # pragma: no cover
        return f"Function({self.name}, {len(self.blocks)} blocks)"
