"""Minimal type system for the HLS IR.

Kernels in the paper are integer-typed C loops; we model integer scalars of
a given bit width plus a control/void type for tokens.  Widths feed the
area model (wider datapaths cost more LUT/FF).
"""

from __future__ import annotations


class Type:
    """Base class of IR types."""

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class IntType(Type):
    """Fixed-width integer (simulated with Python ints; width feeds area)."""

    def __init__(self, width: int = 32):
        if width < 1:
            raise ValueError("integer width must be positive")
        self.width = width

    def __repr__(self) -> str:
        return f"i{self.width}"


class VoidType(Type):
    """Control-only type (tokens with no payload)."""

    def __repr__(self) -> str:
        return "void"


I1 = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
VOID = VoidType()
