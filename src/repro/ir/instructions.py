"""IR instructions.

The instruction set is the subset of LLVM that Dynamatic's elastic pass
consumes: integer arithmetic/compares, select, phi, load/store with a
single index operand per array, and the control terminators.  Every
non-terminator instruction is itself a :class:`~repro.ir.values.Value`
(LLVM style: the instruction *is* its result).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from .types import I1, I32, VOID, Type
from .values import ArrayDecl, Value

if TYPE_CHECKING:  # pragma: no cover
    from .basicblock import BasicBlock

#: opcodes accepted by BinaryInst, matching repro.dataflow.arith.OP_TABLE
BINARY_OPCODES = (
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "shr",
    "eq", "ne", "lt", "le", "gt", "ge",
)
COMPARISON_OPCODES = ("eq", "ne", "lt", "le", "gt", "ge")


class Instruction(Value):
    """Base class; ``operands`` lists every consumed Value."""

    def __init__(self, name: str, type_: Type):
        super().__init__(name, type_)
        self.parent: Optional["BasicBlock"] = None

    @property
    def operands(self) -> List[Value]:
        return []

    def replace_operand(self, old: Value, new: Value) -> None:
        raise NotImplementedError

    @property
    def is_terminator(self) -> bool:
        return False


class BinaryInst(Instruction):
    def __init__(self, name: str, opcode: str, lhs: Value, rhs: Value,
                 type_: Optional[Type] = None):
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        result_type = I1 if opcode in COMPARISON_OPCODES else (type_ or lhs.type)
        super().__init__(name, result_type)
        self.opcode = opcode
        self.lhs = lhs
        self.rhs = rhs

    @property
    def operands(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.lhs is old:
            self.lhs = new
        if self.rhs is old:
            self.rhs = new


class SelectInst(Instruction):
    def __init__(self, name: str, cond: Value, if_true: Value, if_false: Value):
        super().__init__(name, if_true.type)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    @property
    def operands(self) -> List[Value]:
        return [self.cond, self.if_true, self.if_false]

    def replace_operand(self, old: Value, new: Value) -> None:
        for attr in ("cond", "if_true", "if_false"):
            if getattr(self, attr) is old:
                setattr(self, attr, new)


class LoadInst(Instruction):
    def __init__(self, name: str, array: ArrayDecl, index: Value):
        super().__init__(name, array.elem_type)
        self.array = array
        self.index = index

    @property
    def operands(self) -> List[Value]:
        return [self.index]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.index is old:
            self.index = new


class StoreInst(Instruction):
    def __init__(self, name: str, array: ArrayDecl, index: Value, value: Value):
        super().__init__(name, VOID)
        self.array = array
        self.index = index
        self.value = value

    @property
    def operands(self) -> List[Value]:
        return [self.index, self.value]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.index is old:
            self.index = new
        if self.value is old:
            self.value = new


class PhiInst(Instruction):
    """SSA phi: value chosen by predecessor block."""

    def __init__(self, name: str, type_: Type = I32):
        super().__init__(name, type_)
        self.incomings: List[Tuple["BasicBlock", Value]] = []

    def add_incoming(self, block: "BasicBlock", value: Value) -> None:
        self.incomings.append((block, value))

    def incoming_for(self, block: "BasicBlock") -> Value:
        for blk, val in self.incomings:
            if blk is block:
                return val
        raise KeyError(f"phi {self.name} has no incoming for block {block.name}")

    @property
    def operands(self) -> List[Value]:
        return [val for _, val in self.incomings]

    def replace_operand(self, old: Value, new: Value) -> None:
        self.incomings = [
            (blk, new if val is old else val) for blk, val in self.incomings
        ]


class BranchInst(Instruction):
    """Conditional branch terminator."""

    def __init__(self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock"):
        super().__init__("br", VOID)
        self.cond = cond
        self.if_true = if_true
        self.if_false = if_false

    @property
    def operands(self) -> List[Value]:
        return [self.cond]

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.cond is old:
            self.cond = new

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.if_true, self.if_false]


class JumpInst(Instruction):
    """Unconditional branch terminator."""

    def __init__(self, target: "BasicBlock"):
        super().__init__("jmp", VOID)
        self.target = target

    def replace_operand(self, old: Value, new: Value) -> None:
        pass

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def successors(self) -> List["BasicBlock"]:
        return [self.target]


class RetInst(Instruction):
    """Function return; kernels return through memory, so value is optional."""

    def __init__(self, value: Optional[Value] = None):
        super().__init__("ret", VOID)
        self.value = value

    @property
    def operands(self) -> List[Value]:
        return [self.value] if self.value is not None else []

    def replace_operand(self, old: Value, new: Value) -> None:
        if self.value is old:
            self.value = new

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def successors(self) -> List["BasicBlock"]:
        return []
