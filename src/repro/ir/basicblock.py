"""Basic blocks: straight-line instruction sequences with one terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import IRError
from .instructions import Instruction, LoadInst, PhiInst, StoreInst


class BasicBlock:
    """A basic block: phis, then body instructions, then a terminator."""

    def __init__(self, name: str):
        self.name = name
        self.phis: List[PhiInst] = []
        self.instructions: List[Instruction] = []
        self.parent = None  # Function, set on add

    # ------------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise IRError(f"block {self.name}: instruction after terminator")
        if isinstance(inst, PhiInst):
            if self.instructions:
                raise IRError(f"block {self.name}: phi after non-phi instruction")
            self.phis.append(inst)
        else:
            self.instructions.append(inst)
        inst.parent = self
        return inst

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> List[Instruction]:
        """Non-phi, non-terminator instructions."""
        term = self.terminator
        end = -1 if term is not None else len(self.instructions)
        return self.instructions[:end] if term is not None else list(self.instructions)

    @property
    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        return list(term.successors) if term is not None else []

    def all_instructions(self) -> Iterator[Instruction]:
        yield from self.phis
        yield from self.instructions

    def memory_ops(self) -> List[Instruction]:
        """Loads and stores in program order within the block."""
        return [i for i in self.instructions if isinstance(i, (LoadInst, StoreInst))]

    def __repr__(self) -> str:  # pragma: no cover
        return f"BasicBlock({self.name})"
