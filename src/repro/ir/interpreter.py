"""Golden-model interpreter.

Executes IR functions sequentially (original C program order).  This plays
the role of the paper's C++ reference run in ModelSim co-simulation: every
circuit simulation is checked against the interpreter's final memory state.

The interpreter also records a :class:`MemoryTrace` — the dynamic sequence
of loads/stores with resolved addresses — which the analysis tests use as
an oracle for ambiguous-pair detection and which seeds the squash-
probability estimates of the sizing model (Sec. V-A).

Each trace event additionally carries the *activation index* of its
innermost loop: the number of times that loop's body has been entered
before, counted cumulatively over the whole run.  This is exactly the
iteration number a :class:`~repro.prevv.replay.DomainGate` tags onto the
corresponding circuit token, so the PVSan sequential-consistency oracle
can key its expected-value table by ``(static op, iteration)`` and match
arbiter records one-to-one against program order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import InterpreterError
from .basicblock import BasicBlock
from .function import Function
from .instructions import (
    BinaryInst,
    BranchInst,
    Instruction,
    JumpInst,
    LoadInst,
    RetInst,
    SelectInst,
    StoreInst,
)
from .loops import find_loops, innermost_loop_of
from .values import ConstInt, Value

_BINARY_FNS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
}


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


_BINARY_FNS["div"] = _c_div
_BINARY_FNS["rem"] = lambda a, b: a - _c_div(a, b) * b


@dataclass
class TraceEvent:
    """One dynamic memory access in program order."""

    seq: int            # global program-order position among memory ops
    op: str             # "load" | "store"
    array: str
    index: int
    value: int
    inst: Instruction   # the static instruction
    #: activation index of the innermost loop containing ``inst`` (the
    #: squash-domain iteration tag of the matching circuit token); -1 for
    #: accesses outside any loop.
    iteration: int = -1


@dataclass
class MemoryTrace:
    events: List[TraceEvent] = field(default_factory=list)

    def for_array(self, array: str) -> List[TraceEvent]:
        return [e for e in self.events if e.array == array]

    def for_inst(self, inst: Instruction) -> List[TraceEvent]:
        """Dynamic events of one static load/store, in program order."""
        return [e for e in self.events if e.inst is inst]

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class InterpResult:
    """Outcome of a golden run."""

    memory: Dict[str, List[int]]
    return_value: Optional[int]
    trace: MemoryTrace
    executed_instructions: int
    #: total body activations per loop, keyed by header block name; the
    #: count a circuit DomainGate reaches for the same loop.  PVPerf pairs
    #: these against measured cycle counts to cross-check its static II
    #: bounds.  Empty when the run was traced with ``record_trace=False``.
    loop_activations: Dict[str, int] = field(default_factory=dict)


class Interpreter:
    """Sequential executor for IR functions."""

    def __init__(self, function: Function, max_steps: int = 10_000_000):
        self.function = function
        self.max_steps = max_steps

    def run(
        self,
        args: Optional[Dict[str, int]] = None,
        memory: Optional[Dict[str, Sequence[int]]] = None,
        record_trace: bool = True,
    ) -> InterpResult:
        """Execute and return final memory, return value and access trace.

        ``memory`` maps array names to initial contents; arrays not given
        are zero-initialized.  The input mapping is never mutated.
        """
        fn = self.function
        env: Dict[Value, int] = {}
        arg_values = dict(args or {})
        for arg in fn.args:
            if arg.name not in arg_values:
                raise InterpreterError(f"missing argument {arg.name!r}")
            env[arg] = int(arg_values[arg.name])

        mem: Dict[str, List[int]] = {}
        given = memory or {}
        for name, decl in fn.arrays.items():
            init = list(given.get(name, []))
            if len(init) > decl.size:
                raise InterpreterError(
                    f"initial data for {name!r} exceeds declared size {decl.size}"
                )
            mem[name] = init + [0] * (decl.size - len(init))

        trace = MemoryTrace()
        steps = 0
        seq = 0
        block = fn.entry
        prev_block: Optional[BasicBlock] = None

        # Loop-activation bookkeeping for iteration-tagged trace events:
        # a loop's counter advances every time control enters its body
        # from the header — one tick per DomainGate bundle in the circuit.
        header_loop: Dict[int, object] = {}
        inner_loop: Dict[int, object] = {}
        activations: Dict[int, int] = {}
        loops = []
        if record_trace:
            loops = find_loops(fn)
            for loop in loops:
                header_loop[id(loop.header)] = loop
            for blk in fn.blocks:
                inner_loop[id(blk)] = innermost_loop_of(loops, blk)

        while True:
            if record_trace and prev_block is not None:
                entered = header_loop.get(id(prev_block))
                if entered is not None and block in entered.blocks:
                    key = id(entered)
                    activations[key] = activations.get(key, -1) + 1
            # Phis read their incomings simultaneously (classic two-phase).
            if block.phis:
                staged = []
                for phi in block.phis:
                    incoming = phi.incoming_for(prev_block)
                    staged.append((phi, self._value(incoming, env)))
                for phi, val in staged:
                    env[phi] = val

            next_block: Optional[BasicBlock] = None
            for inst in block.instructions:
                steps += 1
                if steps > self.max_steps:
                    raise InterpreterError(
                        f"{fn.name}: exceeded {self.max_steps} interpreter steps"
                    )
                if isinstance(inst, BinaryInst):
                    env[inst] = _BINARY_FNS[inst.opcode](
                        self._value(inst.lhs, env), self._value(inst.rhs, env)
                    )
                elif isinstance(inst, SelectInst):
                    cond = self._value(inst.cond, env)
                    env[inst] = self._value(
                        inst.if_true if cond else inst.if_false, env
                    )
                elif isinstance(inst, LoadInst):
                    idx = self._value(inst.index, env)
                    self._check_bounds(inst.array, idx)
                    val = mem[inst.array.name][idx]
                    env[inst] = val
                    if record_trace:
                        owner = inner_loop.get(id(block))
                        trace.events.append(
                            TraceEvent(
                                seq, "load", inst.array.name, idx, val, inst,
                                activations.get(id(owner), -1)
                                if owner is not None else -1,
                            )
                        )
                    seq += 1
                elif isinstance(inst, StoreInst):
                    idx = self._value(inst.index, env)
                    self._check_bounds(inst.array, idx)
                    val = self._value(inst.value, env)
                    mem[inst.array.name][idx] = val
                    if record_trace:
                        owner = inner_loop.get(id(block))
                        trace.events.append(
                            TraceEvent(
                                seq, "store", inst.array.name, idx, val, inst,
                                activations.get(id(owner), -1)
                                if owner is not None else -1,
                            )
                        )
                    seq += 1
                elif isinstance(inst, BranchInst):
                    taken = self._value(inst.cond, env)
                    next_block = inst.if_true if taken else inst.if_false
                elif isinstance(inst, JumpInst):
                    next_block = inst.target
                elif isinstance(inst, RetInst):
                    ret = (
                        self._value(inst.value, env)
                        if inst.value is not None
                        else None
                    )
                    return InterpResult(
                        mem, ret, trace, steps,
                        loop_activations={
                            loop.header.name: activations.get(id(loop), -1) + 1
                            for loop in loops
                        },
                    )
                else:  # pragma: no cover - defensive
                    raise InterpreterError(f"cannot interpret {inst!r}")

            if next_block is None:
                raise InterpreterError(f"block {block.name} fell off the end")
            prev_block, block = block, next_block

    # ------------------------------------------------------------------
    def _value(self, value: Value, env: Dict[Value, int]) -> int:
        if isinstance(value, ConstInt):
            return value.value
        try:
            return env[value]
        except KeyError:
            raise InterpreterError(
                f"use of undefined value {value.short()}"
            ) from None

    def _check_bounds(self, array, idx: int) -> None:
        if not 0 <= idx < array.size:
            raise InterpreterError(
                f"index {idx} out of bounds for array {array.name!r} "
                f"(size {array.size})"
            )


def run_golden(function: Function, args=None, memory=None) -> InterpResult:
    """Convenience wrapper: interpret ``function`` with the given inputs."""
    return Interpreter(function).run(args=args, memory=memory)
