"""IR values: everything an instruction can consume as an operand."""

from __future__ import annotations

from typing import Optional

from .types import I32, IntType, Type


class Value:
    """Base class for SSA values (arguments, constants, instruction results)."""

    def __init__(self, name: str, type_: Type):
        self.name = name
        self.type = type_

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:  # pragma: no cover
        return self.short()


class Argument(Value):
    """A scalar function argument (bound at interpretation/simulation time)."""

    def __init__(self, name: str, type_: Type = I32):
        super().__init__(name, type_)


class ConstInt(Value):
    """An integer literal."""

    def __init__(self, value: int, type_: Optional[IntType] = None):
        super().__init__(f"c{value}", type_ or I32)
        self.value = int(value)

    def short(self) -> str:
        return str(self.value)


class ArrayDecl:
    """A memory region (one C array) owned by a function.

    ``size`` is in elements; element width comes from ``elem_type``.  Arrays
    are the unit of memory disambiguation: ambiguous pairs only form between
    accesses to the same array, exactly as in Dynamatic (one LSQ per
    conflicting memory interface).
    """

    def __init__(self, name: str, size: int, elem_type: Optional[IntType] = None):
        if size < 1:
            raise ValueError(f"array {name!r} needs positive size")
        self.name = name
        self.size = size
        self.elem_type = elem_type or I32

    def __repr__(self) -> str:  # pragma: no cover
        return f"@{self.name}[{self.size} x {self.elem_type!r}]"
