"""Word-addressable memory holding every declared array.

One :class:`Memory` instance backs a whole circuit.  Arrays are disjoint
regions addressed as ``(array_name, index)``, mirroring Dynamatic's
one-BRAM-interface-per-array layout on the FPGA.

The memory keeps an append-only **write log** while speculation is active.
PreVV premature stores commit immediately (that is the whole point of
eliminating the store queue); the log is what lets a squash reconstruct
the pre-violation state even when squashed and retired writes interleave
on the same address.  Each record carries the full speculation-tag map of
the store token (a write derived from several loop domains is squashable
by any of them).  Retired entries are pruned continuously against
per-domain watermarks, so the log stays as small as the premature window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import MemoryError_


@dataclass
class WriteRecord:
    """One committed store, kept until every tagging domain retires it."""

    serial: int              # global commit order
    array: str
    index: int
    value: int
    old_value: int
    tags: Dict[int, int] = field(default_factory=dict)  # domain -> iteration

    def squashed_by(self, domain: int, min_iter: int) -> bool:
        return self.tags.get(domain, -1) >= min_iter


class Memory:
    """All array storage plus the speculative write log."""

    def __init__(self, arrays: Dict[str, int]):
        """``arrays`` maps array name to size in elements."""
        self._data: Dict[str, List[int]] = {
            name: [0] * size for name, size in arrays.items()
        }
        self._log: List[WriteRecord] = []
        self._serial = 0
        self._retired: Dict[int, int] = {}  # domain -> retired-below iteration

    # ------------------------------------------------------------------
    # Initialization / inspection
    # ------------------------------------------------------------------
    def initialize(self, contents: Dict[str, Sequence[int]]) -> None:
        for name, values in contents.items():
            region = self._region(name)
            if len(values) > len(region):
                raise MemoryError_(
                    f"initial data for {name!r} exceeds size {len(region)}"
                )
            region[: len(values)] = [int(v) for v in values]

    def snapshot(self) -> Dict[str, List[int]]:
        return {name: list(vals) for name, vals in self._data.items()}

    def _region(self, array: str) -> List[int]:
        try:
            return self._data[array]
        except KeyError:
            raise MemoryError_(f"unknown array {array!r}") from None

    def _check(self, array: str, index: int) -> List[int]:
        region = self._region(array)
        if not 0 <= index < len(region):
            raise MemoryError_(
                f"index {index} out of bounds for {array!r} (size {len(region)})"
            )
        return region

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def load(self, array: str, index: int) -> int:
        return self._check(array, index)[index]

    def store(
        self,
        array: str,
        index: int,
        value: int,
        tags: Optional[Dict[int, int]] = None,
    ) -> Optional[WriteRecord]:
        """Commit a write; speculative writes (non-empty tags) are logged."""
        region = self._check(array, index)
        self._serial += 1
        record = None
        speculative = tags and any(
            it >= self._retired.get(dom, 0) for dom, it in tags.items()
        )
        if speculative:
            record = WriteRecord(
                self._serial, array, index, int(value), region[index], dict(tags)
            )
            self._log.append(record)
        region[index] = int(value)
        return record

    # ------------------------------------------------------------------
    # Speculation support
    # ------------------------------------------------------------------
    def rollback(self, domain: int, min_iter: int) -> int:
        """Undo every write tagged ``domain``/``iteration >= min_iter``.

        Handles interleavings: for each touched address the surviving value
        is that of the last non-squashed logged write (or the pre-log value
        when every logged write to it is squashed).  Returns the number of
        writes undone.
        """
        return self._remove(
            lambda r: r.squashed_by(domain, min_iter), undo=True
        )

    def set_retired(self, domain: int, upto_iter: int) -> int:
        """Advance ``domain``'s retirement watermark and prune the log.

        A record is pruned when *every* domain tagging it has retired past
        its iteration; pruned records are permanent (never rolled back).
        Returns the number of entries pruned.
        """
        current = self._retired.get(domain, 0)
        self._retired[domain] = max(current, upto_iter)

        def fully_retired(record: WriteRecord) -> bool:
            return all(
                it < self._retired.get(dom, 0) for dom, it in record.tags.items()
            )

        return self._remove(fully_retired, undo=False)

    def _remove(self, predicate, undo: bool) -> int:
        """Drop log records matching ``predicate``.

        For each touched address, walk its records in commit order keeping a
        running ``base`` (the value memory would hold at that point with the
        removed records excised — for ``undo=True`` — or made permanent —
        for ``undo=False``).  Survivors get their ``old_value`` re-chained
        to the base; with ``undo=True`` memory is restored to the final
        base.
        """
        removed = [r for r in self._log if predicate(r)]
        if not removed:
            return 0
        removed_ids = set(id(r) for r in removed)
        addresses = {(r.array, r.index) for r in removed}
        if not undo:
            # Retirement prunes only the leading prefix of each address's
            # history: a retired write that committed *after* a surviving
            # speculative write (a benign same-value WAW inversion) must
            # stay in the log, otherwise rolling back the survivor would
            # resurrect a value the permanent write had overwritten.
            for array, index in addresses:
                prefix_over = False
                for record in self._log:
                    if record.array != array or record.index != index:
                        continue
                    if id(record) in removed_ids:
                        if prefix_over:
                            removed_ids.discard(id(record))
                    else:
                        prefix_over = True
            removed = [r for r in removed if id(r) in removed_ids]
            if not removed:
                return 0
            addresses = {(r.array, r.index) for r in removed}
        for array, index in addresses:
            entries = [
                r for r in self._log if r.array == array and r.index == index
            ]
            base = entries[0].old_value
            for record in entries:
                if id(record) in removed_ids:
                    if not undo:
                        base = record.value  # retired: its effect is permanent
                else:
                    record.old_value = base
                    base = record.value
            if undo:
                self._data[array][index] = base
        self._log = [r for r in self._log if id(r) not in removed_ids]
        return len(removed)

    def find_record(
        self, array: str, index: int, domain: int, iteration: int
    ) -> Optional[WriteRecord]:
        """Most recent logged write to an address from a given iteration.

        Lets the PreVV arbiter recover the pre-store content (``old_value``)
        of a premature store it is validating.
        """
        for record in reversed(self._log):
            if (
                record.array == array
                and record.index == index
                and record.tags.get(domain, -1) == iteration
            ):
                return record
        return None

    def old_value_of_last_write(self, array: str, index: int) -> Optional[int]:
        """Old value recorded by the most recent logged write to an address.

        Used by the PreVV arbiter's WAR check: a program-earlier load that
        arrives after a program-later store committed should have read the
        store's overwritten value.
        """
        for record in reversed(self._log):
            if record.array == array and record.index == index:
                return record.old_value
        return None

    @property
    def log_length(self) -> int:
        return len(self._log)

    @property
    def version(self) -> int:
        """Monotone commit counter: bumped by every store, any array.

        Loads record the version they observed; the PreVV arbiter compares
        it against store commit versions to order reads and writes exactly
        (no timing guesses).
        """
        return self._serial
