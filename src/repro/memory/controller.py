"""Plain memory controller (Dynamatic's MC): per-array, no ordering logic.

Used for arrays whose accesses carry **no** potential dependency — the
polyhedral analysis proved them conflict-free — so requests may commit in
any arrival order.  Arrays with possible conflicts go through an LSQ
(:mod:`repro.lsq`) or a PreVV unit (:mod:`repro.prevv`) instead.

Ports (all elastic channels):

* per load port ``i``:  input ``ld{i}_addr``, output ``ld{i}_data``;
* per store port ``j``: inputs ``st{j}_addr`` and ``st{j}_data``.

Bandwidth is limited to ``loads_per_cycle`` load grants and
``stores_per_cycle`` store grants per cycle (round-robin priority),
modelling the BRAM port arbitration of the real controller; loads respond
after ``load_latency`` cycles, fully pipelined.
"""

from __future__ import annotations

from collections import deque
from typing import Dict
from typing import Deque, List

from ..dataflow.component import Component
from ..dataflow.token import combine, merge_tags
from .ram import Memory


class MemoryController(Component):
    """Unordered per-array memory interface."""

    resource_class = "memory_controller"
    # Grants depend on input valids and internal state only; response
    # data comes from the latency queues — never from an output ready.
    observes_output_ready = False
    # Input valids steer only the grant (ready) side; output valids are
    # pure latency-queue state, so the valid wave terminates here.
    forwards_valid = False
    scheduling_contract_audited = True

    def __init__(
        self,
        name: str,
        memory: Memory,
        array: str,
        n_loads: int,
        n_stores: int,
        load_latency: int = 1,
        loads_per_cycle: int = 1,
        stores_per_cycle: int = 1,
        addr_width: int = 32,
        data_width: int = 32,
    ):
        super().__init__(name)
        self.memory = memory
        self.array = array
        self.n_loads = n_loads
        self.n_stores = n_stores
        self.load_latency = max(1, load_latency)
        self.loads_per_cycle = loads_per_cycle
        self.stores_per_cycle = stores_per_cycle
        self.addr_width = addr_width
        self.data_width = data_width
        # Per load port: queue of (cycles_remaining, response token).
        self._responses: List[Deque[List]] = [deque() for _ in range(n_loads)]
        self._rr_load = 0
        self._rr_store = 0
        self.committed_stores = 0
        self.completed_loads = 0
        # Per-port progress in squash-domain iterations (set by the PreVV
        # builder via set_port_domain); lets the arbiter prove a port has
        # no in-flight operation between this controller and the arbiter.
        self._load_domains: Dict[int, int] = {}
        self._store_domains: Dict[int, int] = {}
        self.load_progress: Dict[int, int] = {}
        self.store_progress: Dict[int, int] = {}
        self._ld_addr_chs = None  # port channel lists, bound after wiring

    # ------------------------------------------------------------------
    def _bind(self):
        self._ld_addr_chs = [
            self.inputs[f"ld{i}_addr"] for i in range(self.n_loads)
        ]
        self._ld_data_chs = [
            self.outputs[f"ld{i}_data"] for i in range(self.n_loads)
        ]
        self._st_addr_chs = [
            self.inputs[f"st{j}_addr"] for j in range(self.n_stores)
        ]
        self._st_data_chs = [
            self.inputs[f"st{j}_data"] for j in range(self.n_stores)
        ]
        return self._ld_addr_chs

    def _granted_loads(self) -> List[int]:
        """Load ports granted this cycle (round-robin, bandwidth-limited)."""
        chs = self._ld_addr_chs or self._bind()
        granted = []
        for k in range(self.n_loads):
            i = (self._rr_load + k) % self.n_loads
            if len(granted) >= self.loads_per_cycle:
                break
            if chs[i].valid:
                granted.append(i)
        return granted

    def _granted_stores(self) -> List[int]:
        if self._ld_addr_chs is None:
            self._bind()
        addr_chs = self._st_addr_chs
        data_chs = self._st_data_chs
        granted = []
        for k in range(self.n_stores):
            j = (self._rr_store + k) % self.n_stores
            if len(granted) >= self.stores_per_cycle:
                break
            if addr_chs[j].valid and data_chs[j].valid:
                granted.append(j)
        return granted

    def propagate(self) -> None:
        if self._ld_addr_chs is None:
            self._bind()
        # Drive the grant readies as an exact assignment (set AND clear):
        # under the reference engine's fixpoint this method re-runs as
        # input valids arrive, and a port granted against a partial valid
        # set may lose arbitration to a higher-priority port once every
        # valid has settled.  Leaving the earlier ready latched would
        # accept more than *_per_cycle requests in one cycle.
        granted_loads = self._granted_loads()
        for i in range(self.n_loads):
            self._ld_addr_chs[i].ready = i in granted_loads
        granted_stores = self._granted_stores()
        for j in range(self.n_stores):
            grant = j in granted_stores
            self._st_addr_chs[j].ready = grant
            self._st_data_chs[j].ready = grant
        data_chs = self._ld_data_chs
        for i in range(self.n_loads):
            queue = self._responses[i]
            if queue and queue[0][0] <= 0:
                out_ch = data_chs[i]
                out_ch.valid = True
                out_ch.data = queue[0][1]

    def tick(self):
        if self._ld_addr_chs is None:
            self._bind()
        changed = False
        # Deliver matured responses and age the latency pipeline.
        for i in range(self.n_loads):
            queue = self._responses[i]
            if not queue:
                continue
            out_ch = self._ld_data_chs[i]
            if queue[0][0] <= 0 and out_ch.valid and out_ch.ready:
                queue.popleft()
                self.completed_loads += 1
                changed = True
            head = queue[0] if queue else None
            for item in queue:
                if item[0] > 0:
                    item[0] -= 1
                    if item is head and item[0] <= 0:
                        # The head response matured: next cycle's propagate
                        # starts driving the port's output valid.
                        changed = True
        # Accept granted loads.
        for i in range(self.n_loads):
            ch = self._ld_addr_chs[i]
            if ch.valid and ch.ready:
                addr = int(ch.data.value)
                value = self.memory.load(self.array, addr)
                token = combine(value, ch.data)
                token.version = self.memory.version
                self._responses[i].append([self.load_latency - 1, token])
                self._rr_load = (i + 1) % self.n_loads
                changed = True
                if i in self._load_domains:
                    self.load_progress[i] = ch.data.tag(self._load_domains[i])
        # Commit granted stores.
        for j in range(self.n_stores):
            addr_ch = self._st_addr_chs[j]
            data_ch = self._st_data_chs[j]
            if (
                addr_ch.valid and addr_ch.ready
                and data_ch.valid and data_ch.ready
            ):
                tags = merge_tags([addr_ch.data, data_ch.data])
                self.memory.store(
                    self.array, int(addr_ch.data.value), data_ch.data.value, tags
                )
                self.committed_stores += 1
                self._rr_store = (j + 1) % self.n_stores
                changed = True
                if j in self._store_domains:
                    self.store_progress[j] = addr_ch.data.tag(
                        self._store_domains[j]
                    )
        # Grant-side state (_rr_*) only moves when a port fired, and a
        # fired port's input channel always changes next cycle (its
        # producer consumed a token), re-waking this controller — so
        # ``changed`` is an accurate report for the incremental engine.
        return changed

    def set_port_domain(self, kind: str, port: int, domain: int) -> None:
        """Register the squash domain of a port (PreVV wiring only)."""
        if kind == "load":
            self._load_domains[port] = domain
            self.load_progress.setdefault(port, -1)
        else:
            self._store_domains[port] = domain
            self.store_progress.setdefault(port, -1)

    def flush(self, domain: int, min_iter: int) -> None:
        for port, dom in self._load_domains.items():
            if dom == domain and self.load_progress.get(port, -1) >= min_iter:
                self.load_progress[port] = min_iter - 1
        for port, dom in self._store_domains.items():
            if dom == domain and self.store_progress.get(port, -1) >= min_iter:
                self.store_progress[port] = min_iter - 1
        for queue in self._responses:
            kept = [
                item
                for item in queue
                if not item[1].is_squashed_by(domain, min_iter)
            ]
            queue.clear()
            queue.extend(kept)

    @property
    def is_busy(self) -> bool:
        return any(self._responses[i] for i in range(self.n_loads))

    def perf_model(self):
        # The response queues accumulate without bound while a consumer
        # stalls, so the capacity cannot be bounded: a token-flow cycle
        # through the controller imposes no II constraint (PVPerf drops
        # unbounded edges from the ratio graph).
        return (min(1, self.load_latency), None)

    @property
    def pending_ops(self) -> int:
        return sum(len(q) for q in self._responses)

    @property
    def response_occupancies(self) -> List[int]:
        """Per-load-port response-queue occupancies, for the PVBound
        measured path (sampled from an end-of-cycle hook — nothing on
        the stat-free fast path pays for it)."""
        return [len(q) for q in self._responses]

    @property
    def resource_params(self):
        return {
            "n_loads": self.n_loads,
            "n_stores": self.n_stores,
            "addr_width": self.addr_width,
            "data_width": self.data_width,
        }
