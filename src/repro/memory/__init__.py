"""Memory subsystem: word-addressable RAM and the plain memory controller."""

from .ram import Memory, WriteRecord
from .controller import MemoryController

__all__ = ["Memory", "WriteRecord", "MemoryController"]
