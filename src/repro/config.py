"""Hardware configuration for circuit generation and evaluation."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .errors import ConfigError

MEMORY_STYLES = ("none", "dynamatic", "fast", "prevv")


@dataclass(frozen=True)
class HardwareConfig:
    """Everything the compiler needs to know about the target hardware.

    ``memory_style`` selects the disambiguation mechanism for conflicted
    arrays:

    * ``"none"``       — plain memory controllers everywhere (only valid
      for hazard-free kernels; the compiler refuses otherwise);
    * ``"dynamatic"``  — the LSQ of [15] with group allocation through the
      control network;
    * ``"fast"``       — the LSQ with the fast allocation network of [8];
    * ``"prevv"``      — this paper: premature execution + PreVV units.
    """

    name: str = "default"
    memory_style: str = "dynamatic"
    # PreVV parameters
    prevv_depth: int = 16                # Depth_q (PreVV16 / PreVV64)
    prevv_fifo_depth: int = 4            # FIFO decoupling arbiter from pipeline
    prevv_validations_per_cycle: int = 2  # LMerge + SMerge throughput
    prevv_reorder_window: int = 4        # arbiter input reorder depth
    # LSQ parameters
    lsq_depth_loads: int = 16
    lsq_depth_stores: int = 16
    lsq_alloc_latency: Optional[int] = None  # default by style (3 vs 1)
    # Memory system
    mem_port_slack: int = 4              # transparent FIFO depth at each port
    load_latency: int = 1
    loads_per_cycle: int = 1
    stores_per_cycle: int = 1
    # Datapath
    data_width: int = 32
    addr_width: int = 32
    # Synthesis target (feeds the timing model)
    clock_target_ns: float = 4.0

    def __post_init__(self):
        if self.memory_style not in MEMORY_STYLES:
            raise ConfigError(
                f"unknown memory style {self.memory_style!r}; "
                f"choose one of {MEMORY_STYLES}"
            )
        if self.prevv_depth < 1:
            raise ConfigError("prevv_depth must be >= 1")
        if self.lsq_depth_loads < 1 or self.lsq_depth_stores < 1:
            raise ConfigError("LSQ depths must be >= 1")

    @property
    def effective_alloc_latency(self) -> int:
        if self.lsq_alloc_latency is not None:
            return self.lsq_alloc_latency
        return 1 if self.memory_style == "fast" else 3

    def with_(self, **changes) -> "HardwareConfig":
        return replace(self, **changes)
