"""Gaussian elimination (integer, fully-nested form).

``for i, j, k: if (j > i && k >= i): A[j][k] -= (A[j][i] / A[i][i]) * A[i][k]``

Every access to ``A`` sits inside the conditional, so all five member
operations of the PreVV group need fake tokens on skipped iterations —
this kernel is the stress test for the Sec. V-C deadlock fix.  The updates
to ``A[j][k]`` are read back in later ``i`` sweeps (hazards across both
inner and outer loops, as the paper's benchmark description states).

Integer division truncates toward zero in both the golden model and the
circuit, so results match exactly; the input matrix is strongly
diagonally dominant to keep pivots nonzero.
"""

from __future__ import annotations

from typing import List

from ..ir import Function, IRBuilder
from .base import Kernel, lcg_values, register_kernel
from .nest import NestBuilder


def _build(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    fn = Function("gaussian")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    a = b.array("A", n * n)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    j = nest.open_loop("j", n_arg).iv
    k = nest.open_loop("k", n_arg).iv
    cond = b.and_(b.gt(j, i), b.ge(k, i), name="elim")
    guard, then, join = nest.if_then(cond, "elim")
    pivot = b.load(a, b.add(b.mul(i, n), i), name="pivot")
    factor = b.div(b.load(a, b.add(b.mul(j, n), i)), pivot, name="factor")
    upd = b.sub(
        b.load(a, b.add(b.mul(j, n), k)),
        b.mul(factor, b.load(a, b.add(b.mul(i, n), k))),
        name="upd",
    )
    b.store(a, b.add(b.mul(j, n), k), upd)
    nest.end_then(join)
    nest.close_loop()
    nest.close_loop()
    nest.close_loop()
    b.ret()
    return fn


def _elimination_matrix(n: int) -> List[int]:
    """Off-diagonals larger than the diagonal so integer factors are often
    nonzero (real elimination work); this seed keeps every pivot nonzero
    for the sizes used in the evaluation (checked in the test suite)."""
    values = lcg_values(n * n, seed=17, lo=0, hi=20)
    for d in range(n):
        values[d * n + d] = 3 + d
    return values


@register_kernel("gaussian")
def gaussian(n: int = 15) -> Kernel:
    """Integer Gaussian elimination on an n x n dominant matrix."""
    return Kernel(
        name="gaussian",
        description="row elimination with all A-accesses under a condition",
        builder=_build,
        args={"n": n},
        memory_init={"A": _elimination_matrix(n)},
        paper_reference="Table I/II row gaussian; Fig. 1/7",
    )
