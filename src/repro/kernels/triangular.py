"""Triangular (forward-substitution) solver, fully-nested form.

``x[i] = (b[i] - sum_{j<i} L[i][j] * x[j]) / L[i][i]``

written as a two-deep nest whose inner body conditionally loads ``x[j]``
(when ``j < i``) and conditionally stores ``x[i]`` (when ``j == n-1``).
The loads of ``x`` consume values stored by *earlier outer iterations* —
a true loop-carried memory dependence through ``x`` whose distance shrinks
to one sweep at the boundary, which is where premature loads occasionally
race the store and PreVV squashes.

Used for solving lower-triangular systems (LU forward substitution), as
in the paper's benchmark description.
"""

from __future__ import annotations

from typing import List

from ..ir import Function, IRBuilder
from .base import Kernel, lcg_values, register_kernel
from .nest import NestBuilder


def _build(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    fn = Function("triangular")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    lm = b.array("L", n * n)
    rhs = b.array("rhs", n)
    x = b.array("x", n)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    rhs_i = b.load(rhs, i, name="rhs_i")
    jloop = nest.open_loop("j", n_arg, carried={"s": rhs_i})
    j, s = jloop.iv, jloop.carried["s"]

    # if (j < i) s -= L[i][j] * x[j]
    guard1, then1, join1 = nest.if_then(b.lt(j, i), "sub")
    xj = b.load(x, j, name="xj")
    s_sub = b.sub(s, b.mul(b.load(lm, b.add(b.mul(i, n), j)), xj), name="s_sub")
    nest.end_then(join1)
    s2 = b.phi("s2")
    s2.add_incoming(guard1, s)
    s2.add_incoming(then1, s_sub)

    # if (j == n-1) x[i] = s2 / L[i][i]
    guard2, then2, join2 = nest.if_then(b.eq(j, b.sub(n_arg, 1)), "st")
    diag = b.load(lm, b.add(b.mul(i, n), i), name="diag")
    b.store(x, i, b.div(s2, diag))
    nest.end_then(join2)

    nest.close_loop({"s": s2})
    nest.close_loop()
    b.ret()
    return fn


def _triangular_matrix(n: int) -> List[int]:
    values = lcg_values(n * n, seed=29, lo=1, hi=5)
    for r in range(n):
        for c in range(n):
            if c > r:
                values[r * n + c] = 0
        values[r * n + r] = 1  # unit diagonal: exact integer substitution
    return values


@register_kernel("triangular")
def triangular(n: int = 76) -> Kernel:
    """Forward substitution on an n x n unit lower-triangular system."""
    return Kernel(
        name="triangular",
        description="x[i] = (rhs[i] - sum L[i][j]x[j]) with x RAW hazards",
        builder=_build,
        args={"n": n},
        memory_init={
            "L": _triangular_matrix(n),
            "rhs": lcg_values(n, seed=31, lo=0, hi=50),
        },
        paper_reference="Table I/II row triangular; Fig. 1/7",
    )
