"""Benchmark kernels: the paper's five evaluation kernels plus extras."""

from .base import Kernel, get_kernel, kernel_names, lcg_values, register_kernel
from .nest import NestBuilder
from . import polyn_mult  # noqa: F401  (registration side effects)
from . import matmul      # noqa: F401
from . import gaussian    # noqa: F401
from . import triangular  # noqa: F401
from . import misc        # noqa: F401

#: kernels evaluated in the paper's Tables I/II
PAPER_KERNELS = ["polyn_mult", "2mm", "3mm", "gaussian", "triangular"]

__all__ = [
    "Kernel",
    "get_kernel",
    "kernel_names",
    "lcg_values",
    "register_kernel",
    "NestBuilder",
    "PAPER_KERNELS",
]
