"""Polynomial multiplication: ``c[i+j] += a[i] * b[j]``.

The paper's compute-bound kernel with limited data reuse.  The accumulate
into ``c[i + j]`` creates load/store pairs whose subscripts collide across
iterations (different ``(i, j)`` with equal sums), so Dynamatic must place
``c`` behind an LSQ and PreVV must validate it.
"""

from __future__ import annotations

from ..ir import Function, IRBuilder
from .base import Kernel, lcg_values, register_kernel
from .nest import NestBuilder


def _build(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    fn = Function("polyn_mult")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    a = b.array("a", n)
    bb = b.array("b", n)
    c = b.array("c", 2 * n)
    entry = b.block("entry")
    b.at(entry)
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    j = nest.open_loop("j", n_arg).iv
    # innermost body: c[i+j] += a[i] * b[j]
    idx = b.add(i, j, name="cidx")
    prod = b.mul(b.load(a, i), b.load(bb, j), name="prod")
    acc = b.add(b.load(c, idx), prod, name="acc")
    b.store(c, idx, acc)
    nest.close_loop()
    nest.close_loop()
    b.ret()
    return fn


@register_kernel("polyn_mult")
def polyn_mult(n: int = 52) -> Kernel:
    """Polynomial multiplication of two degree-(n-1) polynomials."""
    return Kernel(
        name="polyn_mult",
        description="c[i+j] += a[i]*b[j]; accumulation hazards on c",
        builder=_build,
        args={"n": n},
        memory_init={
            "a": lcg_values(n, seed=11, lo=0, hi=9),
            "b": lcg_values(n, seed=23, lo=0, hi=9),
        },
        paper_reference="Table I/II row polyn_mult; Fig. 1/7",
    )
