"""Helpers for building counted loop nests in IR.

:class:`NestBuilder` stacks counted loops (``for v = 0; v < bound; ++v``)
with optional loop-carried values, producing the canonical block shape the
elastic builder and the PreVV domain analysis expect:

    <name>_h   header: induction phi + carried phis + bounds check
    <name>_b   body (position after open_loop)
    <name>_x   exit (position after close_loop)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..errors import IRError
from ..ir import BasicBlock, IRBuilder, PhiInst, Value


@dataclass
class _OpenLoop:
    name: str
    header: BasicBlock
    body: BasicBlock
    exit: BasicBlock
    iv: PhiInst
    carried: Dict[str, PhiInst] = field(default_factory=dict)


class NestBuilder:
    """Structured construction of counted loops over an :class:`IRBuilder`."""

    def __init__(self, b: IRBuilder):
        self.b = b
        self._stack: List[_OpenLoop] = []

    # ------------------------------------------------------------------
    def open_loop(
        self,
        name: str,
        bound: Union[Value, int],
        carried: Optional[Dict[str, Union[Value, int]]] = None,
    ) -> _OpenLoop:
        """Open ``for name = 0; name < bound; ++name`` at the current block.

        ``carried`` maps value names to their loop-entry initializers; the
        returned record's ``carried`` dict holds the header phis.  The
        builder is left positioned at the loop body.
        """
        b = self.b
        if b._block is None:
            raise IRError("NestBuilder.open_loop: builder is not positioned")
        pre = b._block
        header = b.block(f"{name}_h")
        body = b.block(f"{name}_b")
        exit_ = b.block(f"{name}_x")
        b.jmp(header)
        b.at(header)
        iv = b.phi(name)
        iv.add_incoming(pre, b.const(0))
        loop = _OpenLoop(name, header, body, exit_, iv)
        for cname, init in (carried or {}).items():
            phi = b.phi(cname)
            phi.add_incoming(pre, b._as_value(init))
            loop.carried[cname] = phi
        b.br(b.lt(iv, bound), body, exit_)
        b.at(body)
        self._stack.append(loop)
        return loop

    def close_loop(
        self, carried_updates: Optional[Dict[str, Union[Value, int]]] = None
    ) -> BasicBlock:
        """Close the innermost open loop from the current block.

        ``carried_updates`` gives the next-iteration value for each carried
        phi (defaults to the phi itself, i.e. unchanged).  Leaves the
        builder positioned at the loop exit and returns it.
        """
        b = self.b
        if not self._stack:
            raise IRError("NestBuilder.close_loop: no open loop")
        loop = self._stack.pop()
        latch = b._block
        updates = carried_updates or {}
        unknown = set(updates) - set(loop.carried)
        if unknown:
            raise IRError(
                f"close_loop({loop.name}): unknown carried values {unknown}"
            )
        iv_next = b.add(loop.iv, 1, name=f"{loop.name}_next")
        loop.iv.add_incoming(latch, iv_next)
        for cname, phi in loop.carried.items():
            value = updates.get(cname, phi)
            phi.add_incoming(latch, b._as_value(value))
        b.jmp(loop.header)
        b.at(loop.exit)
        return loop.exit

    # ------------------------------------------------------------------
    def if_then(self, cond: Value, name: str):
        """Open ``if (cond) { ... }``: returns (guard, then, join) blocks.

        The builder is positioned at the then block; the caller fills it,
        then calls :meth:`end_then` to fall through to the join block.
        Values merged across the if need explicit phis at the join (added
        first, before any other join instructions).
        """
        b = self.b
        guard = b._block
        then = b.block(f"{name}_then")
        join = b.block(f"{name}_join")
        b.br(cond, then, join)
        b.at(then)
        return guard, then, join

    def end_then(self, join: BasicBlock) -> BasicBlock:
        """Finish the then block and continue at the join block."""
        b = self.b
        b.jmp(join)
        b.at(join)
        return join
