"""Auxiliary kernels: the Fig. 2 examples and test/benchmark helpers.

* :func:`fig2a` — the sequential-update RAW of Fig. 2(a):
  ``a[b[i]] += A; b[i] += B;``
* :func:`fig2b` — the function-dependent RAW of Fig. 2(b):
  ``a[b[i] + x] += A; b[i + y] += B;`` where ``x``/``y`` stand in for the
  runtime-only ``f(x)``/``g(x)`` subscript terms;
* :func:`vadd` — hazard-free elementwise add (no LSQ/PreVV needed at all);
* :func:`histogram` — data-dependent scatter-accumulate;
* :func:`recurrence` — an adversarial distance-1 memory recurrence
  (``t[i+1] = t[i]*x[i] + 1``) where *every* premature load is stale: the
  squash-storm stress test (and the worst case for PreVV's Eq. 6 ``P_s``).
"""

from __future__ import annotations

from ..ir import Function, IRBuilder
from .base import Kernel, lcg_values, register_kernel
from .nest import NestBuilder


def _build_fig2a(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    buckets = kernel.args["buckets"]
    fn = Function("fig2a")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    a = b.array("a", buckets)
    bb = b.array("b", n)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    bi = b.load(bb, i, name="bi")
    b.store(a, bi, b.add(b.load(a, bi), 3))        # a[b[i]] += A
    b.store(bb, i, b.add(b.load(bb, i), 2))        # b[i]   += B
    nest.close_loop()
    b.ret()
    return fn


def _build_fig2b(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    buckets = kernel.args["buckets"]
    fn = Function("fig2b")
    b = IRBuilder(fn)
    n_arg, x_arg, y_arg = b.arg("n"), b.arg("x"), b.arg("y")
    a = b.array("a", buckets)
    bb = b.array("b", 2 * n)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    a_idx = b.add(b.load(bb, i), x_arg, name="a_idx")       # b[i] + f(x)
    b.store(a, a_idx, b.add(b.load(a, a_idx), 3))
    b_idx = b.add(i, y_arg, name="b_idx")                   # i + g(x)
    b.store(bb, b_idx, b.add(b.load(bb, b_idx), 2))
    nest.close_loop()
    b.ret()
    return fn


def _build_vadd(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    fn = Function("vadd")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    a = b.array("a", n)
    bb = b.array("b", n)
    c = b.array("c", n)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    b.store(c, i, b.add(b.load(a, i), b.load(bb, i)))
    nest.close_loop()
    b.ret()
    return fn


def _build_histogram(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    buckets = kernel.args["buckets"]
    fn = Function("histogram")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    hist = b.array("hist", buckets)
    data = b.array("data", n)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    key = b.load(data, i, name="key")
    b.store(hist, key, b.add(b.load(hist, key), 1))
    nest.close_loop()
    b.ret()
    return fn


def _build_recurrence(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    fn = Function("recurrence")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    x = b.array("x", n)
    t = b.array("t", n + 1)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    tv = b.load(t, i, name="tv")
    b.store(t, b.add(i, 1), b.add(b.mul(tv, b.load(x, i)), 1))
    nest.close_loop()
    b.ret()
    return fn


@register_kernel("fig2a")
def fig2a(n: int = 24, buckets: int = 16) -> Kernel:
    return Kernel(
        name="fig2a",
        description="Fig. 2(a): a[b[i]] += A; b[i] += B (same-iteration RAW)",
        builder=_build_fig2a,
        args={"n": n, "buckets": buckets},
        memory_init={"b": lcg_values(n, seed=41, lo=0, hi=buckets - 1)},
        paper_reference="Fig. 2(a)",
    )


@register_kernel("fig2b")
def fig2b(n: int = 24, buckets: int = 32, x: int = 5, y: int = 3) -> Kernel:
    return Kernel(
        name="fig2b",
        description="Fig. 2(b): function-dependent RAW across iterations",
        builder=_build_fig2b,
        args={"n": n, "x": x, "y": y, "buckets": buckets},
        memory_init={"b": lcg_values(2 * n, seed=43, lo=0, hi=buckets - 12)},
        paper_reference="Fig. 2(b), Sec. III running example",
    )


@register_kernel("vadd")
def vadd(n: int = 32) -> Kernel:
    return Kernel(
        name="vadd",
        description="hazard-free vector add (no disambiguation hardware)",
        builder=_build_vadd,
        args={"n": n},
        memory_init={
            "a": lcg_values(n, seed=51, lo=0, hi=99),
            "b": lcg_values(n, seed=53, lo=0, hi=99),
        },
        paper_reference="baseline sanity kernel",
    )


@register_kernel("histogram")
def histogram(n: int = 48, buckets: int = 12) -> Kernel:
    return Kernel(
        name="histogram",
        description="hist[data[i]] += 1 scatter-accumulate",
        builder=_build_histogram,
        args={"n": n, "buckets": buckets},
        memory_init={"data": lcg_values(n, seed=61, lo=0, hi=buckets - 1)},
        paper_reference="extra hazard kernel",
    )


@register_kernel("recurrence")
def recurrence(n: int = 24) -> Kernel:
    return Kernel(
        name="recurrence",
        description="t[i+1] = t[i]*x[i] + 1 distance-1 squash stress test",
        builder=_build_recurrence,
        args={"n": n},
        memory_init={"x": lcg_values(n, seed=67, lo=1, hi=3)},
        paper_reference="squash-path stress (not in paper tables)",
    )
