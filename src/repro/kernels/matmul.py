"""Matrix-multiplication chains: the paper's 2mm and 3mm kernels.

Each product is a fully-nested triple loop accumulating in a loop-carried
register and storing ``out[i*N+j]`` on the last ``k`` iteration (a
conditional store — exercising the fake-token path).  Chained products
read the previous product's output matrix, creating **cross-nest** RAW
hazards: the dataflow circuit overlaps the nests, so a later nest's loads
can race the earlier nest's stores — exactly the disambiguation the LSQ
(or PreVV) must police.  Flattened ``i*N+j`` subscripts keep the accesses
may-conflict for the (Dynamatic-style) dependence analysis, as in the
paper's benchmarks.
"""

from __future__ import annotations


from ..ir import Function, IRBuilder
from ..ir.values import ArrayDecl
from .base import Kernel, lcg_values, register_kernel
from .nest import NestBuilder


def _emit_matmul(b: IRBuilder, nest: NestBuilder, n_arg, n: int,
                 lhs: ArrayDecl, rhs: ArrayDecl, out: ArrayDecl,
                 tag: str) -> None:
    """One fully-nested product: out = lhs x rhs (N x N, flattened)."""
    i = nest.open_loop(f"{tag}i", n_arg).iv
    j = nest.open_loop(f"{tag}j", n_arg).iv
    kloop = nest.open_loop(f"{tag}k", n_arg, carried={"s": 0})
    k, s = kloop.iv, kloop.carried["s"]
    lhs_v = b.load(lhs, b.add(b.mul(i, n), k))
    rhs_v = b.load(rhs, b.add(b.mul(k, n), j))
    s2 = b.add(s, b.mul(lhs_v, rhs_v), name=f"{tag}s2")
    is_last = b.eq(k, b.sub(n_arg, 1))
    guard, then, join = nest.if_then(is_last, f"{tag}st")
    b.store(out, b.add(b.mul(i, n), j), s2)
    nest.end_then(join)
    nest.close_loop({"s": s2})
    nest.close_loop()
    nest.close_loop()


def _build_2mm(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    fn = Function("mm2")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    a = b.array("A", n * n)
    bm = b.array("B", n * n)
    cm = b.array("C", n * n)
    tmp = b.array("tmp", n * n)
    d = b.array("D", n * n)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    _emit_matmul(b, nest, n_arg, n, a, bm, tmp, "p")   # tmp = A x B
    _emit_matmul(b, nest, n_arg, n, tmp, cm, d, "q")   # D = tmp x C
    b.ret()
    return fn


def _build_3mm(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    fn = Function("mm3")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    a = b.array("A", n * n)
    bm = b.array("B", n * n)
    cm = b.array("C", n * n)
    dm = b.array("D", n * n)
    e = b.array("E", n * n)
    f = b.array("F", n * n)
    g = b.array("G", n * n)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    _emit_matmul(b, nest, n_arg, n, a, bm, e, "p")    # E = A x B
    _emit_matmul(b, nest, n_arg, n, cm, dm, f, "q")   # F = C x D
    _emit_matmul(b, nest, n_arg, n, e, f, g, "r")     # G = E x F
    b.ret()
    return fn


@register_kernel("2mm")
def mm2(n: int = 8) -> Kernel:
    """Two chained matrix products (D = (A x B) x C)."""
    return Kernel(
        name="2mm",
        description="D = (A*B)*C with cross-nest RAW hazards on tmp",
        builder=_build_2mm,
        args={"n": n},
        memory_init={
            "A": lcg_values(n * n, seed=3, lo=0, hi=6),
            "B": lcg_values(n * n, seed=5, lo=0, hi=6),
            "C": lcg_values(n * n, seed=9, lo=0, hi=6),
        },
        paper_reference="Table I/II row 2mm; Fig. 1/7",
    )


@register_kernel("3mm")
def mm3(n: int = 8) -> Kernel:
    """Three matrix products (G = (A x B) x (C x D))."""
    return Kernel(
        name="3mm",
        description="G = (A*B)*(C*D) with cross-nest RAW hazards on E and F",
        builder=_build_3mm,
        args={"n": n},
        memory_init={
            "A": lcg_values(n * n, seed=3, lo=0, hi=6),
            "B": lcg_values(n * n, seed=5, lo=0, hi=6),
            "C": lcg_values(n * n, seed=9, lo=0, hi=6),
            "D": lcg_values(n * n, seed=13, lo=0, hi=6),
        },
        paper_reference="Table I/II row 3mm; Fig. 1/7",
    )
