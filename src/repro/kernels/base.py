"""Kernel descriptors: IR builder + inputs + golden reference.

Each benchmark bundles the IR-building recipe, the compile-time scalar
arguments (kernel sizes, fixed at synthesis like the paper's HLS flow) and
deterministic input data.  All kernels use the *fully-nested* loop form
(every statement in the innermost block, possibly under an if) — the shape
the PreVV builder supports and the shape polyhedral HLS benchmarks take.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..ir import Function, run_golden


def lcg_values(count: int, seed: int = 7, lo: int = 0, hi: int = 10) -> List[int]:
    """Deterministic pseudo-random integers in [lo, hi] (tiny LCG).

    Keeps kernel inputs reproducible without importing ``random`` so runs
    are bit-identical across platforms and Python versions.
    """
    span = hi - lo + 1
    state = seed & 0x7FFFFFFF
    values = []
    for _ in range(count):
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        values.append(lo + (state >> 16) % span)
    return values


@dataclass
class Kernel:
    """One benchmark: everything needed to compile, run and verify it."""

    name: str
    description: str
    builder: Callable[["Kernel"], Function]
    args: Dict[str, int] = field(default_factory=dict)
    memory_init: Dict[str, List[int]] = field(default_factory=dict)
    #: table/figure rows this kernel backs (documentation only)
    paper_reference: str = ""

    def build_ir(self) -> Function:
        return self.builder(self)

    def golden(self):
        """Interpreter (C++-reference) run of this kernel."""
        return run_golden(
            self.build_ir(), args=self.args, memory=self.memory_init
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Kernel({self.name}, args={self.args})"


_REGISTRY: Dict[str, Callable[[], Kernel]] = {}


def register_kernel(name: str):
    """Decorator: register a zero-arg kernel factory under ``name``.

    Names are a global namespace shared by the eval tables, the perf
    baselines and the CLI — silently shadowing an existing entry would
    redefine what every ``get_kernel`` caller means by that name, so a
    duplicate registration is an error.  Generated kernels (the fuzzer)
    avoid the clash by construction with a reserved ``fuzz_`` prefix.
    """

    def deco(factory: Callable[[], Kernel]):
        if name in _REGISTRY:
            raise ValueError(
                f"kernel {name!r} is already registered; pick a unique "
                f"name (generated kernels belong under 'fuzz_...')"
            )
        _REGISTRY[name] = factory
        return factory

    return deco


def get_kernel(name: str, **overrides) -> Kernel:
    """Instantiate a registered kernel; ``overrides`` patch its args.

    Overriding an arg (e.g. ``n=4``) rebuilds the input data accordingly —
    factories read their sizes from the override mapping.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown kernel {name!r}; known: {known}") from None
    return factory(**overrides) if overrides else factory()


def kernel_names() -> List[str]:
    return sorted(_REGISTRY)
