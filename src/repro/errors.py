"""Exception hierarchy for the PreVV reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch reproduction-specific failures without masking ordinary
Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(ReproError):
    """Structural problem in a dataflow circuit (bad wiring, duplicate names)."""


class SimulationError(ReproError):
    """Runtime problem during cycle-accurate simulation."""


class DeadlockError(SimulationError):
    """The circuit made no progress for too many consecutive cycles.

    Carries a human-readable diagnosis of stuck channels so that deadlocks
    (e.g. the Fig. 6 conditional-pair deadlock) can be inspected in tests.
    """

    def __init__(self, message: str, stuck_channels=None):
        super().__init__(message)
        self.stuck_channels = list(stuck_channels or [])


class ConvergenceError(SimulationError):
    """Combinational fixpoint failed to settle within the iteration cap."""


class CodegenUnsupportedError(SimulationError):
    """The step-code compiler declined a circuit (or a feature request).

    Raised for circuits containing unaudited/unknown component classes,
    instance-level propagate/tick patches, or cyclic valid/ready residue,
    and for simulator features the compiled engine does not support
    (tracing, per-channel stall statistics).  Engine selection catches
    this and falls back to the interpreted engine.
    """


class VectorUnsupportedError(SimulationError):
    """The lockstep vector engine declined a circuit (or a feature request).

    Raised when a circuit is not vectorizable (superset of the codegen
    restrictions, plus numpy availability), when lanes handed to a
    ``VectorBatch`` do not share one structural key, or for simulator
    features the vector engine does not support (tracing, per-channel
    stall statistics, abort conditions, unsplit done conditions).
    Engine selection catches this and falls back to the compiled engine.
    """


class IRError(ReproError):
    """Malformed IR (verifier failures, bad builder usage)."""


class InterpreterError(ReproError):
    """Golden-model interpreter failure (out-of-bounds access, bad types)."""


class AnalysisError(ReproError):
    """Memory-dependence analysis failure."""


class CompileError(ReproError):
    """Elastic-circuit synthesis failure."""


class MemoryError_(ReproError):
    """Memory subsystem failure (out-of-range address, port misuse)."""


class QueueOverflowError(ReproError):
    """An internal hardware queue was pushed while full.

    This indicates a handshake bug: backpressure should have prevented the
    push. It is an assertion-style error, never expected in a correct run.
    """


class ValidationError(ReproError):
    """PreVV validation-stage inconsistency (internal invariant broken)."""


class ConfigError(ReproError):
    """Invalid evaluation or hardware configuration."""
