"""Simulator performance tracking: ``python -m repro.bench``.

Times the seed kernels under all four hardware configurations with the
stat-free simulator fast path and writes ``BENCH_simulator.json`` so the
performance trajectory of the cycle-accurate engine is tracked from PR
to PR.  ``--check`` compares a fresh run against a committed baseline
and fails on regression (used by the CI bench smoke job).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence

from ..compile import compile_function
from ..dataflow import ENGINES, make_simulator
from ..eval.configs import ALL_CONFIGS
from ..eval.runner import make_done_condition
from ..kernels import PAPER_KERNELS, get_kernel

#: Wall-clock of ``benchmarks/bench_table2_timing.py`` (single process,
#: reduced sizes) on the reference machine *before* the levelized /
#: incremental engine landed.  New runs report their speedup against it.
PRE_OPT_TABLE2_SECONDS = 21.94

#: Reduced kernel sizes for ``--quick`` (mirrors benchmarks/conftest.py).
QUICK_SIZES: Dict[str, Dict[str, int]] = {
    "polyn_mult": {"n": 20},
    "2mm": {"n": 5},
    "3mm": {"n": 5},
    "gaussian": {"n": 8},
    "triangular": {"n": 24},
}

#: Allowed slow-down per point before ``--check`` fails.
REGRESSION_TOLERANCE = 0.25

#: Lanes per batched-throughput point: the ISSUE's reference workload is
#: one ``run_batch`` of 64 identical lanes vs 64 sequential compiled runs.
BATCHED_LANES = 64

#: ``--check`` fails when the batched speedup geomean drops below this.
BATCHED_MIN_GEOMEAN = 3.0

#: (kernel, config-name) points for the batched-throughput section: two
#: plain-memory kernels under the Dynamatic baseline and two PreVV
#: squash-heavy kernels, so both the fast path and the squash/replay
#: machinery are under the gate.
BATCHED_POINTS = (
    ("vadd", "dynamatic"),
    ("gaussian", "prevv16"),
    ("triangular", "dynamatic"),
    ("fig2b", "prevv16"),
)


def _instrument_attribution(circuit) -> Dict[str, Dict]:
    """Wrap every component's ``propagate`` with a per-class meter.

    The engine looks ``comp.propagate`` up at call time (never pre-bound),
    so an instance-level wrapper attributes evaluation count and wall
    time to the component's class without changing a single signal.  The
    timing overhead inflates the *point's* wall clock — profile runs are
    for attribution, not for absolute throughput numbers.
    """
    attribution: Dict[str, Dict] = {}
    perf = time.perf_counter

    def wrap(comp, slot):
        inner = comp.propagate

        def metered():
            t0 = perf()
            inner()
            slot["propagate_s"] += perf() - t0
            slot["propagate_calls"] += 1

        comp.propagate = metered

    for comp in circuit.components:
        slot = attribution.setdefault(
            type(comp).__name__,
            {"instances": 0, "propagate_calls": 0, "propagate_s": 0.0},
        )
        slot["instances"] += 1
        wrap(comp, slot)
    return attribution


def bench_point(kernel_name: str, config, sizes: Optional[Dict[str, int]],
                max_cycles: int = 2_000_000, profile: bool = False,
                engine: str = "incremental") -> Dict:
    """Time one (kernel, config, engine) point with the stat-free path.

    Profile runs install instance-level propagate wrappers, which the
    codegen compiler (rightly) declines, so they force the interpreted
    engine regardless of ``engine``.  The point records both the engine
    *requested* and the engine actually used — a compiled request that
    fell back to the interpreter must be visible in the JSON, not buried
    in an implausible throughput number.
    """
    kernel = get_kernel(kernel_name, **(sizes or {}))
    fn = kernel.build_ir()
    build = compile_function(fn, config, args=kernel.args)
    build.memory.initialize(kernel.memory_init)
    attribution = (
        _instrument_attribution(build.circuit) if profile else None
    )
    sim = make_simulator(
        build.circuit,
        engine="levelized" if profile else engine,
        max_cycles=max_cycles,
    )
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    started = time.perf_counter()
    stats = sim.run(make_done_condition(build))
    wall = time.perf_counter() - started
    point = {
        "kernel": kernel_name,
        "config": config.name,
        "engine": sim.engine_name,
        "engine_requested": engine,
        "wall_s": round(wall, 4),
        "cycles": stats.cycles,
        "cycles_per_sec": round(stats.cycles / wall) if wall > 0 else None,
        "propagate_calls": stats.propagate_calls,
        "propagate_calls_per_cycle": round(
            stats.propagate_calls / max(1, stats.cycles), 3
        ),
        "evals_per_sec": (
            round(stats.propagate_calls / wall) if wall > 0 else None
        ),
    }
    if attribution is not None:
        total_s = sum(s["propagate_s"] for s in attribution.values())
        cycles = max(1, stats.cycles)
        point["profile"] = {
            cls: {
                "instances": slot["instances"],
                "propagate_calls": slot["propagate_calls"],
                "calls_per_cycle": round(
                    slot["propagate_calls"] / cycles, 3
                ),
                "wall_s": round(slot["propagate_s"], 4),
                "wall_pct": round(
                    100.0 * slot["propagate_s"] / total_s, 1
                ) if total_s > 0 else 0.0,
            }
            for cls, slot in sorted(
                attribution.items(),
                key=lambda kv: kv[1]["propagate_s"],
                reverse=True,
            )
        }
    return point


def _bench_worker(args):
    return bench_point(*args)


def run_bench(quick: bool = True, jobs: int = 1,
              kernels: Optional[Sequence[str]] = None,
              configs: Optional[Sequence[str]] = None,
              profile: bool = False,
              engines: Optional[Sequence[str]] = None) -> Dict:
    """Run the full grid; returns the BENCH_simulator.json payload.

    ``configs`` filters the hardware-configuration axis by name (e.g.
    ``["prevv16", "prevv64"]`` for the PreVV-only CI gate); ``profile``
    adds per-component-class propagate time/eval attribution to every
    point (and inflates wall clocks — see ``_instrument_attribution``).
    ``engines`` adds an engine axis: one point per engine per (kernel,
    config), so cross-engine comparisons live in one report.
    """
    knames = list(kernels or PAPER_KERNELS)
    grid_configs = ALL_CONFIGS
    if configs is not None:
        known = {c.name: c for c in ALL_CONFIGS}
        unknown = [name for name in configs if name not in known]
        if unknown:
            raise ValueError(
                f"unknown config(s) {unknown}; choose from {sorted(known)}"
            )
        grid_configs = [known[name] for name in configs]
    engine_axis = list(engines or ("incremental",))
    bad = [e for e in engine_axis if e not in ENGINES]
    if bad:
        raise ValueError(f"unknown engine(s) {bad}; choose from {ENGINES}")
    if profile and any(e == "compiled" for e in engine_axis):
        raise ValueError(
            "--profile instruments propagate per instance, which the "
            "compiled engine cannot honour; drop --profile or bench an "
            "interpreted engine"
        )
    work = [
        (kname, cfg, QUICK_SIZES.get(kname) if quick else None,
         2_000_000, profile, eng)
        for kname in knames
        for cfg in grid_configs
        for eng in engine_axis
    ]
    started = time.perf_counter()
    if jobs > 1 and len(work) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            points: List[Dict] = list(pool.map(_bench_worker, work))
    else:
        points = [_bench_worker(w) for w in work]
    total = time.perf_counter() - started
    serial = round(sum(p["wall_s"] for p in points), 3)
    return {
        "bench": "simulator",
        "quick": quick,
        "jobs": jobs,
        "configs": [c.name for c in grid_configs],
        "engines": engine_axis,
        "profile": profile,
        "total_wall_s": round(total, 3),
        "serial_wall_s": serial,
        "pre_opt_table2_s": PRE_OPT_TABLE2_SECONDS,
        "points": points,
    }


# ----------------------------------------------------------------------
# Batched throughput: ``python -m repro.bench --batched``
# ----------------------------------------------------------------------
def bench_batched_point(kernel_name: str, config,
                        sizes: Optional[Dict[str, int]],
                        batch: int = BATCHED_LANES,
                        max_cycles: int = 2_000_000) -> Dict:
    """Time one batched point against its sequential-compiled baseline.

    The workload is ``batch`` identical lanes of one kernel: once through
    ``run_batch(..., engine="vector")`` (one wall clock for the whole
    batch, including compile/prepare and the content-dedup layer) and
    once as ``batch`` sequential ``run_kernel(engine="compiled")`` calls.
    Identical lanes are the representative batch-API workload (parameter
    sweeps re-run the same request many times); varied-input lanes ride
    the lockstep planes at roughly scalar-compiled parity and are pinned
    bit-identical by ``tests/dataflow/test_vector.py``, not timed here.
    ``lane_cycles_per_sec`` counts every lane's simulated cycles per
    wall second, so both columns share one unit.
    """
    from ..eval.runner import run_batch, run_kernel

    def lanes():
        return [
            get_kernel(kernel_name, **(sizes or {})) for _ in range(batch)
        ]

    started = time.perf_counter()
    results = run_batch(lanes(), config, max_cycles=max_cycles,
                        engine="vector")
    batched_wall = time.perf_counter() - started
    lane_cycles = sum(r.cycles for r in results)

    started = time.perf_counter()
    scalar_cycles = 0
    for kernel in lanes():
        scalar_cycles += run_kernel(
            kernel, config, max_cycles=max_cycles, engine="compiled"
        ).cycles
    scalar_wall = time.perf_counter() - started

    if scalar_cycles != lane_cycles:
        raise RuntimeError(
            f"{kernel_name}/{config.name}: batched lanes ran "
            f"{lane_cycles} cycles but the scalar baseline ran "
            f"{scalar_cycles}; the speedup would compare different work"
        )
    return {
        "kernel": kernel_name,
        "config": config.name,
        "batch": batch,
        # a silent sequential fallback must be visible, not buried in an
        # implausible 1.0x ratio
        "engine": results[0].engine,
        "engine_requested": "vector",
        "lane_cycles": lane_cycles,
        "batched_wall_s": round(batched_wall, 4),
        "scalar_wall_s": round(scalar_wall, 4),
        "batched_lane_cycles_per_sec": (
            round(lane_cycles / batched_wall) if batched_wall > 0 else None
        ),
        "scalar_lane_cycles_per_sec": (
            round(lane_cycles / scalar_wall) if scalar_wall > 0 else None
        ),
        "speedup": (
            round(scalar_wall / batched_wall, 2) if batched_wall > 0
            else None
        ),
    }


def run_batched(quick: bool = True, batch: int = BATCHED_LANES,
                points: Sequence = BATCHED_POINTS) -> Dict:
    """Run the batched-throughput section; returns its JSON payload."""
    import math

    by_name = {c.name: c for c in ALL_CONFIGS}
    started = time.perf_counter()
    rows = [
        bench_batched_point(
            kname, by_name[cname],
            QUICK_SIZES.get(kname) if quick else None, batch=batch,
        )
        for kname, cname in points
    ]
    speedups = [p["speedup"] for p in rows if p["speedup"]]
    geomean = (
        round(math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 2)
        if speedups else None
    )
    return {
        "batch": batch,
        "min_geomean": BATCHED_MIN_GEOMEAN,
        "geomean_speedup": geomean,
        "total_wall_s": round(time.perf_counter() - started, 3),
        "points": rows,
    }


def check_batched_throughput(section: Optional[Dict],
                             min_geomean: float = BATCHED_MIN_GEOMEAN):
    """Gate the batched section; returns error strings.

    The gate is absolute, not baseline-relative: the batch engine earns
    its keep only while one 64-lane ``run_batch`` beats 64 sequential
    compiled runs by ``min_geomean`` on the same machine, so both wall
    clocks share whatever hardware CI gave us.
    """
    errors: List[str] = []
    if section is None:
        errors.append(
            "batched_throughput section missing; run with --batched"
        )
        return errors
    for point in section["points"]:
        tag = f"{point['kernel']}/{point['config']}/batch{point['batch']}"
        if point["engine"] != "vector":
            errors.append(
                f"{tag}: fell back to the {point['engine']} engine"
            )
    geomean = section["geomean_speedup"]
    if geomean is None or geomean < min_geomean:
        errors.append(
            f"batched speedup geomean {geomean} < required "
            f"{min_geomean:.1f}x"
        )
    return errors


# ----------------------------------------------------------------------
# Sanitizer sweep: ``python -m repro.bench --sanitize``
# ----------------------------------------------------------------------
#: Default configuration axis for the sanitizer sweep: both baselines
#: from the paper's evaluation, plus a depth-1 premature queue, which
#: maximizes the squash rate (every conflicting pair collides
#: immediately) and therefore stresses the replay/retraction protocol.
SANITIZE_CONFIG_NAMES = ("dynamatic", "prevv16", "prevv64", "prevv1")


def _sanitize_config(name: str):
    from ..eval.configs import BY_NAME, prevv_with_depth

    if name in BY_NAME:
        return BY_NAME[name]
    if name.startswith("prevv") and name[5:].isdigit():
        return prevv_with_depth(int(name[5:]))
    raise ValueError(
        f"unknown sanitize config {name!r}; choose from "
        f"{sorted(BY_NAME)} or prevv<depth>"
    )


def _sanitize_worker(args):
    kname, config, sizes, max_cycles = args
    from ..analysis.sanitizer import sanitize_run

    kernel = get_kernel(kname, **(sizes or {}))
    result = sanitize_run(kernel, config, max_cycles=max_cycles)
    return {
        "kernel": kname,
        "config": config.name,
        "cycles": result.cycles,
        "checks": result.checks,
        "completed": result.completed,
        "verified": result.verified,
        "ok": result.ok,
        "errors": [d.format() for d in result.report.errors],
        "warnings": len(result.report.warnings),
    }


def run_sanitize_sweep(quick: bool = True, jobs: int = 1,
                       kernels: Optional[Sequence[str]] = None,
                       configs: Optional[Sequence[str]] = None,
                       max_cycles: int = 2_000_000) -> Dict:
    """Run every (kernel, config) point under the PVSan oracle.

    The sweep is the dynamic half of the repo's correctness gate: each
    point replays the interpreter's program order alongside the cycle
    simulation and fails on any missed violation, spurious squash,
    fake-token disagreement or final-memory divergence.  Unlike the
    timing grid it covers *every* registered kernel, not just the
    paper's evaluation set — correctness has no reason to sample.
    """
    from ..kernels import kernel_names

    knames = list(kernels or kernel_names())
    grid_configs = [
        _sanitize_config(name)
        for name in (configs or SANITIZE_CONFIG_NAMES)
    ]
    work = [
        (kname, cfg, QUICK_SIZES.get(kname) if quick else None, max_cycles)
        for kname in knames
        for cfg in grid_configs
    ]
    started = time.perf_counter()
    if jobs > 1 and len(work) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            points: List[Dict] = list(pool.map(_sanitize_worker, work))
    else:
        points = [_sanitize_worker(w) for w in work]
    failures = [p for p in points if not (p["ok"] and p["verified"])]
    return {
        "bench": "sanitize",
        "quick": quick,
        "configs": [c.name for c in grid_configs],
        "total_wall_s": round(time.perf_counter() - started, 3),
        "points": points,
        "failures": len(failures),
    }


# ----------------------------------------------------------------------
# PVPerf cross-validation sweep: ``python -m repro.bench --perf``
# ----------------------------------------------------------------------
#: Configuration axis for the perf sweep: the paper's full evaluation
#: grid, so every static bound is exercised against both baselines and
#: both PreVV depths.
PERF_CONFIG_NAMES = ("dynamatic", "fast_lsq", "prevv16", "prevv64")


def _perf_worker(args):
    kname, config, sizes, max_cycles = args
    from ..analysis.perf import compare, measure_kernel

    prediction, measurement = measure_kernel(
        kname, config, sizes=sizes, max_cycles=max_cycles
    )
    checks = [rec.to_dict() for rec in compare(prediction, measurement)]
    ii = prediction.ii_lower_bound
    return {
        "kernel": kname,
        "config": config.name,
        "cycles": measurement.cycles,
        "ii_lower_bound": None if ii is None else str(ii),
        "critical_cycle": (
            None
            if prediction.cycle is None
            else {
                "ratio": (
                    None
                    if prediction.cycle.ratio is None
                    else str(prediction.cycle.ratio)
                ),
                "latency": prediction.cycle.latency,
                "capacity": prediction.cycle.capacity,
                "channels": [
                    ch.name
                    for ch in prediction.graph.cycle_channels(prediction.cycle)
                ],
            }
        ),
        "checks": checks,
        "divergences": sum(1 for c in checks if not c["ok"]),
    }


def run_perf_sweep(quick: bool = True, jobs: int = 1,
                   kernels: Optional[Sequence[str]] = None,
                   configs: Optional[Sequence[str]] = None,
                   max_cycles: int = 2_000_000) -> Dict:
    """Cross-validate the PVPerf static bounds over the full grid.

    Every point pairs each static lower bound with the quantity it
    constrains (critical-cycle firings, validation work, loop floors —
    see :func:`repro.analysis.perf.measure.compare`) and counts
    divergences.  A nonzero divergence count means the *static model*
    is unsound — the same condition PV404 raises — so the sweep is the
    dynamic regression gate for every ``perf_model`` in the component
    library.  Covers every registered kernel: soundness has no reason
    to sample.
    """
    from ..kernels import kernel_names

    knames = list(kernels or kernel_names())
    grid_configs = [
        _sanitize_config(name) for name in (configs or PERF_CONFIG_NAMES)
    ]
    work = [
        (kname, cfg, QUICK_SIZES.get(kname) if quick else None, max_cycles)
        for kname in knames
        for cfg in grid_configs
    ]
    started = time.perf_counter()
    if jobs > 1 and len(work) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            points: List[Dict] = list(pool.map(_perf_worker, work))
    else:
        points = [_perf_worker(w) for w in work]
    divergences = sum(p["divergences"] for p in points)
    return {
        "bench": "perf",
        "quick": quick,
        "configs": [c.name for c in grid_configs],
        "total_wall_s": round(time.perf_counter() - started, 3),
        "points": points,
        "divergences": divergences,
    }


# ----------------------------------------------------------------------
# PVBound occupancy sweep: ``python -m repro.bench --occupancy``
# ----------------------------------------------------------------------
#: Configuration axis for the occupancy sweep: the paper's grid plus the
#: shallow prevv4 point, where the cross-phase full-queue escapes are
#: actually exercised and the policy model earns its keep.
OCCUPANCY_CONFIG_NAMES = (
    "dynamatic", "fast_lsq", "prevv16", "prevv64", "prevv4",
)


def _occupancy_worker(args):
    kname, config, sizes, max_cycles = args
    from ..analysis.occupancy import compare, measure_kernel

    prediction, measurement = measure_kernel(
        kname, config, sizes=sizes, max_cycles=max_cycles
    )
    checks = [rec.to_dict() for rec in compare(prediction, measurement)]
    return {
        "kernel": kname,
        "config": config.name,
        "cycles": measurement.cycles,
        "places": len(prediction.bounds),
        "unbounded": sum(
            1 for b in prediction.bounds.values() if b is None
        ),
        "overflow_units": prediction.overflow_units,
        "stalls": [s.unit for s in prediction.stalls],
        "checks": checks,
        "divergences": sum(1 for c in checks if not c["ok"]),
    }


def run_occupancy_sweep(quick: bool = True, jobs: int = 1,
                        kernels: Optional[Sequence[str]] = None,
                        configs: Optional[Sequence[str]] = None,
                        max_cycles: int = 2_000_000) -> Dict:
    """Cross-validate the PVBound occupancy bounds over the full grid.

    Every point pairs each static occupancy upper bound with the peak
    the sampled run actually reached and counts divergences — a nonzero
    count means the transfer function is unsound (the PV504 condition).
    A statically reachable overflow or retirement stall (PV502/PV503)
    also fails the sweep: the committed kernels are all supposed to be
    proven safe.  Covers every registered kernel: soundness has no
    reason to sample.
    """
    from ..kernels import kernel_names

    knames = list(kernels or kernel_names())
    grid_configs = [
        _sanitize_config(name)
        for name in (configs or OCCUPANCY_CONFIG_NAMES)
    ]
    work = [
        (kname, cfg, QUICK_SIZES.get(kname) if quick else None, max_cycles)
        for kname in knames
        for cfg in grid_configs
    ]
    started = time.perf_counter()
    if jobs > 1 and len(work) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
            points: List[Dict] = list(pool.map(_occupancy_worker, work))
    else:
        points = [_occupancy_worker(w) for w in work]
    divergences = sum(p["divergences"] for p in points)
    unsafe = sum(
        1 for p in points if p["overflow_units"] or p["stalls"]
    )
    return {
        "bench": "occupancy",
        "quick": quick,
        "configs": [c.name for c in grid_configs],
        "total_wall_s": round(time.perf_counter() - started, 3),
        "points": points,
        "divergences": divergences,
        "unsafe_points": unsafe,
    }


def time_table2(quick: bool = True) -> Dict:
    """Time a full single-process ``table2`` run (compile + simulate).

    This is the exact workload of ``benchmarks/bench_table2_timing.py``
    and therefore directly comparable to :data:`PRE_OPT_TABLE2_SECONDS`.
    """
    from ..eval import tables as tables_mod

    original = tables_mod.get_kernel
    if quick:
        def sized(name, **kw):
            merged = dict(QUICK_SIZES.get(name, {}))
            merged.update(kw)
            return original(name, **merged)

        tables_mod.get_kernel = sized
    try:
        started = time.perf_counter()
        tables_mod.table2()
        wall = time.perf_counter() - started
    finally:
        tables_mod.get_kernel = original
    return {
        "table2_wall_s": round(wall, 3),
        "table2_speedup_vs_pre_opt": (
            round(PRE_OPT_TABLE2_SECONDS / wall, 2) if quick and wall > 0
            else None
        ),
    }


def check_against_baseline(result: Dict, baseline: Dict,
                           tolerance: float = REGRESSION_TOLERANCE):
    """Compare a fresh run to a committed baseline; returns error strings.

    Cycle counts must match exactly (the engine is meant to be
    bit-identical); per-cycle evaluation effort may not regress by more
    than ``tolerance``.  Raw wall-clock is *not* compared — CI machines
    vary too much — ``propagate_calls_per_cycle`` is the stable proxy.
    """
    errors: List[str] = []
    # Points are keyed per engine actually used; baselines predating the
    # engine column were always the auto-selected incremental engine.
    base_points = {
        (p["kernel"], p["config"], p.get("engine") or "incremental"): p
        for p in baseline.get("points", [])
    }
    for point in result["points"]:
        key = (point["kernel"], point["config"],
               point.get("engine") or "incremental")
        base = base_points.get(key)
        if base is None:
            continue
        tag = f"{key[0]}/{key[1]}/{key[2]}"
        if point["cycles"] != base["cycles"]:
            errors.append(
                f"{tag}: cycles {point['cycles']} != baseline "
                f"{base['cycles']}"
            )
        limit = base["propagate_calls_per_cycle"] * (1.0 + tolerance)
        if point["propagate_calls_per_cycle"] > limit:
            errors.append(
                f"{tag}: propagate_calls/cycle "
                f"{point['propagate_calls_per_cycle']} > "
                f"{limit:.3f} (baseline {base['propagate_calls_per_cycle']} "
                f"+{tolerance:.0%})"
            )
    return errors


def dump_emitted_source(path: str,
                        kernel_name: Optional[str] = None,
                        configs: Optional[Sequence[str]] = None,
                        quick: bool = True) -> None:
    """Write the compiled engine's generated step source to ``path``.

    Defaults to the first kernel of the bench grid under the first
    selected config — the CI smoke job uploads this as a build artifact
    so a compiled-engine failure can be debugged from the emitted code
    alone.
    """
    from ..dataflow import emitted_source

    kname = kernel_name or PAPER_KERNELS[0]
    cfg_name = (configs or [ALL_CONFIGS[0].name])[0]
    config = next(c for c in ALL_CONFIGS if c.name == cfg_name)
    sizes = QUICK_SIZES.get(kname) if quick else None
    kernel = get_kernel(kname, **(sizes or {}))
    build = compile_function(kernel.build_ir(), config, args=kernel.args)
    with open(path, "w") as handle:
        handle.write(emitted_source(build.circuit))


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time the simulator over the kernel x config grid.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced kernel sizes (CI smoke run)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the grid")
    parser.add_argument("--out", default="BENCH_simulator.json",
                        help="output JSON path")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON; non-zero "
                        "exit on cycle mismatch or >25%% effort regression")
    parser.add_argument("--table2", action="store_true",
                        help="also time a full single-process table2 run "
                        "(the pre-opt baseline's exact workload)")
    parser.add_argument("--batched", action="store_true",
                        help="also time the batched-throughput section: "
                        "one 64-lane run_batch(engine=vector) vs 64 "
                        "sequential compiled runs per point; --check "
                        "gates its geomean at >= "
                        f"{BATCHED_MIN_GEOMEAN:.1f}x")
    parser.add_argument("--configs", metavar="NAMES",
                        help="comma-separated config names to bench "
                        "(e.g. prevv16,prevv64); default: all")
    parser.add_argument("--profile", action="store_true",
                        help="attribute propagate time/evals per "
                        "component class (inflates wall clocks)")
    parser.add_argument("--engine", metavar="NAMES",
                        default="incremental",
                        help="comma-separated engine axis (one bench "
                        "point per engine): auto, compiled, vector, "
                        "incremental, levelized, reference; default: "
                        "incremental")
    parser.add_argument("--dump-source", metavar="PATH",
                        help="write the compiled engine's emitted step "
                        "source for the first (kernel, config) point to "
                        "PATH (debug artifact)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the PVSan oracle sweep instead of the "
                        "timing grid; non-zero exit on any oracle "
                        "mismatch or memory divergence")
    parser.add_argument("--perf", action="store_true",
                        help="run the PVPerf cross-validation sweep "
                        "instead of the timing grid; non-zero exit when "
                        "any static II bound exceeds its measured "
                        "counterpart")
    parser.add_argument("--occupancy", action="store_true",
                        help="run the PVBound occupancy sweep instead "
                        "of the timing grid; non-zero exit when any "
                        "measured peak escapes its static bound (PV504) "
                        "or a committed kernel is statically unsafe "
                        "(PV502/PV503)")
    opts = parser.parse_args(argv)

    configs = opts.configs.split(",") if opts.configs else None
    if opts.occupancy:
        result = run_occupancy_sweep(quick=opts.quick, jobs=opts.jobs,
                                     kernels=None, configs=configs)
        out = opts.out
        if out == "BENCH_simulator.json":
            out = "BENCH_occupancy.json"
        with open(out, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        for point in result["points"]:
            unsafe = point["overflow_units"] or point["stalls"]
            status = "ok"
            if point["divergences"]:
                status = "DIVERGED"
            elif unsafe:
                status = "UNSAFE"
            print(
                f"{point['kernel']:12s} {point['config']:10s} "
                f"{point['cycles']:>8d} cyc  {point['places']:>4d} places "
                f"({point['unbounded']} unbounded)  "
                f"{len(point['checks'])} checks  {status}"
            )
            for check in point["checks"]:
                if not check["ok"]:
                    print(
                        f"    DIVERGENCE {check['kind']}: static "
                        f"{check['static']} < measured {check['measured']} "
                        f"({check['subject']})"
                    )
            for unit in point["overflow_units"]:
                print(f"    UNSAFE overflow reachable: {unit}")
            for unit in point["stalls"]:
                print(f"    UNSAFE retirement stall: {unit}")
        print(
            f"occupancy sweep: {len(result['points'])} points, "
            f"{result['divergences']} divergence(s), "
            f"{result['unsafe_points']} unsafe point(s) in "
            f"{result['total_wall_s']:.2f}s; wrote {out}"
        )
        return 1 if result["divergences"] or result["unsafe_points"] else 0
    if opts.perf:
        result = run_perf_sweep(quick=opts.quick, jobs=opts.jobs,
                                kernels=None, configs=configs)
        out = opts.out
        if out == "BENCH_simulator.json":
            out = "BENCH_perf.json"
        with open(out, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        for point in result["points"]:
            status = "ok" if point["divergences"] == 0 else "DIVERGED"
            cyc = point["critical_cycle"]
            ratio = cyc["ratio"] if cyc is not None else "-"
            print(
                f"{point['kernel']:12s} {point['config']:10s} "
                f"{point['cycles']:>8d} cyc  ii_lb={point['ii_lower_bound']:<5s} "
                f"mcr={ratio:<5s} {len(point['checks'])} checks  {status}"
            )
            for check in point["checks"]:
                if not check["ok"]:
                    print(
                        f"    DIVERGENCE {check['kind']}: static "
                        f"{check['static']} > measured {check['measured']} "
                        f"({check['subject']})"
                    )
        print(
            f"perf sweep: {len(result['points'])} points, "
            f"{result['divergences']} divergence(s) in "
            f"{result['total_wall_s']:.2f}s; wrote {out}"
        )
        return 1 if result["divergences"] else 0
    if opts.sanitize:
        result = run_sanitize_sweep(quick=opts.quick, jobs=opts.jobs,
                                    kernels=None, configs=configs)
        out = opts.out
        if out == "BENCH_simulator.json":
            out = "BENCH_sanitize.json"
        with open(out, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        for point in result["points"]:
            status = "ok" if point["ok"] and point["verified"] else "FAIL"
            print(
                f"{point['kernel']:12s} {point['config']:10s} "
                f"{point['cycles']:>8d} cyc  {point['checks']:>8d} checks  "
                f"{status}"
            )
            for err in point["errors"][:5]:
                print(f"    {err}")
        print(
            f"sanitize sweep: {len(result['points'])} points, "
            f"{result['failures']} failure(s) in "
            f"{result['total_wall_s']:.2f}s; wrote {out}"
        )
        return 1 if result["failures"] else 0
    engines = [e.strip() for e in opts.engine.split(",") if e.strip()]
    result = run_bench(quick=opts.quick, jobs=opts.jobs,
                       configs=configs, profile=opts.profile,
                       engines=engines)
    if opts.table2:
        result.update(time_table2(quick=opts.quick))
    if opts.batched:
        result["batched_throughput"] = run_batched(quick=opts.quick)
    with open(opts.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    if opts.dump_source:
        dump_emitted_source(opts.dump_source, configs=configs,
                            quick=opts.quick)
        print(f"wrote emitted step source to {opts.dump_source}")
    for point in result["points"]:
        print(
            f"{point['kernel']:12s} {point['config']:10s} "
            f"{point['engine']:11s} "
            f"{point['wall_s']:8.3f}s  {point['cycles']:>8d} cyc  "
            f"{point['cycles_per_sec']:>8d} cyc/s  "
            f"{point['propagate_calls_per_cycle']:>8.3f} evals/cyc"
        )
        if opts.profile:
            for cls, slot in list(point["profile"].items())[:4]:
                print(
                    f"    {cls:20s} x{slot['instances']:<3d} "
                    f"{slot['calls_per_cycle']:>8.3f} evals/cyc  "
                    f"{slot['wall_s']:>7.3f}s ({slot['wall_pct']:.1f}%)"
                )
    batched = result.get("batched_throughput")
    if batched is not None:
        for point in batched["points"]:
            print(
                f"{point['kernel']:12s} {point['config']:10s} "
                f"batch={point['batch']:<3d} "
                f"{point['batched_wall_s']:8.3f}s vs "
                f"{point['scalar_wall_s']:8.3f}s scalar  "
                f"{point['batched_lane_cycles_per_sec']:>9d} lane-cyc/s  "
                f"{point['speedup']:6.2f}x"
            )
        print(
            f"batched geomean {batched['geomean_speedup']:.2f}x "
            f"(gate >= {batched['min_geomean']:.1f}x)"
        )
    line = (
        f"total {result['total_wall_s']:.2f}s "
        f"(serial {result['serial_wall_s']:.2f}s)"
    )
    if result.get("table2_wall_s") is not None:
        line += f"; table2 {result['table2_wall_s']:.2f}s"
        if result.get("table2_speedup_vs_pre_opt") is not None:
            line += (
                f" = {result['table2_speedup_vs_pre_opt']:.2f}x vs pre-opt "
                f"{PRE_OPT_TABLE2_SECONDS:.2f}s"
            )
    print(line + f"; wrote {opts.out}")
    if opts.check:
        with open(opts.check) as handle:
            baseline = json.load(handle)
        errors = check_against_baseline(result, baseline)
        if opts.batched:
            errors += check_batched_throughput(
                result.get("batched_throughput")
            )
        if errors:
            for err in errors:
                print("REGRESSION:", err)
            return 1
        print(f"no regression vs {opts.check}")
    return 0
