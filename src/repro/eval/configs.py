"""The four hardware configurations evaluated in the paper.

* ``DYNAMATIC`` — plain Dynamatic [15]: LSQ with group allocation through
  the control network (slow token delivery);
* ``FAST_LSQ``  — Dynamatic plus the fast LSQ-allocation plugin [8];
* ``PREVV16``   — this paper, premature queue depth 16;
* ``PREVV64``   — this paper, premature queue depth 64.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import HardwareConfig

DYNAMATIC = HardwareConfig(name="dynamatic", memory_style="dynamatic")
FAST_LSQ = HardwareConfig(name="fast_lsq", memory_style="fast")
PREVV16 = HardwareConfig(name="prevv16", memory_style="prevv", prevv_depth=16)
PREVV64 = HardwareConfig(name="prevv64", memory_style="prevv", prevv_depth=64)

#: the paper's column order in Tables I and II
ALL_CONFIGS: List[HardwareConfig] = [DYNAMATIC, FAST_LSQ, PREVV16, PREVV64]

BY_NAME: Dict[str, HardwareConfig] = {c.name: c for c in ALL_CONFIGS}


def prevv_with_depth(depth: int) -> HardwareConfig:
    """A PreVV configuration with an arbitrary premature-queue depth."""
    return HardwareConfig(
        name=f"prevv{depth}", memory_style="prevv", prevv_depth=depth
    )
