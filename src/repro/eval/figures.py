"""Regeneration of the paper's Fig. 1 and Fig. 7 data series.

* Fig. 1 — share of circuit resources (LUT+FF+mux) consumed by the
  memory-ordering hardware (the LSQ) in plain-Dynamatic circuits: "more
  than 80% of the resources are allocated to LSQ while resources for
  calculation only occupies less than 20%".
* Fig. 7 — LUT (solid) and FF (dashed) of [8], PreVV16 and PreVV64,
  normalized to plain Dynamatic [15], per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..area import (
    CATEGORY_COMPUTE,
    CATEGORY_MEMORY,
    circuit_report,
)
from ..compile import compile_function
from ..config import HardwareConfig
from ..kernels import PAPER_KERNELS, get_kernel
from .configs import ALL_CONFIGS, DYNAMATIC


@dataclass
class Fig1Row:
    """Resource breakdown of one plain-Dynamatic circuit."""

    kernel: str
    ordering_share: float      # LSQ fraction (Fig. 1's dominant bar)
    compute_share: float       # "calculation" fraction
    other_share: float
    total_luts: float


def fig1_lsq_share(kernels: Optional[Sequence[str]] = None) -> List[Fig1Row]:
    rows = []
    for kname in kernels or PAPER_KERNELS:
        kernel = get_kernel(kname)
        build = compile_function(kernel.build_ir(), DYNAMATIC, args=kernel.args)
        report = circuit_report(build.circuit)

        def share(category):
            part = report.by_category.get(category)
            total = report.total.luts + report.total.ffs + report.total.muxes
            if part is None or total == 0:
                return 0.0
            return (part.luts + part.ffs + part.muxes) / total

        ordering = share(CATEGORY_MEMORY)
        compute = share(CATEGORY_COMPUTE)
        rows.append(
            Fig1Row(
                kernel=kname,
                ordering_share=ordering,
                compute_share=compute,
                other_share=max(0.0, 1.0 - ordering - compute),
                total_luts=report.total.luts,
            )
        )
    return rows


def format_fig1(rows: List[Fig1Row]) -> str:
    lines = [
        f"{'Benchmark':<12}{'LSQ share':>12}{'compute':>10}{'other':>10}"
        f"{'total LUT':>12}"
    ]
    for row in rows:
        lines.append(
            f"{row.kernel:<12}{row.ordering_share:>11.1%} "
            f"{row.compute_share:>9.1%}{row.other_share:>10.1%}"
            f"{row.total_luts:>12.0f}"
        )
    return "\n".join(lines)


@dataclass
class Fig7Series:
    """Normalized resource series for one configuration."""

    config: str
    luts: Dict[str, float] = field(default_factory=dict)  # kernel -> ratio
    ffs: Dict[str, float] = field(default_factory=dict)


def fig7_normalized(
    kernels: Optional[Sequence[str]] = None,
    configs: Optional[Sequence[HardwareConfig]] = None,
) -> List[Fig7Series]:
    """LUT/FF of each config normalized to plain Dynamatic, per kernel."""
    kernels = list(kernels or PAPER_KERNELS)
    configs = list(configs or ALL_CONFIGS)
    absolute: Dict[str, Dict[str, tuple]] = {}
    for kname in kernels:
        absolute[kname] = {}
        for cfg in configs:
            kernel = get_kernel(kname)
            build = compile_function(kernel.build_ir(), cfg, args=kernel.args)
            report = circuit_report(build.circuit)
            absolute[kname][cfg.name] = (report.total.luts, report.total.ffs)
    series = []
    for cfg in configs:
        if cfg.name == DYNAMATIC.name:
            continue
        row = Fig7Series(cfg.name)
        for kname in kernels:
            base_l, base_f = absolute[kname][DYNAMATIC.name]
            lut, ff = absolute[kname][cfg.name]
            row.luts[kname] = lut / base_l
            row.ffs[kname] = ff / base_f
        series.append(row)
    return series


def format_fig7(series: List[Fig7Series]) -> str:
    kernels = list(next(iter(series)).luts) if series else []
    lines = [f"{'config':<10}{'metric':<8}" + "".join(f"{k:>12}" for k in kernels)]
    for row in series:
        lines.append(
            f"{row.config:<10}{'LUT':<8}"
            + "".join(f"{row.luts[k]:>12.3f}" for k in kernels)
        )
        lines.append(
            f"{row.config:<10}{'FF':<8}"
            + "".join(f"{row.ffs[k]:>12.3f}" for k in kernels)
        )
    return "\n".join(lines)
