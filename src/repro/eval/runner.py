"""Compile -> simulate -> verify -> measure, for one kernel and config.

The runner is the reproduction of the paper's evaluation loop: generate
the circuit (Dynamatic/LSQ/PreVV), simulate it cycle-accurately
(ModelSim's role), check the final memory state against the interpreter
golden run (the C++ reference), and attach the area/timing estimates
(Vivado's role).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..compile import BuildResult, compile_function
from ..config import HardwareConfig
from ..dataflow import Simulator
from ..ir import run_golden


@dataclass
class RunResult:
    """Everything measured for one (kernel, config) evaluation point."""

    kernel: str
    config: HardwareConfig
    cycles: int
    verified: bool
    memory: Dict[str, List[int]]
    golden: Dict[str, List[int]]
    squashes: int = 0
    squashed_iterations: int = 0
    benign_reorders: int = 0
    violations_by_kind: Dict[str, int] = field(default_factory=dict)
    fake_tokens: int = 0
    queue_max_occupancy: int = 0
    queue_full_stalls: int = 0
    lsq_alloc_stalls: int = 0
    transfers: int = 0
    build: Optional[BuildResult] = None

    @property
    def mismatch_summary(self) -> str:
        lines = []
        for name in sorted(self.golden):
            got, want = self.memory.get(name), self.golden[name]
            if got != want:
                diffs = [
                    f"[{i}] got {g} want {w}"
                    for i, (g, w) in enumerate(zip(got, want))
                    if g != w
                ][:5]
                lines.append(f"{name}: " + "; ".join(diffs))
        return "\n".join(lines) or "(no mismatch)"


def make_done_condition(build: BuildResult):
    """Completion: exit token seen and the circuit fully quiescent.

    Quiescence means no channel offers a token and no component has
    internal work pending — i.e. every store has drained through its
    memory interface and every PreVV packet has been validated/retired.
    """

    def done() -> bool:
        if build.exit_sink.count < 1:
            return False
        if any(c.valid for c in build.circuit.channels):
            return False
        if any(c.is_busy for c in build.circuit.components):
            return False
        for unit in build.units:
            if unit.queue.occupancy or unit.has_pending:
                return False
        if build.units and build.memory.log_length:
            return False
        return True

    return done


def run_kernel(
    kernel,
    config: HardwareConfig,
    max_cycles: int = 2_000_000,
    keep_build: bool = False,
    trace=None,
    collect_stats: Optional[bool] = None,
) -> RunResult:
    """Evaluate one kernel (a :class:`repro.kernels.Kernel`) under ``config``.

    Per-channel statistics default to *off* (the simulator's stat-free
    fast path) — nothing in the evaluation tables reads them.  Passing a
    ``trace`` turns them back on so captured waveforms stay complete;
    ``collect_stats`` overrides either way.
    """
    fn = kernel.build_ir()
    golden = run_golden(fn, args=kernel.args, memory=kernel.memory_init)
    build = compile_function(fn, config, args=kernel.args)
    build.memory.initialize(kernel.memory_init)

    if collect_stats is None:
        collect_stats = trace is not None
    sim = Simulator(build.circuit, max_cycles=max_cycles, trace=trace,
                    collect_stats=collect_stats)
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    sim.run(make_done_condition(build))

    final = build.memory.snapshot()
    verified = all(
        final.get(name) == values for name, values in golden.memory.items()
    )

    result = RunResult(
        kernel=kernel.name,
        config=config,
        cycles=sim.stats.cycles,
        verified=verified,
        memory=final,
        golden=golden.memory,
        transfers=sim.stats.transfers,
        build=build if keep_build else None,
    )
    if build.squash_controller is not None:
        ctrl = build.squash_controller
        result.squashes = ctrl.squashes
        result.squashed_iterations = ctrl.squashed_iterations
    for unit in build.units:
        result.benign_reorders += unit.benign_reorders
        result.fake_tokens += unit.fake_tokens
        result.queue_max_occupancy = max(
            result.queue_max_occupancy, unit.queue.max_occupancy
        )
        result.queue_full_stalls += unit.queue.full_stalls
        for kind, count in unit.violations_by_kind.items():
            result.violations_by_kind[kind] = (
                result.violations_by_kind.get(kind, 0) + count
            )
    for lsq in build.lsqs:
        result.lsq_alloc_stalls += lsq.alloc_stalls
    return result


# ----------------------------------------------------------------------
# Grid evaluation (all kernels x all configs), optionally in parallel
# ----------------------------------------------------------------------
def _grid_worker(point):
    """Top-level (picklable) worker: one (kernel, config) point.

    Returns ``(RunResult, clock period ns)``.  The build itself stays in
    the worker — circuits hold operator lambdas and are not picklable —
    so the clock period the tables need is computed here.
    """
    kernel, config, max_cycles = point
    from ..area import clock_period

    result = run_kernel(kernel, config, max_cycles=max_cycles,
                        keep_build=True)
    period = clock_period(result.build.circuit)
    result.build = None
    return result, period


def run_grid(
    points,
    max_cycles: int = 2_000_000,
    jobs: int = 1,
) -> List:
    """Evaluate ``points`` (``(kernel, config)`` pairs) -> results + periods.

    With ``jobs > 1`` the points are distributed over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; results come back
    in input order either way, so reports are deterministic regardless
    of scheduling.
    """
    work = [(kernel, config, max_cycles) for kernel, config in points]
    if jobs <= 1 or len(work) <= 1:
        return [_grid_worker(w) for w in work]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(_grid_worker, work))
