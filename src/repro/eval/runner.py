"""Compile -> simulate -> verify -> measure, for one kernel and config.

The runner is the reproduction of the paper's evaluation loop: generate
the circuit (Dynamatic/LSQ/PreVV), simulate it cycle-accurately
(ModelSim's role), check the final memory state against the interpreter
golden run (the C++ reference), and attach the area/timing estimates
(Vivado's role).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..compile import BuildResult, compile_function
from ..config import HardwareConfig
from ..dataflow import Simulator
from ..ir import run_golden


@dataclass
class RunResult:
    """Everything measured for one (kernel, config) evaluation point."""

    kernel: str
    config: HardwareConfig
    cycles: int
    verified: bool
    memory: Dict[str, List[int]]
    golden: Dict[str, List[int]]
    squashes: int = 0
    squashed_iterations: int = 0
    benign_reorders: int = 0
    violations_by_kind: Dict[str, int] = field(default_factory=dict)
    fake_tokens: int = 0
    queue_max_occupancy: int = 0
    queue_full_stalls: int = 0
    lsq_alloc_stalls: int = 0
    transfers: int = 0
    build: Optional[BuildResult] = None

    @property
    def mismatch_summary(self) -> str:
        lines = []
        for name in sorted(self.golden):
            got, want = self.memory.get(name), self.golden[name]
            if got != want:
                diffs = [
                    f"[{i}] got {g} want {w}"
                    for i, (g, w) in enumerate(zip(got, want))
                    if g != w
                ][:5]
                lines.append(f"{name}: " + "; ".join(diffs))
        return "\n".join(lines) or "(no mismatch)"


def make_done_condition(build: BuildResult):
    """Completion: exit token seen and the circuit fully quiescent.

    Quiescence means no channel offers a token and no component has
    internal work pending — i.e. every store has drained through its
    memory interface and every PreVV packet has been validated/retired.
    """

    def done() -> bool:
        if build.exit_sink.count < 1:
            return False
        if any(c.valid for c in build.circuit.channels):
            return False
        if any(c.is_busy for c in build.circuit.components):
            return False
        for unit in build.units:
            if unit.queue.occupancy or any(unit._pending):
                return False
        if build.units and build.memory.log_length:
            return False
        return True

    return done


def run_kernel(
    kernel,
    config: HardwareConfig,
    max_cycles: int = 2_000_000,
    keep_build: bool = False,
) -> RunResult:
    """Evaluate one kernel (a :class:`repro.kernels.Kernel`) under ``config``."""
    fn = kernel.build_ir()
    golden = run_golden(fn, args=kernel.args, memory=kernel.memory_init)
    build = compile_function(fn, config, args=kernel.args)
    build.memory.initialize(kernel.memory_init)

    sim = Simulator(build.circuit, max_cycles=max_cycles)
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    sim.run(make_done_condition(build))

    final = build.memory.snapshot()
    verified = all(
        final.get(name) == values for name, values in golden.memory.items()
    )

    result = RunResult(
        kernel=kernel.name,
        config=config,
        cycles=sim.stats.cycles,
        verified=verified,
        memory=final,
        golden=golden.memory,
        transfers=sim.stats.transfers,
        build=build if keep_build else None,
    )
    if build.squash_controller is not None:
        ctrl = build.squash_controller
        result.squashes = ctrl.squashes
        result.squashed_iterations = ctrl.squashed_iterations
    for unit in build.units:
        result.benign_reorders += unit.benign_reorders
        result.fake_tokens += unit.fake_tokens
        result.queue_max_occupancy = max(
            result.queue_max_occupancy, unit.queue.max_occupancy
        )
        result.queue_full_stalls += unit.queue.full_stalls
        for kind, count in unit.violations_by_kind.items():
            result.violations_by_kind[kind] = (
                result.violations_by_kind.get(kind, 0) + count
            )
    for lsq in build.lsqs:
        result.lsq_alloc_stalls += lsq.alloc_stalls
    return result
