"""Compile -> simulate -> verify -> measure, for one kernel and config.

The runner is the reproduction of the paper's evaluation loop: generate
the circuit (Dynamatic/LSQ/PreVV), simulate it cycle-accurately
(ModelSim's role), check the final memory state against the interpreter
golden run (the C++ reference), and attach the area/timing estimates
(Vivado's role).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..compile import BuildResult, compile_function
from ..config import HardwareConfig
from ..dataflow import make_simulator
from ..ir import run_golden


@dataclass
class RunResult:
    """Everything measured for one (kernel, config) evaluation point."""

    kernel: str
    config: HardwareConfig
    cycles: int
    verified: bool
    memory: Dict[str, List[int]]
    golden: Dict[str, List[int]]
    squashes: int = 0
    squashed_iterations: int = 0
    benign_reorders: int = 0
    violations_by_kind: Dict[str, int] = field(default_factory=dict)
    fake_tokens: int = 0
    queue_max_occupancy: int = 0
    queue_full_stalls: int = 0
    lsq_alloc_stalls: int = 0
    transfers: int = 0
    #: simulation engine actually used ("compiled", "incremental", ...);
    #: may differ from the requested engine when the compiler declines.
    engine: str = ""
    build: Optional[BuildResult] = None

    @property
    def mismatch_summary(self) -> str:
        lines = []
        for name in sorted(self.golden):
            got, want = self.memory.get(name), self.golden[name]
            if got != want:
                diffs = [
                    f"[{i}] got {g} want {w}"
                    for i, (g, w) in enumerate(zip(got, want))
                    if g != w
                ][:5]
                lines.append(f"{name}: " + "; ".join(diffs))
        return "\n".join(lines) or "(no mismatch)"


def make_done_condition(build: BuildResult):
    """Completion: exit token seen and the circuit fully quiescent.

    Quiescence means no channel offers a token and no component has
    internal work pending — i.e. every store has drained through its
    memory interface and every PreVV packet has been validated/retired.
    """

    def done() -> bool:
        if build.exit_sink.count < 1:
            return False
        if any(c.valid for c in build.circuit.channels):
            return False
        if any(c.is_busy for c in build.circuit.components):
            return False
        for unit in build.units:
            if unit.queue.occupancy or unit.has_pending:
                return False
        if build.units and build.memory.log_length:
            return False
        return True

    # Split variant for the compiled engine's unsynchronized run loop:
    # the channel scan is replaced by the step function's own any-valid
    # flag, ``pre`` gates the expensive ``post`` scan on the cheap exit
    # check.  Both read only component/subsystem state, never channels.
    def pre() -> bool:
        return build.exit_sink.count >= 1

    def post() -> bool:
        if any(c.is_busy for c in build.circuit.components):
            return False
        for unit in build.units:
            if unit.queue.occupancy or unit.has_pending:
                return False
        if build.units and build.memory.log_length:
            return False
        return True

    done.split = (pre, post)
    return done


def _prepare(kernel, config: HardwareConfig):
    """Build one evaluation point up to (but not including) simulation.

    Returns ``(golden, build)``: the interpreter golden run and the
    compiled circuit with memory initialized — everything a simulator
    (scalar or one lane of a vector batch) needs to start.
    """
    fn = kernel.build_ir()
    golden = run_golden(fn, args=kernel.args, memory=kernel.memory_init)
    build = compile_function(fn, config, args=kernel.args)
    build.memory.initialize(kernel.memory_init)
    return golden, build


def _finalize(
    kernel,
    config: HardwareConfig,
    golden,
    build: BuildResult,
    cycles: int,
    transfers: int,
    engine: str,
    keep_build: bool = False,
) -> RunResult:
    """Collect a finished simulation into a :class:`RunResult`."""
    final = build.memory.snapshot()
    verified = all(
        final.get(name) == values for name, values in golden.memory.items()
    )
    result = RunResult(
        kernel=kernel.name,
        config=config,
        cycles=cycles,
        verified=verified,
        memory=final,
        golden=golden.memory,
        transfers=transfers,
        engine=engine,
        build=build if keep_build else None,
    )
    if build.squash_controller is not None:
        ctrl = build.squash_controller
        result.squashes = ctrl.squashes
        result.squashed_iterations = ctrl.squashed_iterations
    for unit in build.units:
        result.benign_reorders += unit.benign_reorders
        result.fake_tokens += unit.fake_tokens
        result.queue_max_occupancy = max(
            result.queue_max_occupancy, unit.queue.max_occupancy
        )
        result.queue_full_stalls += unit.queue.full_stalls
        for kind, count in unit.violations_by_kind.items():
            result.violations_by_kind[kind] = (
                result.violations_by_kind.get(kind, 0) + count
            )
    for lsq in build.lsqs:
        result.lsq_alloc_stalls += lsq.alloc_stalls
    return result


def run_kernel(
    kernel,
    config: HardwareConfig,
    max_cycles: int = 2_000_000,
    keep_build: bool = False,
    trace=None,
    collect_stats: Optional[bool] = None,
    engine: str = "auto",
) -> RunResult:
    """Evaluate one kernel (a :class:`repro.kernels.Kernel`) under ``config``.

    Per-channel statistics default to *off* (the simulator's stat-free
    fast path) — nothing in the evaluation tables reads them.  Passing a
    ``trace`` turns them back on so captured waveforms stay complete;
    ``collect_stats`` overrides either way.  ``engine`` selects the
    simulation engine (see :func:`repro.dataflow.make_simulator`);
    :attr:`RunResult.engine` records the engine actually used, which may
    be an interpreted fallback when the compiler declines the circuit.
    """
    golden, build = _prepare(kernel, config)

    if collect_stats is None:
        collect_stats = trace is not None
    sim = make_simulator(build.circuit, engine=engine,
                         max_cycles=max_cycles, trace=trace,
                         collect_stats=collect_stats)
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    sim.run(make_done_condition(build))

    return _finalize(
        kernel, config, golden, build,
        cycles=sim.stats.cycles, transfers=sim.stats.transfers,
        engine=sim.engine_name, keep_build=keep_build,
    )


# ----------------------------------------------------------------------
# Batched execution of one compiled circuit structure
# ----------------------------------------------------------------------
def run_batch(
    kernels,
    config: HardwareConfig,
    max_cycles: int = 2_000_000,
    engine: str = "compiled",
) -> List[RunResult]:
    """Evaluate many kernel variants under one config in one process.

    The intended use is sweeping *inputs* of a fixed kernel — different
    sizes, seeds or initial memories produce circuits with the same
    structure (sizes flow through constants and memory contents, not
    through the netlist).  Inputs are grouped by ``structural_key``
    internally, so callers may freely mix structures; results always
    come back in input order.

    * ``engine="vector"``: lanes whose *content* is identical (same
      kernel name, args, initial memory and config — a deterministic
      simulation requested more than once, the repeated-request shape
      ROADMAP's simulation service caches) are deduplicated: one
      representative lane is simulated and its result is copied to the
      duplicates.  The remaining distinct lanes of every
      same-structure group run as one lockstep
      :class:`~repro.dataflow.vector.VectorBatch` — one engine sweep
      advances all lanes of the group at once.  Groups the vector
      engine declines fall back to sequential compiled runs; per-lane
      results are bit-identical in every path.
    * Scalar engines: sequential runs, no dedup; the per-structure plan
      cache already makes every compiled run after a group's first skip
      compilation entirely (``tests/dataflow/test_codegen.py`` pins one
      cache miss per structure).
    """
    # The vector path indexes and re-measures ``kernels`` several times
    # (dedup scan, prep, demux), so materialize iterators up front —
    # callers may hand in a generator expression.
    kernels = list(kernels)
    if engine != "vector":
        return [
            run_kernel(k, config, max_cycles=max_cycles, engine=engine)
            for k in kernels
        ]

    from ..dataflow.codegen import structural_key
    from ..dataflow.vector import VectorBatch
    from ..errors import VectorUnsupportedError

    def content_key(kernel):
        return (
            kernel.name,
            tuple(sorted(kernel.args.items())),
            tuple(
                (name, tuple(values))
                for name, values in sorted(kernel.memory_init.items())
            ),
            repr(config),
        )

    # Content dedup: only the first lane of each identical-content run
    # is prepared and simulated; `dups` maps result index -> source.
    reps: Dict[tuple, int] = {}
    dups: Dict[int, int] = {}
    lead: List[int] = []
    for idx, k in enumerate(kernels):
        try:
            key = content_key(k)
        except TypeError:  # unhashable arg value: treat lane as unique
            key = ("__lane__", idx)
        if key in reps:
            dups[idx] = reps[key]
        else:
            reps[key] = idx
            lead.append(idx)

    preps = [(kernels[i], *_prepare(kernels[i], config)) for i in lead]
    groups: Dict[tuple, List[int]] = {}
    for idx, (_k, _golden, build) in enumerate(preps):
        groups.setdefault(structural_key(build.circuit), []).append(idx)

    results: List[Optional[RunResult]] = [None] * len(preps)
    for lanes in groups.values():
        try:
            batch = VectorBatch(
                [preps[i][2].circuit for i in lanes],
                max_cycles=max_cycles,
            )
            for lane, i in enumerate(lanes):
                ctrl = preps[i][2].squash_controller
                if ctrl is not None:
                    batch.add_hook(lane, ctrl.end_of_cycle)
            stats = batch.run(
                [make_done_condition(preps[i][2]) for i in lanes]
            )
        except VectorUnsupportedError:
            for i in lanes:
                kernel, golden, build = preps[i]
                sim = make_simulator(build.circuit, engine="compiled",
                                     max_cycles=max_cycles)
                if build.squash_controller is not None:
                    sim.end_of_cycle_hooks.append(
                        build.squash_controller.end_of_cycle
                    )
                sim.run(make_done_condition(build))
                results[i] = _finalize(
                    kernel, config, golden, build,
                    cycles=sim.stats.cycles,
                    transfers=sim.stats.transfers,
                    engine=sim.engine_name,
                )
            continue
        for lane, i in enumerate(lanes):
            kernel, golden, build = preps[i]
            results[i] = _finalize(
                kernel, config, golden, build,
                cycles=stats[lane].cycles,
                transfers=stats[lane].transfers,
                engine="vector",
            )

    # Demux back to input order, materializing deduplicated lanes as
    # copies of their representative's result (results are value
    # objects; the dicts are copied so callers may mutate freely).
    prep_of = {orig: j for j, orig in enumerate(lead)}
    out: List[RunResult] = []
    for idx in range(len(kernels)):
        src = results[prep_of[dups.get(idx, idx)]]
        if idx in dups:
            src = replace(
                src,
                memory={k: list(v) for k, v in src.memory.items()},
                violations_by_kind=dict(src.violations_by_kind),
            )
        out.append(src)
    return out


# ----------------------------------------------------------------------
# Grid evaluation (all kernels x all configs), optionally in parallel
# ----------------------------------------------------------------------
def _grid_worker(point):
    """Top-level (picklable) worker: one (kernel, config) point.

    Returns ``(RunResult, clock period ns)``.  The build itself stays in
    the worker — circuits hold operator lambdas and are not picklable —
    so the clock period the tables need is computed here.
    """
    kernel, config, max_cycles, engine = point
    from ..area import clock_period

    result = run_kernel(kernel, config, max_cycles=max_cycles,
                        keep_build=True, engine=engine)
    period = clock_period(result.build.circuit)
    result.build = None
    return result, period


def run_grid(
    points,
    max_cycles: int = 2_000_000,
    jobs: int = 1,
    engine: str = "auto",
) -> List:
    """Evaluate ``points`` (``(kernel, config)`` pairs) -> results + periods.

    With ``jobs > 1`` the points are distributed over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; results come back
    in input order either way, so reports are deterministic regardless
    of scheduling.  ``engine`` is forwarded to every point (each worker
    process compiles at most once per circuit structure thanks to the
    per-process plan cache).
    """
    work = [(kernel, config, max_cycles, engine) for kernel, config in points]
    if jobs <= 1 or len(work) <= 1:
        return [_grid_worker(w) for w in work]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(_grid_worker, work))
