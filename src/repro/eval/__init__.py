"""Evaluation harness: configs, runner, paper tables and figures."""

from .configs import (
    ALL_CONFIGS,
    BY_NAME,
    DYNAMATIC,
    FAST_LSQ,
    PREVV16,
    PREVV64,
    prevv_with_depth,
)
from .runner import RunResult, make_done_condition, run_grid, run_kernel
from .stats import geomean, geomean_delta, percent_delta
from .tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    Table1Row,
    Table2Row,
    format_table1,
    format_table2,
    table1,
    table2,
)
from .figures import (
    Fig1Row,
    Fig7Series,
    fig1_lsq_share,
    fig7_normalized,
    format_fig1,
    format_fig7,
)

__all__ = [
    "ALL_CONFIGS",
    "BY_NAME",
    "DYNAMATIC",
    "FAST_LSQ",
    "PREVV16",
    "PREVV64",
    "prevv_with_depth",
    "RunResult",
    "make_done_condition",
    "run_grid",
    "run_kernel",
    "geomean",
    "geomean_delta",
    "percent_delta",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "Table1Row",
    "Table2Row",
    "format_table1",
    "format_table2",
    "table1",
    "table2",
    "Fig1Row",
    "Fig7Series",
    "fig1_lsq_share",
    "fig7_normalized",
    "format_fig1",
    "format_fig7",
]
