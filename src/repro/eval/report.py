"""Markdown report generation: one document with every regenerated artefact.

``python -m repro.eval.report [out.md]`` writes a self-contained markdown
report with Fig. 1, Table I, Fig. 7 and Table II next to the paper's
numbers — the automated counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import time
from typing import Optional, Sequence

from .figures import fig1_lsq_share, fig7_normalized, format_fig1, format_fig7
from .tables import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    format_table1,
    format_table2,
    table1,
    table2,
)


def generate_report(
    kernels: Optional[Sequence[str]] = None,
    include_timing: bool = True,
    jobs: int = 1,
) -> str:
    """Regenerate every artefact and return one markdown document.

    ``include_timing=False`` skips Table II (the only part that needs
    cycle-accurate simulation) for a fast area-only report; ``jobs``
    fans Table II's simulations out over worker processes.
    """
    sections = ["# PreVV reproduction report", ""]
    started = time.strftime("%Y-%m-%d %H:%M:%S")
    sections.append(f"Generated {started}.")
    sections.append("")

    sections.append("## Fig. 1 — LSQ resource share (plain Dynamatic)")
    sections.append("```")
    sections.append(format_fig1(fig1_lsq_share(kernels)))
    sections.append("```")
    sections.append("")

    sections.append("## Table I — resource usage")
    sections.append("```")
    sections.append(format_table1(table1(kernels)))
    sections.append("```")
    sections.append("Paper cells:")
    sections.append("```")
    for kernel, cells in PAPER_TABLE1.items():
        row = "  ".join(
            f"{cfg}: LUT={lut} FF={ff}" for cfg, (lut, ff) in cells.items()
        )
        sections.append(f"{kernel:12s} {row}")
    sections.append("```")
    sections.append("")

    sections.append("## Fig. 7 — resources normalized to Dynamatic")
    sections.append("```")
    sections.append(format_fig7(fig7_normalized(kernels)))
    sections.append("```")
    sections.append("")

    if include_timing:
        sections.append("## Table II — timing")
        sections.append("```")
        sections.append(format_table2(table2(kernels, jobs=jobs)))
        sections.append("```")
        sections.append("Paper cells:")
        sections.append("```")
        for kernel, cells in PAPER_TABLE2.items():
            row = "  ".join(
                f"{cfg}: cyc={c} CP={p} us={u}"
                for cfg, (c, p, u) in cells.items()
            )
            sections.append(f"{kernel:12s} {row}")
        sections.append("```")
        sections.append("")

    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval.report",
        description="Regenerate the full reproduction report.",
    )
    parser.add_argument("out", nargs="?", default="prevv_report.md",
                        help="output markdown path")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for Table II simulation")
    parser.add_argument("--no-timing", action="store_true",
                        help="skip Table II (no simulation)")
    opts = parser.parse_args(argv)
    report = generate_report(include_timing=not opts.no_timing,
                             jobs=opts.jobs)
    with open(opts.out, "w") as handle:
        handle.write(report)
    print(f"wrote {opts.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
