"""Regeneration of the paper's Table I (resources) and Table II (timing).

Each function compiles+measures (Table I needs no simulation; Table II
simulates) and returns structured rows plus a formatter that prints the
same columns the paper prints, including the ``vs. [8]`` percentage
columns and the geomean row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..area import circuit_report, clock_period, execution_time_us
from ..compile import compile_function
from ..config import HardwareConfig
from ..kernels import PAPER_KERNELS, get_kernel
from .configs import ALL_CONFIGS
from .runner import run_grid
from .stats import geomean, percent_delta

#: paper values for side-by-side reporting in EXPERIMENTS.md
PAPER_TABLE1 = {
    # kernel: {config: (LUT, FF)}
    "polyn_mult": {"dynamatic": (20086, 2009), "fast_lsq": (21567, 2101),
                   "prevv16": (14564, 1251), "prevv64": (17859, 1785)},
    "2mm": {"dynamatic": (39330, 8918), "fast_lsq": (22190, 8715),
            "prevv16": (10487, 4014), "prevv64": (14518, 4687)},
    "3mm": {"dynamatic": (57212, 9771), "fast_lsq": (39742, 7661),
            "prevv16": (24157, 3847), "prevv64": (27842, 4494)},
    "gaussian": {"dynamatic": (18383, 4339), "fast_lsq": (19665, 4620),
                 "prevv16": (10687, 2451), "prevv64": (13697, 2845)},
    "triangular": {"dynamatic": (19830, 5921), "fast_lsq": (20581, 6078),
                   "prevv16": (9814, 3951), "prevv64": (15648, 4589)},
}

PAPER_TABLE2 = {
    # kernel: {config: (cycles, CP ns, exec us)}
    "polyn_mult": {"dynamatic": (2701, 7.26, 19.61), "fast_lsq": (2401, 7.24, 17.38),
                   "prevv16": (2512, 7.2, 18.09), "prevv64": (2314, 7.2, 16.66)},
    "2mm": {"dynamatic": (3231, 7.80, 25.20), "fast_lsq": (2498, 7.77, 19.41),
            "prevv16": (2789, 7.68, 21.42), "prevv64": (2471, 7.63, 18.85)},
    "3mm": {"dynamatic": (4382, 8.29, 36.33), "fast_lsq": (2498, 7.78, 19.43),
            "prevv16": (2789, 7.7, 21.48), "prevv64": (2471, 7.72, 19.08)},
    "gaussian": {"dynamatic": (7651, 8.16, 62.43), "fast_lsq": (6871, 8.16, 56.07),
                 "prevv16": (8754, 8.06, 70.56), "prevv64": (6681, 8.06, 53.85)},
    "triangular": {"dynamatic": (9895, 9.18, 90.84), "fast_lsq": (9892, 7.36, 72.81),
                   "prevv16": (9912, 7.31, 72.46), "prevv64": (9812, 7.31, 71.73)},
}


@dataclass
class Table1Row:
    kernel: str
    luts: Dict[str, float] = field(default_factory=dict)
    ffs: Dict[str, float] = field(default_factory=dict)

    def delta(self, metric: str, config: str, base: str = "fast_lsq") -> float:
        values = getattr(self, metric)
        return percent_delta(values[config], values[base])


@dataclass
class Table2Row:
    kernel: str
    cycles: Dict[str, int] = field(default_factory=dict)
    period: Dict[str, float] = field(default_factory=dict)
    exec_us: Dict[str, float] = field(default_factory=dict)
    verified: Dict[str, bool] = field(default_factory=dict)

    def delta(self, config: str, base: str = "fast_lsq") -> float:
        return percent_delta(self.exec_us[config], self.exec_us[base])


def table1(
    kernels: Optional[Sequence[str]] = None,
    configs: Optional[Sequence[HardwareConfig]] = None,
) -> List[Table1Row]:
    """Resource usage (Table I) for every kernel under every config."""
    rows = []
    for kname in kernels or PAPER_KERNELS:
        row = Table1Row(kname)
        for cfg in configs or ALL_CONFIGS:
            kernel = get_kernel(kname)
            build = compile_function(kernel.build_ir(), cfg, args=kernel.args)
            report = circuit_report(build.circuit)
            row.luts[cfg.name] = round(report.total.luts)
            row.ffs[cfg.name] = round(report.total.ffs)
        rows.append(row)
    return rows


def table2(
    kernels: Optional[Sequence[str]] = None,
    configs: Optional[Sequence[HardwareConfig]] = None,
    max_cycles: int = 2_000_000,
    jobs: int = 1,
) -> List[Table2Row]:
    """Timing (Table II): simulated cycles x modelled clock period.

    ``jobs > 1`` fans the (kernel, config) grid out over worker
    processes; the rows are identical to a serial run (results are
    gathered in input order).
    """
    knames = list(kernels or PAPER_KERNELS)
    cfgs = list(configs or ALL_CONFIGS)
    points = [(get_kernel(kname), cfg) for kname in knames for cfg in cfgs]
    outcomes = run_grid(points, max_cycles=max_cycles, jobs=jobs)
    rows = []
    for i, kname in enumerate(knames):
        row = Table2Row(kname)
        for j, cfg in enumerate(cfgs):
            result, period = outcomes[i * len(cfgs) + j]
            row.cycles[cfg.name] = result.cycles
            row.period[cfg.name] = round(period, 2)
            row.exec_us[cfg.name] = round(
                execution_time_us(result.cycles, period), 2
            )
            row.verified[cfg.name] = result.verified
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def _geomean_deltas(rows, metric: str, config: str, base: str = "fast_lsq"):
    ratios = [
        getattr(r, metric)[config] / getattr(r, metric)[base] for r in rows
    ]
    return 100.0 * (geomean(ratios) - 1.0)


def format_table1(rows: List[Table1Row]) -> str:
    configs = ["dynamatic", "fast_lsq", "prevv16", "prevv64"]
    header = (
        f"{'Benchmark':<12}"
        + "".join(f"{c + '.LUT':>12}" for c in configs)
        + f"{'P16vs[8]':>10}{'P64vs[8]':>10}"
        + "".join(f"{c + '.FF':>12}" for c in configs)
        + f"{'P16vs[8]':>10}{'P64vs[8]':>10}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row.kernel:<12}"
            + "".join(f"{row.luts[c]:>12.0f}" for c in configs)
            + f"{row.delta('luts', 'prevv16'):>+10.2f}"
            + f"{row.delta('luts', 'prevv64'):>+10.2f}"
            + "".join(f"{row.ffs[c]:>12.0f}" for c in configs)
            + f"{row.delta('ffs', 'prevv16'):>+10.2f}"
            + f"{row.delta('ffs', 'prevv64'):>+10.2f}"
        )
    lines.append(
        f"{'geomean':<12}" + " " * 48
        + f"{_geomean_deltas(rows, 'luts', 'prevv16'):>+10.2f}"
        + f"{_geomean_deltas(rows, 'luts', 'prevv64'):>+10.2f}"
        + " " * 48
        + f"{_geomean_deltas(rows, 'ffs', 'prevv16'):>+10.2f}"
        + f"{_geomean_deltas(rows, 'ffs', 'prevv64'):>+10.2f}"
    )
    return "\n".join(lines)


def format_table2(rows: List[Table2Row]) -> str:
    configs = ["dynamatic", "fast_lsq", "prevv16", "prevv64"]
    header = (
        f"{'Benchmark':<12}"
        + "".join(f"{c + '.cyc':>12}" for c in configs)
        + "".join(f"{c + '.CP':>10}" for c in configs)
        + "".join(f"{c + '.us':>10}" for c in configs)
        + f"{'P16vs[8]':>10}{'P64vs[8]':>10}{'ok':>4}"
    )
    lines = [header]
    for row in rows:
        ok = "y" if all(row.verified.values()) else "N"
        lines.append(
            f"{row.kernel:<12}"
            + "".join(f"{row.cycles[c]:>12d}" for c in configs)
            + "".join(f"{row.period[c]:>10.2f}" for c in configs)
            + "".join(f"{row.exec_us[c]:>10.2f}" for c in configs)
            + f"{row.delta('prevv16'):>+10.2f}{row.delta('prevv64'):>+10.2f}"
            + f"{ok:>4}"
        )
    lines.append(
        f"{'geomean':<12}" + " " * 128
        + f"{_geomean_deltas(rows, 'exec_us', 'prevv16'):>+10.2f}"
        + f"{_geomean_deltas(rows, 'exec_us', 'prevv64'):>+10.2f}"
    )
    return "\n".join(lines)
