"""Small statistics helpers for the evaluation tables."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's 'goemean' rows)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent_delta(new: float, base: float) -> float:
    """Relative change in percent (negative = reduction), as the paper
    reports 'PreVV16 vs. [8]' columns."""
    if base == 0:
        raise ValueError("baseline is zero")
    return 100.0 * (new - base) / base


def geomean_delta(pairs: Iterable) -> float:
    """Geomean of new/base ratios expressed as a percent delta."""
    ratios = [new / base for new, base in pairs]
    return 100.0 * (geomean(ratios) - 1.0)
