"""LSQ depth selection in the style of Liu et al. [16].

The related work the paper positions against: rather than removing the
LSQ, [16] searches for the smallest queue depths that preserve circuit
throughput.  We provide the same knob for ablation studies: sweep LSQ
depths on a kernel, find the knee of the cycles-vs-depth curve, and
report the area saved relative to a default 16+16 queue — so the
benchmarks can contrast "shrink the LSQ" with "replace the LSQ".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..area import circuit_report
from ..config import HardwareConfig


@dataclass
class DepthPoint:
    depth: int
    cycles: int
    luts: float
    ffs: float


@dataclass
class LsqSizingResult:
    """Outcome of a depth sweep: the cheapest depth preserving throughput."""

    points: List[DepthPoint] = field(default_factory=list)
    chosen_depth: Optional[int] = None
    baseline_cycles: Optional[int] = None

    def summary(self) -> str:
        lines = [f"{'depth':>6}{'cycles':>9}{'LUT':>9}{'FF':>8}"]
        for p in self.points:
            marker = "  <- chosen" if p.depth == self.chosen_depth else ""
            lines.append(
                f"{p.depth:>6}{p.cycles:>9}{p.luts:>9.0f}{p.ffs:>8.0f}{marker}"
            )
        return "\n".join(lines)


def size_lsq(
    kernel,
    depths: Sequence[int] = (2, 4, 8, 16, 32),
    style: str = "fast",
    slack: float = 0.02,
    max_cycles: int = 2_000_000,
) -> LsqSizingResult:
    """Sweep LSQ depths on ``kernel`` and pick the cheapest matched one.

    ``slack`` is the tolerated cycle-count increase over the deepest
    configuration (the throughput-preserving criterion of [16]).
    """
    from ..eval.runner import run_kernel  # local import: avoids a cycle

    result = LsqSizingResult()
    for depth in sorted(depths):
        config = HardwareConfig(
            name=f"{style}{depth}",
            memory_style=style,
            lsq_depth_loads=depth,
            lsq_depth_stores=depth,
        )
        run = run_kernel(kernel, config, max_cycles=max_cycles,
                         keep_build=True)
        if not run.verified:
            raise AssertionError(
                f"{kernel.name} wrong under LSQ depth {depth}"
            )
        report = circuit_report(run.build.circuit)
        result.points.append(
            DepthPoint(depth, run.cycles, report.total.luts, report.total.ffs)
        )
    result.baseline_cycles = result.points[-1].cycles
    threshold = result.baseline_cycles * (1.0 + slack)
    for point in result.points:
        if point.cycles <= threshold:
            result.chosen_depth = point.depth
            break
    return result
