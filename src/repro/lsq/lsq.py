"""Load-store queue baselines.

:class:`LoadStoreQueue` reproduces the Dynamatic-style LSQ of Josipović
et al. [4][15]: a **group allocator** receives one control token per basic
-block execution and allocates that block's memory operations *in program
order* (the order stored in an on-chip ROM); loads then search older
stores associatively (wait on unknown store addresses, forward matching
data), and stores commit in order from the head.

The queue-full condition stalls group allocation, which backpressures the
basic block's control token — the classic Dynamatic II bottleneck that
Fig. 1 traces to the LSQ.

The fast-allocation variant of Elakhras et al. [8] ("straight to the
queue") is the same queue with a dedicated low-latency allocation network:
modelled by ``alloc_latency=1`` (vs. several cycles through the control
network for [15]) plus extra allocator area in the cost library.  Use
:func:`make_dynamatic_lsq` / :func:`make_fast_lsq`.

Ports:

* ``group{g}`` — control-token input per allocation group (basic block);
* ``ld{i}_addr`` / ``ld{i}_data`` — per static load;
* ``st{j}_addr`` / ``st{j}_data`` — per static store.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..dataflow.component import Component
from ..dataflow.token import Token, combine
from ..errors import QueueOverflowError
from ..memory.ram import Memory


@dataclass
class GroupSpec:
    """One allocation group: the program-ordered ops of a basic block [4]."""

    ops: List[Tuple[str, int]]  # ("load"|"store", port index) in program order

    @property
    def n_loads(self) -> int:
        return sum(1 for kind, _ in self.ops if kind == "load")

    @property
    def n_stores(self) -> int:
        return len(self.ops) - self.n_loads


class _Entry:
    __slots__ = (
        "kind", "port", "port_seq", "addr", "data", "addr_token", "issued",
        "responded", "committed", "forward_from",
    )

    def __init__(self, kind: str, port: int, port_seq: int = 0):
        self.kind = kind
        self.port = port
        self.port_seq = port_seq
        self.addr: Optional[int] = None
        self.data: Optional[Token] = None
        self.addr_token: Optional[Token] = None
        self.issued = False
        self.responded = False
        self.committed = False
        self.forward_from: Optional["_Entry"] = None

    @property
    def done(self) -> bool:
        if self.kind == "load":
            return self.responded
        return self.committed


class LoadStoreQueue(Component):
    """Ordered load-store queue with group allocation."""

    resource_class = "lsq"
    # Allocation/acceptance readys derive from queue occupancy and input
    # valids; load responses come from entry state — no output-ready reads.
    observes_output_ready = False
    # Input valids steer only allocation/acceptance (ready) decisions;
    # load-response valids are pure entry state — no same-cycle carry.
    forwards_valid = False
    scheduling_contract_audited = True

    def __init__(
        self,
        name: str,
        memory: Memory,
        array: str,
        n_loads: int,
        n_stores: int,
        groups: List[GroupSpec],
        depth_loads: int = 16,
        depth_stores: int = 16,
        alloc_latency: int = 3,
        load_latency: int = 1,
        loads_per_cycle: int = 1,
        stores_per_cycle: int = 1,
        style: str = "dynamatic",
        addr_width: int = 32,
        data_width: int = 32,
    ):
        super().__init__(name)
        self.memory = memory
        self.array = array
        self.n_loads = n_loads
        self.n_stores = n_stores
        self.groups = groups
        self.depth_loads = depth_loads
        self.depth_stores = depth_stores
        self.alloc_latency = max(1, alloc_latency)
        self.load_latency = max(1, load_latency)
        self.loads_per_cycle = loads_per_cycle
        self.stores_per_cycle = stores_per_cycle
        self.style = style
        self.addr_width = addr_width
        self.data_width = data_width

        self._order: List[_Entry] = []  # program order, head at index 0
        self._pending_allocs: Deque[List] = deque()  # [countdown, group_idx]
        # Loads may *issue* out of order, but each port's responses must be
        # delivered in program order (the elastic datapath pairs a port's
        # k-th response with its k-th request): a per-port reorder buffer
        # keyed by the entry's port sequence number.
        self._responses: Dict[int, Dict[int, List]] = {
            i: {} for i in range(n_loads)
        }
        self._next_response: List[int] = [0] * n_loads
        self._port_alloc_count: Dict[tuple, int] = {}
        # Statistics
        self.committed_stores = 0
        self.completed_loads = 0
        self.alloc_stalls = 0
        self.max_load_occupancy = 0
        self.max_store_occupancy = 0
        self.forwarded_loads = 0
        self._group_chs = None  # port channel lists, bound after wiring

    # ------------------------------------------------------------------
    # Occupancy bookkeeping (reserved = allocated + in-flight allocations)
    # ------------------------------------------------------------------
    def _reserved(self) -> Tuple[int, int]:
        loads = sum(1 for e in self._order if e.kind == "load")
        stores = len(self._order) - loads
        for _, group_idx in self._pending_allocs:
            loads += self.groups[group_idx].n_loads
            stores += self.groups[group_idx].n_stores
        return loads, stores

    def _can_accept_group(self, group_idx: int) -> bool:
        loads, stores = self._reserved()
        group = self.groups[group_idx]
        return (
            loads + group.n_loads <= self.depth_loads
            and stores + group.n_stores <= self.depth_stores
        )

    # ------------------------------------------------------------------
    # Elastic interface
    # ------------------------------------------------------------------
    def _bind(self):
        self._group_chs = [
            self.inputs[f"group{g}"] for g in range(len(self.groups))
        ]
        self._ld_addr_chs = [
            self.inputs[f"ld{i}_addr"] for i in range(self.n_loads)
        ]
        self._ld_data_chs = [
            self.outputs[f"ld{i}_data"] for i in range(self.n_loads)
        ]
        self._st_addr_chs = [
            self.inputs[f"st{j}_addr"] for j in range(self.n_stores)
        ]
        self._st_data_chs = [
            self.inputs[f"st{j}_data"] for j in range(self.n_stores)
        ]
        return self._group_chs

    def propagate(self) -> None:
        groups = self._group_chs
        if groups is None:
            groups = self._bind()
        for g, ch in enumerate(groups):
            if ch.valid and self._can_accept_group(g):
                ch.ready = True
        # Address/data acceptance: ready when an allocated entry awaits it.
        for i in range(self.n_loads):
            if self._awaiting_addr("load", i) is not None:
                self._ld_addr_chs[i].ready = True
        for j in range(self.n_stores):
            if self._awaiting_addr("store", j) is not None:
                self._st_addr_chs[j].ready = True
            if self._awaiting_data(j) is not None:
                self._st_data_chs[j].ready = True
        # Load responses, strictly in per-port program order.
        for i in range(self.n_loads):
            item = self._responses[i].get(self._next_response[i])
            if item is not None and item[0] <= 0:
                out_ch = self._ld_data_chs[i]
                out_ch.valid = True
                out_ch.data = item[1]

    def _awaiting_addr(self, kind: str, port: int) -> Optional[_Entry]:
        for entry in self._order:
            if entry.kind == kind and entry.port == port and entry.addr is None:
                return entry
        return None

    def _awaiting_data(self, port: int) -> Optional[_Entry]:
        for entry in self._order:
            if (
                entry.kind == "store"
                and entry.port == port
                and entry.data is None
            ):
                return entry
        return None

    # ------------------------------------------------------------------
    def tick(self):
        if self._group_chs is None:
            self._bind()
        # Anything in flight (or arriving this edge) may move internal
        # state the propagate above reads; a fully drained LSQ with no
        # fired inputs provably changes nothing — that is the cheap but
        # accurate change report the incremental engine needs.
        fired = any(
            ch.valid and ch.ready for ch in self.inputs.values()
        )
        changed = fired or self.is_busy
        self._tick_responses()
        self._tick_allocation()
        self._tick_port_fills()
        self._tick_issue_loads()
        self._tick_commit_stores()
        self._tick_retire()
        loads, stores = self._reserved()
        self.max_load_occupancy = max(self.max_load_occupancy, loads)
        self.max_store_occupancy = max(self.max_store_occupancy, stores)
        return changed

    def _tick_responses(self) -> None:
        for i in range(self.n_loads):
            head = self._next_response[i]
            item = self._responses[i].get(head)
            if (
                item is not None
                and item[0] <= 0
                and self._ld_data_chs[i].fires
            ):
                del self._responses[i][head]
                self._next_response[i] = head + 1
                self.completed_loads += 1
            for item in self._responses[i].values():
                if item[0] > 0:
                    item[0] -= 1

    def _tick_allocation(self) -> None:
        # Mature pending allocations.
        while self._pending_allocs and self._pending_allocs[0][0] <= 0:
            _, group_idx = self._pending_allocs.popleft()
            for kind, port in self.groups[group_idx].ops:
                key = (kind, port)
                seq = self._port_alloc_count.get(key, 0)
                self._port_alloc_count[key] = seq + 1
                self._order.append(_Entry(kind, port, seq))
        for item in self._pending_allocs:
            item[0] -= 1
        # Accept new group tokens.
        for g, ch in enumerate(self._group_chs):
            if ch.fires:
                self._pending_allocs.append([self.alloc_latency - 1, g])
            elif ch.valid:
                self.alloc_stalls += 1

    def _tick_port_fills(self) -> None:
        for i in range(self.n_loads):
            ch = self._ld_addr_chs[i]
            if ch.fires:
                entry = self._awaiting_addr("load", i)
                if entry is None:
                    raise QueueOverflowError(f"{self.name}: load addr w/o entry")
                entry.addr = int(ch.data.value)
                entry.addr_token = ch.data
        for j in range(self.n_stores):
            ch = self._st_addr_chs[j]
            if ch.fires:
                entry = self._awaiting_addr("store", j)
                if entry is None:
                    raise QueueOverflowError(f"{self.name}: store addr w/o entry")
                entry.addr = int(ch.data.value)
                entry.addr_token = ch.data
            dch = self._st_data_chs[j]
            if dch.fires:
                entry = self._awaiting_data(j)
                if entry is None:
                    raise QueueOverflowError(f"{self.name}: store data w/o entry")
                entry.data = dch.data

    def _tick_issue_loads(self) -> None:
        issued = 0
        for pos, entry in enumerate(self._order):
            if issued >= self.loads_per_cycle:
                break
            if entry.kind != "load" or entry.issued or entry.addr is None:
                continue
            older_stores = [
                e
                for e in self._order[:pos]
                if e.kind == "store" and not e.committed
            ]
            if any(e.addr is None for e in older_stores):
                continue  # unknown older address: must wait (associative search)
            matches = [e for e in older_stores if e.addr == entry.addr]
            if matches:
                source = matches[-1]
                if source.data is None:
                    continue  # true dependence, data not yet available
                value = source.data.value
                self.forwarded_loads += 1
                latency = 1
            else:
                value = self.memory.load(self.array, entry.addr)
                latency = self.load_latency
            entry.issued = True
            token = combine(value, entry.addr_token)
            self._responses[entry.port][entry.port_seq] = [latency - 1, token]
            issued += 1

    def _tick_commit_stores(self) -> None:
        committed = 0
        for pos, entry in enumerate(self._order):
            if committed >= self.stores_per_cycle:
                break
            if entry.kind == "load":
                if not entry.issued:
                    break  # stores commit strictly behind unissued older loads
                continue
            if entry.committed:
                continue
            if entry.addr is None or entry.data is None:
                break  # in-order commit: cannot skip ahead
            entry.committed = True
            self.memory.store(self.array, entry.addr, entry.data.value)
            self.committed_stores += 1
            committed += 1

    def _tick_retire(self) -> None:
        while self._order:
            head = self._order[0]
            if head.kind == "load":
                if not head.responded:
                    # A load retires once its response was delivered, i.e.
                    # the port's in-order delivery pointer passed it.
                    delivered = (
                        self._next_response[head.port] > head.port_seq
                    )
                    if head.issued and delivered:
                        head.responded = True
                    else:
                        break
            if head.done:
                self._order.pop(0)
            else:
                break

    @property
    def is_busy(self) -> bool:
        return bool(
            self._order
            or self._pending_allocs
            or any(self._responses[i] for i in self._responses)
        )

    def perf_model(self):
        # Matured responses park in unbounded queues while the consumer
        # stalls; like the memory controller, the LSQ therefore cannot
        # bound any token-flow cycle it sits on.
        return (1, None)

    @property
    def resource_params(self):
        return {
            "depth_loads": self.depth_loads,
            "depth_stores": self.depth_stores,
            "n_loads": max(1, self.n_loads),
            "n_stores": max(1, self.n_stores),
            "n_groups": max(1, len(self.groups)),
            "addr_width": self.addr_width,
            "data_width": self.data_width,
            "style": self.style,
        }


def make_dynamatic_lsq(name, memory, array, n_loads, n_stores, groups, **kw):
    """Plain Dynamatic LSQ [15]: slow allocation through the control net."""
    kw.setdefault("alloc_latency", 3)
    kw.setdefault("style", "dynamatic")
    return LoadStoreQueue(
        name, memory, array, n_loads, n_stores, groups, **kw
    )


def make_fast_lsq(name, memory, array, n_loads, n_stores, groups, **kw):
    """Fast-allocation LSQ [8]: straight-to-the-queue token delivery."""
    kw.setdefault("alloc_latency", 1)
    kw.setdefault("style", "fast")
    return LoadStoreQueue(
        name, memory, array, n_loads, n_stores, groups, **kw
    )
