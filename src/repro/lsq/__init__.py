"""LSQ baselines: plain Dynamatic [15] and fast-allocation [8] queues,
plus the depth-sizing ablation in the style of Liu et al. [16]."""

from .lsq import (
    GroupSpec,
    LoadStoreQueue,
    make_dynamatic_lsq,
    make_fast_lsq,
)
from .sizing import DepthPoint, LsqSizingResult, size_lsq

__all__ = [
    "GroupSpec",
    "LoadStoreQueue",
    "make_dynamatic_lsq",
    "make_fast_lsq",
    "DepthPoint",
    "LsqSizingResult",
    "size_lsq",
]
