"""``python -m repro.fuzz`` — the differential fuzzing CLI.

Typical runs::

    # 50 kernels from seed 9, all engines x 4 configs, JSONL report
    python -m repro.fuzz --seed 9 --count 50 --out fuzz_report.jsonl

    # CI smoke: stop after 60 s, shrink any failure into the corpus
    python -m repro.fuzz --seed 9 --count 200 --time-budget 60 --shrink

    # prove the harness has teeth: sabotage the arbiter, watch it burn
    python -m repro.fuzz --seed 9 --count 20 --sabotage kill-index-check

Exit status: 0 when every generated kernel agreed on every invariant,
1 when any divergence was found, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from .corpus import save_spec
from .generator import generate_spec
from .harness import (
    DEFAULT_CONFIG_NAMES,
    DEFAULT_ENGINES,
    check_spec,
    configs_from_names,
    sabotage_kill_index_check,
)
from .shrink import shrink_spec
from .spec import instruction_count

_SABOTAGES = {
    "none": None,
    "kill-index-check": sabotage_kill_index_check,
}


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="random-kernel differential fuzzing of the engines",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="generator seed (default 0)")
    p.add_argument("--count", type=int, default=20,
                   help="number of kernels to generate (default 20)")
    p.add_argument("--time-budget", type=float, default=None, metavar="SEC",
                   help="stop starting new kernels after SEC seconds")
    p.add_argument("--engines", default=",".join(DEFAULT_ENGINES),
                   help="comma-separated engines to check against the"
                        f" reference (default {','.join(DEFAULT_ENGINES)})")
    p.add_argument("--configs", default=",".join(DEFAULT_CONFIG_NAMES),
                   help="comma-separated config names; prevv<N> selects a"
                        f" depth (default {','.join(DEFAULT_CONFIG_NAMES)})")
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug the first failing kernel and save the"
                        " minimized spec to the corpus")
    p.add_argument("--corpus-dir", default=None,
                   help="corpus directory (default tests/fuzz/corpus)")
    p.add_argument("--out", default=None, metavar="JSONL",
                   help="write one JSON line per kernel to this file")
    p.add_argument("--max-cycles", type=int, default=400_000,
                   help="per-simulation cycle cap (default 400000)")
    p.add_argument("--no-perf", action="store_true",
                   help="skip the PVPerf static-bound checks")
    p.add_argument("--sabotage", choices=sorted(_SABOTAGES),
                   default="none",
                   help="deliberately break the PreVV arbiter to prove the"
                        " oracle catches it (expect divergences)")
    return p


def main(argv: Optional[list] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        configs = configs_from_names(
            [c for c in args.configs.split(",") if c]
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engines = tuple(e for e in args.engines.split(",") if e)
    mutate = _SABOTAGES[args.sabotage]

    out = open(args.out, "w") if args.out else None
    t0 = time.monotonic()
    total = failed = 0
    first_failure = None
    try:
        for index in range(args.count):
            elapsed = time.monotonic() - t0
            if args.time_budget is not None and elapsed > args.time_budget:
                print(f"time budget exhausted after {total} kernels"
                      f" ({elapsed:.1f}s)")
                break
            spec = generate_spec(args.seed, index)
            started = time.monotonic()
            report = check_spec(
                spec, configs=configs, engines=engines,
                max_cycles=args.max_cycles, mutate=mutate,
                perf=not args.no_perf,
            )
            seconds = time.monotonic() - started
            total += 1
            if not report.ok:
                failed += 1
                if first_failure is None:
                    first_failure = spec
            line = {
                "seed": args.seed,
                "index": index,
                "kernel": spec.name,
                "instructions": instruction_count(spec),
                "configs": [c.name for c in configs],
                "engines": list(engines),
                "checks": report.checks,
                "ok": report.ok,
                "divergences": [d.to_dict() for d in report.divergences],
                "seconds": round(seconds, 3),
            }
            if out:
                out.write(json.dumps(line, sort_keys=True) + "\n")
                out.flush()
            status = "ok" if report.ok else (
                f"FAIL ({len(report.divergences)} divergences)"
            )
            print(f"[{index + 1}/{args.count}] {spec.name}: {status}"
                  f" ({report.checks} checks, {seconds:.2f}s)")
            if not report.ok:
                for d in report.divergences[:4]:
                    print(f"    {d.config}/{d.engine} {d.invariant}:"
                          f" {d.detail}")
    finally:
        if out:
            out.close()

    if first_failure is not None and args.shrink:
        print(f"shrinking {first_failure.name} ...")

        def still_fails(candidate):
            return not check_spec(
                candidate, configs=configs, engines=engines,
                max_cycles=args.max_cycles, mutate=mutate,
                perf=not args.no_perf,
            ).ok

        shrunk = shrink_spec(first_failure, still_fails)
        shrunk.spec.name = f"{first_failure.name}_min"
        # A sabotage-induced failure means the kernel itself is clean
        # (it guards the oracle's teeth); an organic failure is an open
        # finding until someone fixes the model and flips the status.
        path = save_spec(
            shrunk.spec,
            directory=args.corpus_dir,
            status="guard" if mutate is not None else "open",
            reason=f"shrunk from {first_failure.name}"
                   f" ({shrunk.original_instructions} ->"
                   f" {shrunk.final_instructions} instructions,"
                   f" {shrunk.steps} steps)",
            invariant="; ".join(sorted({
                d.invariant
                for d in check_spec(
                    shrunk.spec, configs=configs, engines=engines,
                    max_cycles=args.max_cycles, mutate=mutate,
                    perf=not args.no_perf,
                ).divergences
            })) or "unknown",
            provenance={
                "seed": args.seed,
                "sabotage": args.sabotage,
                "trail": shrunk.trail,
            },
        )
        print(f"minimized to {shrunk.final_instructions} instructions"
              f" -> {path}")

    elapsed = time.monotonic() - t0
    print(f"{total} kernels, {failed} failing, {elapsed:.1f}s")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
