"""Differential checking of one kernel across engines, configs and oracles.

:func:`check_kernel` is the fuzzer's judgment seat.  For each hardware
config it establishes a baseline with the seed worklist oracle
(:class:`~repro.dataflow.ReferenceSimulator`), then demands:

* **golden-memory** — the baseline's final memory equals the
  interpreter's (the architectural contract every config must meet);
* **engine-identity** — every other engine (levelized, incremental,
  compiled, vector; all via :func:`~repro.dataflow.make_simulator`)
  reproduces the baseline bit-identically: cycles, transfers, squashes,
  squashed iterations and final memory;
* **oracle** — on PreVV configs, a :func:`~repro.analysis.sanitizer.
  runner.sanitize_run` with the shadow sequential-consistency oracle
  attached reports no PV3xx error;
* **depth-bound** — when the PVSan prover classifies every ambiguous
  pair BOUNDED_DISTANCE, running at exactly the proven sufficient depth
  must still be clean (an unsound depth bound is a prover bug);
* **perf-bound** — the PVPerf static lower bounds must not exceed the
  measured cycle count (:func:`repro.analysis.perf.measure.compare`,
  the PV404 invariant);
* **occupancy-bound** — the PVBound static occupancy upper bounds must
  cover every measured peak, and its predicted-overflow set must be a
  superset of any observed physical overflow
  (:func:`repro.analysis.occupancy.measure.compare`, the PV504
  invariant);
* **no crash** — any engine raising (deadlock, convergence failure,
  arithmetic error) is itself a finding.

Every violated invariant becomes a :class:`Divergence`; an empty
divergence list is the fuzzer's "this kernel agrees everywhere".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.perf.measure import PerfMeasurement, compare
from ..analysis.perf.predict import predict
from ..analysis.sanitizer.prover import PairClass
from ..analysis.sanitizer.runner import sanitize_run
from ..compile import compile_function
from ..config import HardwareConfig
from ..dataflow import make_simulator
from ..eval.configs import BY_NAME, prevv_with_depth
from ..eval.runner import make_done_condition, run_kernel
from ..ir import run_golden
from .spec import KernelSpec, spec_to_kernel

#: engines checked against the reference baseline
DEFAULT_ENGINES = ("levelized", "incremental", "compiled", "vector")

#: default config sweep: both baselines + PreVV at two depths
DEFAULT_CONFIG_NAMES = ("dynamatic", "fast_lsq", "prevv4", "prevv16")

#: fields of a run that must be bit-identical across engines
_IDENTITY_FIELDS = (
    "cycles", "transfers", "squashes", "squashed_iterations",
)


def configs_from_names(names: Sequence[str]) -> List[HardwareConfig]:
    """Resolve config names; ``prevv<N>`` makes a depth-N PreVV config."""
    configs = []
    for name in names:
        if name in BY_NAME:
            configs.append(BY_NAME[name])
        elif name.startswith("prevv") and name[5:].isdigit():
            configs.append(prevv_with_depth(int(name[5:])))
        else:
            known = ", ".join(sorted(BY_NAME)) + ", prevv<N>"
            raise ValueError(f"unknown config {name!r}; known: {known}")
    return configs


@dataclass
class Divergence:
    """One violated invariant on one (kernel, config, engine) point."""

    kernel: str
    config: str
    engine: str
    invariant: str  # golden-memory | engine-identity | oracle |
    #               # depth-bound | perf-bound | crash
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "kernel": self.kernel,
            "config": self.config,
            "engine": self.engine,
            "invariant": self.invariant,
            "detail": self.detail,
        }


@dataclass
class KernelReport:
    """Everything :func:`check_kernel` concluded about one kernel."""

    kernel: str
    checks: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def add(self, config: str, engine: str, invariant: str, detail: str):
        self.divergences.append(
            Divergence(self.kernel, config, engine, invariant, detail)
        )


def sabotage_kill_index_check(build) -> None:
    """Disable the Eq. 4 same-index comparison in every PreVV arbiter.

    The canonical mutation (shared with the PVSan mutation tests):
    premature loads are never validated against conflicting stores, so
    any kernel with a real RAW hazard silently keeps stale values — the
    exact bug class the oracle exists to catch.
    """
    for unit in build.units:
        unit._same_index = lambda record: []


def _run_point(kernel, config, engine, max_cycles):
    return run_kernel(kernel, config, max_cycles=max_cycles, engine=engine)


def _mismatches(baseline, result) -> List[str]:
    problems = []
    for fld in _IDENTITY_FIELDS:
        want, got = getattr(baseline, fld), getattr(result, fld)
        if want != got:
            problems.append(f"{fld}: {got} != {want}")
    if result.memory != baseline.memory:
        arrays = sorted(
            name for name in baseline.memory
            if result.memory.get(name) != baseline.memory[name]
        )
        problems.append(f"final memory differs on {arrays}")
    return problems


def _check_perf_bounds(report, kernel, config, max_cycles):
    """PVPerf lower bounds vs a transfer-counting measured run."""
    fn = kernel.build_ir()
    build = compile_function(fn, config, args=kernel.args)
    prediction = predict(build, fn, kernel.args)
    golden = run_golden(fn, args=kernel.args, memory=kernel.memory_init)
    build.memory.initialize(kernel.memory_init)
    sim = make_simulator(build.circuit, engine="auto",
                         max_cycles=max_cycles, count_transfers=True)
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    stats = sim.run(make_done_condition(build))
    measurement = PerfMeasurement(
        subject=build.circuit.name,
        cycles=stats.cycles,
        channel_transfers={
            ch.name: ch.transfers for ch in build.circuit.channels
        },
        loop_activations=dict(golden.loop_activations),
    )
    for record in compare(prediction, measurement):
        report.checks += 1
        if not record.ok:
            report.add(
                config.name, sim.engine_name, "perf-bound",
                f"{record.kind}[{record.subject}]: static {record.static}"
                f" > measured {record.measured}",
            )


def _check_occupancy_bounds(report, kernel, config, max_cycles):
    """PVBound upper bounds vs the peak-sampling measured run.

    Two obligations per point: no measured peak above its static bound
    (or structural capacity), and predicted-overflow ⊇ observed-overflow
    — a physical overflow the model called unreachable is a soundness
    hole, while a predicted-but-unobserved overflow is merely
    conservative and stays silent here (PV502 reports it statically).
    """
    from ..analysis.occupancy import analyze_build, measure_build
    from ..analysis.occupancy import compare as compare_occupancy

    fn = kernel.build_ir()
    build = compile_function(fn, config, args=kernel.args)
    prediction = analyze_build(build, fn, kernel.args)
    build.memory.initialize(kernel.memory_init)
    measurement = measure_build(build, max_cycles=max_cycles)
    for record in compare_occupancy(prediction, measurement):
        report.checks += 1
        if not record.ok:
            report.add(
                config.name, "levelized", "occupancy-bound",
                f"{record.kind}[{record.subject}]: static {record.static}"
                f" < measured {record.measured}",
            )


def check_kernel(
    kernel,
    configs: Optional[Sequence[HardwareConfig]] = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    max_cycles: int = 400_000,
    mutate: Optional[Callable] = None,
    perf: bool = True,
) -> KernelReport:
    """Differentially check one :class:`~repro.kernels.Kernel`.

    ``mutate`` is forwarded to the sanitized (oracle) runs only — it
    sabotages the PreVV arbiter after compilation, which is how the
    harness proves its own teeth (and how tests/CI exercise the
    shrinker): a mutated run *must* produce divergences on any kernel
    with a real hazard.
    """
    if configs is None:
        configs = configs_from_names(DEFAULT_CONFIG_NAMES)
    report = KernelReport(kernel=kernel.name)

    proofs = []
    for config in configs:
        # Reference baseline + architectural (golden memory) check.
        try:
            baseline = _run_point(kernel, config, "reference", max_cycles)
        except Exception as exc:  # noqa: BLE001 — any crash is a finding
            report.add(config.name, "reference", "crash",
                       f"{type(exc).__name__}: {exc}")
            continue
        report.checks += 1
        if not baseline.verified:
            report.add(config.name, "reference", "golden-memory",
                       baseline.mismatch_summary)

        # Engine bit-identity against the baseline.
        for engine in engines:
            try:
                result = _run_point(kernel, config, engine, max_cycles)
            except Exception as exc:  # noqa: BLE001
                report.add(config.name, engine, "crash",
                           f"{type(exc).__name__}: {exc}")
                continue
            report.checks += 1
            for problem in _mismatches(baseline, result):
                report.add(config.name, result.engine or engine,
                           "engine-identity", problem)

        # SC oracle + static prover on PreVV configs.
        if config.memory_style == "prevv":
            try:
                sanitized = sanitize_run(
                    kernel, config, max_cycles=max_cycles, mutate=mutate
                )
            except Exception as exc:  # noqa: BLE001
                report.add(config.name, "oracle", "crash",
                           f"{type(exc).__name__}: {exc}")
                continue
            report.checks += sanitized.checks or 1
            if not sanitized.ok or not sanitized.verified:
                codes = sorted({d.code for d in sanitized.report.errors})
                report.add(
                    config.name, "oracle", "oracle",
                    f"sanitize not clean: verified={sanitized.verified}"
                    f" completed={sanitized.completed} errors={codes}",
                )
            if not proofs:
                proofs = sanitized.proofs

        # PVPerf static lower bounds (measured with the auto engine).
        if perf and mutate is None:
            try:
                _check_perf_bounds(report, kernel, config, max_cycles)
            except Exception as exc:  # noqa: BLE001
                report.add(config.name, "perf", "crash",
                           f"{type(exc).__name__}: {exc}")

        # PVBound static occupancy bounds (peak-sampled levelized run).
        if perf and mutate is None:
            try:
                _check_occupancy_bounds(report, kernel, config, max_cycles)
            except Exception as exc:  # noqa: BLE001
                report.add(config.name, "occupancy", "crash",
                           f"{type(exc).__name__}: {exc}")

    # Depth-bound soundness: if every ambiguous pair is bounded, the
    # proven sufficient depth must itself be a clean operating point.
    if proofs and mutate is None:
        bounded = [p for p in proofs
                   if p.classification is PairClass.BOUNDED_DISTANCE]
        if bounded and all(
            p.classification is not PairClass.UNKNOWN for p in proofs
        ):
            depth = max(p.depth_bound for p in bounded)
            if 1 <= depth <= 64:
                config = prevv_with_depth(depth)
                try:
                    sanitized = sanitize_run(
                        kernel, config, max_cycles=max_cycles
                    )
                    report.checks += 1
                    if not sanitized.ok or not sanitized.verified:
                        report.add(
                            config.name, "oracle", "depth-bound",
                            f"prover-sufficient depth {depth} is not"
                            f" clean: verified={sanitized.verified}"
                            f" completed={sanitized.completed}",
                        )
                except Exception as exc:  # noqa: BLE001
                    report.add(config.name, "oracle", "depth-bound",
                               f"{type(exc).__name__}: {exc}")
    return report


def check_spec(
    spec: KernelSpec,
    configs: Optional[Sequence[HardwareConfig]] = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    max_cycles: int = 400_000,
    mutate: Optional[Callable] = None,
    perf: bool = True,
) -> KernelReport:
    """:func:`check_kernel` over a spec (builds the kernel first)."""
    return check_kernel(
        spec_to_kernel(spec), configs=configs, engines=engines,
        max_cycles=max_cycles, mutate=mutate, perf=perf,
    )
