"""Delta debugging: minimize a failing kernel spec.

:func:`shrink_spec` takes a spec and a *predicate* (``spec -> bool``,
True while the failure still reproduces — typically "the differential
harness reports a divergence") and greedily applies reduction passes to
a fixpoint, keeping only candidates that stay valid **and** still fail:

1.  drop a whole nest;
2.  drop a statement;
3.  drop a loop level (subscript terms of its iv are removed);
4.  shrink a loop bound (halve, then decrement, floor 2);
5.  drop a store guard;
6.  demote a reduction to a plain store;
7.  simplify subscripts — remove indirection, drop affine terms and
    constants, and normalize a read-modify-write pair to the canonical
    distance-1 hazard (store at ``iv + 1``, load at ``iv``) so the alias
    that makes the kernel interesting survives minimization;
8.  simplify value expressions — prune operator trees to a leaf, then
    collapse leaves toward ``load + const``.

After structural minimization, array sizes are retightened to the
smallest in-bounds value.  Every candidate is re-validated with
:func:`~repro.fuzz.spec.validate_spec` before the (expensive) predicate
runs, so passes can propose aggressively.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, List

from .spec import (
    Affine,
    Expr,
    KernelSpec,
    ReduceStmt,
    StoreStmt,
    Subscript,
    instruction_count,
    validate_spec,
)


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    spec: KernelSpec
    original_instructions: int
    final_instructions: int
    steps: int = 0
    #: human-readable log of accepted reductions, in order
    trail: List[str] = field(default_factory=list)


def _valid(spec: KernelSpec) -> bool:
    try:
        validate_spec(spec)
        return True
    except ValueError:
        return False


def _tighten_arrays(spec: KernelSpec) -> KernelSpec:
    """Shrink every array to the smallest size that stays in bounds."""
    spec = copy.deepcopy(spec)
    for arr in spec.arrays.values():
        while arr.size > 2:
            old_size, old_hi = arr.size, arr.hi
            arr.size -= 1
            if arr.hi >= arr.size:
                arr.hi = arr.size - 1
            if not _valid(spec):
                arr.size, arr.hi = old_size, old_hi
                break
    # Unused arrays (loads/stores removed by earlier passes) disappear.
    used = set()
    for nest in spec.nests:
        for stmt in nest.stmts:
            if isinstance(stmt, StoreStmt):
                used.add(stmt.array)
                subs = [stmt.subscript]
            else:
                used.add(stmt.out_array)
                subs = [stmt.out_subscript]
            stack = [stmt.expr]
            while stack:
                e = stack.pop()
                if e.kind == "bin":
                    stack.extend((e.lhs, e.rhs))
                elif e.kind == "load":
                    used.add(e.array)
                    subs.append(e.subscript)
            for sub in subs:
                if sub.indirect:
                    used.add(sub.indirect)
    spec.arrays = {n: a for n, a in spec.arrays.items() if n in used}
    return spec


# ----------------------------------------------------------------------
# Candidate enumeration (cheap structural mutations, most drastic first)
# ----------------------------------------------------------------------
def _exprs_of(stmt):
    out = []
    stack = [("expr", stmt, stmt.expr)]
    while stack:
        slot = stack.pop()
        out.append(slot)
        _, _, e = slot
        if e.kind == "bin":
            stack.append(("lhs", e, e.lhs))
            stack.append(("rhs", e, e.rhs))
    return out


def _set_expr(slot, new):
    attr, owner, _ = slot
    setattr(owner, attr, new)


def _candidates(spec: KernelSpec):
    """Yield ``(label, candidate_spec)`` in decreasing aggressiveness."""
    # 1. Drop a nest.
    if len(spec.nests) > 1:
        for ni in range(len(spec.nests)):
            c = copy.deepcopy(spec)
            del c.nests[ni]
            yield f"drop nest {spec.nests[ni].tag}", c

    # 2. Drop a statement.
    for ni, nest in enumerate(spec.nests):
        if len(nest.stmts) > 1:
            for si in range(len(nest.stmts)):
                c = copy.deepcopy(spec)
                del c.nests[ni].stmts[si]
                yield f"drop {nest.tag}.stmt{si}", c

    # 3. Drop a loop level.
    for ni, nest in enumerate(spec.nests):
        if len(nest.loops) > 1:
            for li in range(len(nest.loops)):
                c = copy.deepcopy(spec)
                gone = c.nests[ni].loops[li].iv
                del c.nests[ni].loops[li]
                for stmt in c.nests[ni].stmts:
                    subs = []
                    if isinstance(stmt, StoreStmt):
                        subs.append(stmt.subscript)
                        if stmt.guard is not None:
                            stmt.guard.affine.coeffs.pop(gone, None)
                    else:
                        subs.append(stmt.out_subscript)
                    for slot in _exprs_of(stmt):
                        e = slot[2]
                        if e.kind == "load":
                            subs.append(e.subscript)
                        elif e.kind == "iv" and e.name == gone:
                            _set_expr(slot, Expr("const", value=1))
                    for sub in subs:
                        sub.affine.coeffs.pop(gone, None)
                yield f"drop loop {gone}", c

    # 4. Shrink a loop bound.
    for ni, nest in enumerate(spec.nests):
        for li, lp in enumerate(nest.loops):
            for new in {max(2, lp.bound // 2), lp.bound - 1}:
                if 2 <= new < lp.bound:
                    c = copy.deepcopy(spec)
                    c.nests[ni].loops[li].bound = new
                    yield f"bound {lp.iv}: {lp.bound} -> {new}", c

    # 5. Drop a guard / 6. demote a reduction.
    for ni, nest in enumerate(spec.nests):
        for si, stmt in enumerate(nest.stmts):
            if isinstance(stmt, StoreStmt) and stmt.guard is not None:
                c = copy.deepcopy(spec)
                c.nests[ni].stmts[si].guard = None
                yield f"drop guard {nest.tag}.stmt{si}", c
            if isinstance(stmt, ReduceStmt):
                c = copy.deepcopy(spec)
                old = c.nests[ni].stmts[si]
                c.nests[ni].stmts[si] = StoreStmt(
                    array=old.out_array,
                    subscript=old.out_subscript,
                    expr=old.expr if _no_acc(old.expr)
                    else Expr("const", value=1),
                )
                yield f"demote reduce {nest.tag}.stmt{si}", c

    # 7. Simplify subscripts.
    for ni, nest in enumerate(spec.nests):
        inner_iv = nest.loops[-1].iv
        for si, stmt in enumerate(nest.stmts):
            where = f"{nest.tag}.stmt{si}"
            for label, mutate in (
                ("deindirect", _pass_deindirect),
                ("affine-prune", _pass_affine_prune),
                ("canonical-hazard", _pass_canonical_hazard),
            ):
                c = copy.deepcopy(spec)
                if mutate(c.nests[ni].stmts[si], inner_iv):
                    yield f"{label} {where}", c

    # 8. Simplify value expressions.
    for ni, nest in enumerate(spec.nests):
        for si, stmt in enumerate(nest.stmts):
            for ei, slot in enumerate(_exprs_of(stmt)):
                e = slot[2]
                if e.kind == "bin":
                    for pick, side in (("lhs", e.lhs), ("rhs", e.rhs)):
                        c = copy.deepcopy(spec)
                        cslot = _exprs_of(c.nests[ni].stmts[si])[ei]
                        _set_expr(cslot, getattr(cslot[2], pick))
                        yield (
                            f"prune {nest.tag}.stmt{si} expr to {pick}", c
                        )
                elif e.kind in ("iv", "load") and not (
                    ei == 0 and isinstance(stmt, StoreStmt)
                ):
                    c = copy.deepcopy(spec)
                    cslot = _exprs_of(c.nests[ni].stmts[si])[ei]
                    _set_expr(cslot, Expr("const", value=1))
                    yield f"const-fold {nest.tag}.stmt{si} leaf", c


def _no_acc(expr: Expr) -> bool:
    stack = [expr]
    while stack:
        e = stack.pop()
        if e.kind == "acc":
            return False
        if e.kind == "bin":
            stack.extend((e.lhs, e.rhs))
    return True


def _pass_deindirect(stmt, inner_iv) -> bool:
    """Replace every indirect subscript with its raw affine."""
    changed = False
    subs = []
    if isinstance(stmt, StoreStmt):
        subs.append(stmt.subscript)
    else:
        subs.append(stmt.out_subscript)
    for slot in _exprs_of(stmt):
        if slot[2].kind == "load":
            subs.append(slot[2].subscript)
    for sub in subs:
        if sub.indirect is not None:
            sub.indirect = None
            sub.offset = 0
            changed = True
    return changed


def _pass_affine_prune(stmt, inner_iv) -> bool:
    """Drop one affine term or zero the constant, first hit wins."""
    subs = []
    if isinstance(stmt, StoreStmt):
        subs.append(stmt.subscript)
    else:
        subs.append(stmt.out_subscript)
    for slot in _exprs_of(stmt):
        if slot[2].kind == "load":
            subs.append(slot[2].subscript)
    for sub in subs:
        aff = sub.affine
        for iv in sorted(aff.coeffs):
            if aff.coeffs[iv] > 1:
                aff.coeffs[iv] = 1
                return True
            if len(aff.coeffs) > 1:
                del aff.coeffs[iv]
                return True
        if aff.const > 1:
            aff.const = 1
            return True
    return False


def _pass_canonical_hazard(stmt, inner_iv) -> bool:
    """Normalize a RMW store to ``a[iv+1] = f(a[iv])``.

    Keeps a genuine distance-1 RAW alias while discarding every other
    subscript detail — the transformation that lets the shrinker land on
    the textbook minimal recurrence instead of stalling one term short.
    """
    if not isinstance(stmt, StoreStmt):
        return False
    loads = [slot[2] for slot in _exprs_of(stmt) if slot[2].kind == "load"]
    same = [ld for ld in loads if ld.array == stmt.array]
    if not same:
        return False
    want_store = Affine(const=1, coeffs={inner_iv: 1})
    want_load = Affine(const=0, coeffs={inner_iv: 1})
    already = (
        stmt.subscript.indirect is None
        and stmt.subscript.affine.const == want_store.const
        and stmt.subscript.affine.coeffs == want_store.coeffs
        and all(
            ld.subscript.indirect is None
            and ld.subscript.affine.const == 0
            and ld.subscript.affine.coeffs == want_load.coeffs
            for ld in same
        )
    )
    if already:
        return False
    stmt.subscript = Subscript(affine=want_store)
    for ld in same:
        ld.subscript = Subscript(affine=copy.deepcopy(want_load))
    return True


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def shrink_spec(
    spec: KernelSpec,
    predicate: Callable[[KernelSpec], bool],
    max_steps: int = 400,
) -> ShrinkResult:
    """Greedy fixpoint minimization of ``spec`` under ``predicate``.

    ``predicate(candidate)`` must return True while the original failure
    still reproduces; the input spec itself is assumed failing (callers
    check before shrinking).  First-improvement search: each accepted
    candidate restarts the pass list, so drastic reductions get retried
    after small ones unlock them.
    """
    current = copy.deepcopy(spec)
    result = ShrinkResult(
        spec=current,
        original_instructions=instruction_count(spec),
        final_instructions=0,
    )
    improved = True
    while improved and result.steps < max_steps:
        improved = False
        for label, candidate in _candidates(current):
            if result.steps >= max_steps:
                break
            if not _valid(candidate):
                continue
            result.steps += 1
            try:
                still_failing = predicate(candidate)
            except Exception:  # noqa: BLE001 — reject, stay conservative
                still_failing = False
            if still_failing:
                current = candidate
                result.trail.append(label)
                improved = True
                break

    tightened = _tighten_arrays(current)
    if _valid(tightened):
        try:
            if predicate(tightened):
                current = tightened
                result.trail.append("tighten arrays")
        except Exception:  # noqa: BLE001 — keep the untightened spec
            pass

    result.spec = current
    result.final_instructions = instruction_count(current)
    return result
