"""The fuzzer's kernel grammar and its translation to IR.

A :class:`KernelSpec` is a *value object* describing one fully-nested
loop kernel — the only loop shape the elastic builder and the PreVV
domain analysis accept (see ``repro/kernels/base.py``).  Specs are plain
dataclasses over ints/strings so they serialize losslessly to JSON: the
shrinker mutates specs, the corpus commits them, and
:func:`spec_to_kernel` is the single point where a spec becomes a
:class:`repro.kernels.Kernel` (IR + args + deterministic inputs).

Grammar (all subscript affines have non-negative coefficients and
constants, so in-bounds checking is a closed-form range computation):

    kernel  := nest+                      (sequential nests share arrays)
    nest    := loop{1..3} stmt+           (stmts in the innermost body)
    stmt    := store | reduce
    store   := [guard] arr[sub] = expr
    reduce  := acc op= expr each iter; arr[outer-sub] = acc on last iter
    sub     := affine | arr[affine] + c   (indirect = non-affine subscript)
    expr    := const | iv | arr[sub] | expr binop expr
    binop   := add sub mul and or xor     (div/rem excluded: zero guards)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir import Function, IRBuilder
from ..kernels.base import Kernel, lcg_values
from ..kernels.nest import NestBuilder

#: binary opcodes the generator may emit inside value expressions
EXPR_OPS = ("add", "sub", "mul", "and", "or", "xor")
#: comparison opcodes usable in store guards
GUARD_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
#: opcodes usable as reduction accumulators
REDUCE_OPS = ("add", "xor")


# ----------------------------------------------------------------------
# Spec dataclasses
# ----------------------------------------------------------------------
@dataclass
class Affine:
    """``const + sum(coeffs[iv] * iv)`` over enclosing induction variables."""

    const: int = 0
    coeffs: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"const": self.const, "coeffs": dict(self.coeffs)}

    @staticmethod
    def from_dict(d: dict) -> "Affine":
        return Affine(const=int(d["const"]),
                      coeffs={k: int(v) for k, v in d["coeffs"].items()})


@dataclass
class Subscript:
    """Array subscript: affine, optionally routed through an index array.

    With ``indirect`` set the subscript value is
    ``indirect_array[affine] + offset`` — a non-affine (data-dependent)
    address, the shape that defeats the polyhedral layer and forces
    dynamic disambiguation.
    """

    affine: Affine
    indirect: Optional[str] = None
    offset: int = 0

    def to_dict(self) -> dict:
        return {
            "affine": self.affine.to_dict(),
            "indirect": self.indirect,
            "offset": self.offset,
        }

    @staticmethod
    def from_dict(d: dict) -> "Subscript":
        return Subscript(
            affine=Affine.from_dict(d["affine"]),
            indirect=d.get("indirect"),
            offset=int(d.get("offset", 0)),
        )


@dataclass
class Expr:
    """Value expression tree.

    ``kind`` is one of ``const`` (uses ``value``), ``iv`` (uses ``name``),
    ``load`` (uses ``array`` + ``subscript``), ``acc`` (the enclosing
    reduction's accumulator) or ``bin`` (uses ``op``, ``lhs``, ``rhs``).
    """

    kind: str
    value: int = 0
    name: str = ""
    array: str = ""
    subscript: Optional[Subscript] = None
    op: str = ""
    lhs: Optional["Expr"] = None
    rhs: Optional["Expr"] = None

    def to_dict(self) -> dict:
        if self.kind == "const":
            return {"kind": "const", "value": self.value}
        if self.kind == "iv":
            return {"kind": "iv", "name": self.name}
        if self.kind == "acc":
            return {"kind": "acc"}
        if self.kind == "load":
            return {"kind": "load", "array": self.array,
                    "subscript": self.subscript.to_dict()}
        return {"kind": "bin", "op": self.op,
                "lhs": self.lhs.to_dict(), "rhs": self.rhs.to_dict()}

    @staticmethod
    def from_dict(d: dict) -> "Expr":
        kind = d["kind"]
        if kind == "const":
            return Expr("const", value=int(d["value"]))
        if kind == "iv":
            return Expr("iv", name=d["name"])
        if kind == "acc":
            return Expr("acc")
        if kind == "load":
            return Expr("load", array=d["array"],
                        subscript=Subscript.from_dict(d["subscript"]))
        return Expr("bin", op=d["op"], lhs=Expr.from_dict(d["lhs"]),
                    rhs=Expr.from_dict(d["rhs"]))


@dataclass
class Guard:
    """Store condition ``affine cmp rhs`` (e.g. ``(i + 2*j) & 1 == 0``).

    ``parity`` compares ``(affine & 1)`` instead of the raw affine, which
    keeps guards that are true on roughly half the iterations easy to
    generate at any loop bound.
    """

    affine: Affine
    op: str = "eq"
    rhs: int = 0
    parity: bool = False

    def to_dict(self) -> dict:
        return {"affine": self.affine.to_dict(), "op": self.op,
                "rhs": self.rhs, "parity": self.parity}

    @staticmethod
    def from_dict(d: dict) -> "Guard":
        return Guard(affine=Affine.from_dict(d["affine"]), op=d["op"],
                     rhs=int(d["rhs"]), parity=bool(d["parity"]))


@dataclass
class StoreStmt:
    """``[if guard] array[subscript] = expr``."""

    array: str
    subscript: Subscript
    expr: Expr
    guard: Optional[Guard] = None

    def to_dict(self) -> dict:
        return {
            "kind": "store",
            "array": self.array,
            "subscript": self.subscript.to_dict(),
            "expr": self.expr.to_dict(),
            "guard": self.guard.to_dict() if self.guard else None,
        }


@dataclass
class ReduceStmt:
    """Loop-carried reduction over the innermost loop.

    ``acc`` starts at ``init``, updates ``acc = acc <op> expr`` every
    innermost iteration, and ``out_array[out_subscript]`` receives the
    running value on the last innermost iteration (a conditional store —
    the fake-token path, like the matmul kernels).
    """

    op: str
    expr: Expr
    out_array: str
    out_subscript: Subscript
    init: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": "reduce",
            "op": self.op,
            "expr": self.expr.to_dict(),
            "out_array": self.out_array,
            "out_subscript": self.out_subscript.to_dict(),
            "init": self.init,
        }


def _stmt_from_dict(d: dict):
    if d["kind"] == "store":
        return StoreStmt(
            array=d["array"],
            subscript=Subscript.from_dict(d["subscript"]),
            expr=Expr.from_dict(d["expr"]),
            guard=Guard.from_dict(d["guard"]) if d.get("guard") else None,
        )
    return ReduceStmt(
        op=d["op"],
        expr=Expr.from_dict(d["expr"]),
        out_array=d["out_array"],
        out_subscript=Subscript.from_dict(d["out_subscript"]),
        init=int(d.get("init", 0)),
    )


@dataclass
class LoopSpec:
    """One counted loop ``for iv = 0; iv < bound; ++iv`` (bound >= 1)."""

    iv: str
    bound: int

    def to_dict(self) -> dict:
        return {"iv": self.iv, "bound": self.bound}


@dataclass
class NestSpec:
    """One fully-nested loop nest: loops outer-to-inner, innermost stmts."""

    tag: str
    loops: List[LoopSpec]
    stmts: List[object]  # StoreStmt | ReduceStmt

    def to_dict(self) -> dict:
        return {
            "tag": self.tag,
            "loops": [lp.to_dict() for lp in self.loops],
            "stmts": [s.to_dict() for s in self.stmts],
        }


@dataclass
class ArraySpec:
    """One memory array: its size and (optional) deterministic init.

    ``init_seed is None`` means zero-initialized (an output array).  The
    init range also bounds the values any *indirect* subscript routed
    through this array can take, which is what keeps data-dependent
    addresses provably in bounds.
    """

    size: int
    init_seed: Optional[int] = None
    lo: int = 0
    hi: int = 0

    def to_dict(self) -> dict:
        return {"size": self.size, "init_seed": self.init_seed,
                "lo": self.lo, "hi": self.hi}

    @staticmethod
    def from_dict(d: dict) -> "ArraySpec":
        seed = d.get("init_seed")
        return ArraySpec(size=int(d["size"]),
                         init_seed=None if seed is None else int(seed),
                         lo=int(d.get("lo", 0)), hi=int(d.get("hi", 0)))


@dataclass
class KernelSpec:
    """A complete fuzz kernel: arrays + sequential nests."""

    name: str
    arrays: Dict[str, ArraySpec]
    nests: List[NestSpec]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "arrays": {n: a.to_dict() for n, a in self.arrays.items()},
            "nests": [n.to_dict() for n in self.nests],
        }


def spec_from_dict(d: dict) -> KernelSpec:
    return KernelSpec(
        name=d["name"],
        arrays={n: ArraySpec.from_dict(a) for n, a in d["arrays"].items()},
        nests=[
            NestSpec(
                tag=n["tag"],
                loops=[LoopSpec(iv=lp["iv"], bound=int(lp["bound"]))
                       for lp in n["loops"]],
                stmts=[_stmt_from_dict(s) for s in n["stmts"]],
            )
            for n in d["nests"]
        ],
    )


# ----------------------------------------------------------------------
# Static validation: every subscript provably in bounds
# ----------------------------------------------------------------------
def _affine_range(affine: Affine, bounds: Dict[str, int]) -> Tuple[int, int]:
    """Value range of an affine over its loops (coeffs/const >= 0)."""
    if affine.const < 0:
        raise ValueError("affine const must be >= 0")
    lo = hi = affine.const
    for iv, coef in affine.coeffs.items():
        if iv not in bounds:
            raise ValueError(f"affine references unknown iv {iv!r}")
        if coef < 0:
            raise ValueError("affine coefficients must be >= 0")
        hi += coef * (bounds[iv] - 1)
    return lo, hi


def _subscript_range(
    sub: Subscript, bounds: Dict[str, int], arrays: Dict[str, ArraySpec]
) -> Tuple[int, int]:
    lo, hi = _affine_range(sub.affine, bounds)
    if sub.indirect is None:
        return lo + sub.offset, hi + sub.offset
    idx = arrays.get(sub.indirect)
    if idx is None:
        raise ValueError(f"indirect through unknown array {sub.indirect!r}")
    if hi >= idx.size:
        raise ValueError(
            f"indirect index range [{lo},{hi}] exceeds {sub.indirect!r}"
            f" (size {idx.size})"
        )
    if idx.init_seed is None:
        vlo = vhi = 0  # zero-initialized index array
    else:
        vlo, vhi = idx.lo, idx.hi
    return vlo + sub.offset, vhi + sub.offset


def _check_subscript(sub, bounds, arrays, array, where):
    lo, hi = _subscript_range(sub, bounds, arrays)
    size = arrays[array].size
    if lo < 0 or hi >= size:
        raise ValueError(
            f"{where}: subscript range [{lo},{hi}] out of bounds for"
            f" {array!r} (size {size})"
        )


def _walk_exprs(expr: Expr):
    yield expr
    if expr.kind == "bin":
        yield from _walk_exprs(expr.lhs)
        yield from _walk_exprs(expr.rhs)


def validate_spec(spec: KernelSpec) -> None:
    """Raise ``ValueError`` unless every access is statically in bounds.

    Also enforces the grammar's structural rules (unique iv names, known
    arrays, legal opcodes, positive bounds) so the shrinker can blindly
    mutate specs and discard the invalid candidates.
    """
    if not spec.nests:
        raise ValueError("spec has no nests")
    seen_ivs: set = set()
    for nest in spec.nests:
        if not nest.loops:
            raise ValueError(f"nest {nest.tag!r} has no loops")
        if not nest.stmts:
            raise ValueError(f"nest {nest.tag!r} has no statements")
        for lp in nest.loops:
            if lp.bound < 1:
                raise ValueError(f"loop {lp.iv!r}: bound {lp.bound} < 1")
            if lp.iv in seen_ivs:
                raise ValueError(f"duplicate induction variable {lp.iv!r}")
            seen_ivs.add(lp.iv)
        bounds = {lp.iv: lp.bound for lp in nest.loops}
        outer_bounds = {lp.iv: lp.bound for lp in nest.loops[:-1]}
        for si, stmt in enumerate(nest.stmts):
            where = f"{nest.tag}.stmt{si}"
            if isinstance(stmt, StoreStmt):
                if stmt.array not in spec.arrays:
                    raise ValueError(f"{where}: unknown array {stmt.array!r}")
                _check_subscript(stmt.subscript, bounds, spec.arrays,
                                 stmt.array, where)
                if stmt.guard is not None:
                    if stmt.guard.op not in GUARD_OPS:
                        raise ValueError(
                            f"{where}: bad guard op {stmt.guard.op!r}")
                    _affine_range(stmt.guard.affine, bounds)
                exprs = list(_walk_exprs(stmt.expr))
            elif isinstance(stmt, ReduceStmt):
                if stmt.op not in REDUCE_OPS:
                    raise ValueError(f"{where}: bad reduce op {stmt.op!r}")
                if stmt.out_array not in spec.arrays:
                    raise ValueError(
                        f"{where}: unknown array {stmt.out_array!r}")
                # The output subscript may only use outer ivs: the store
                # fires once per outer iteration (on the last inner one).
                _check_subscript(stmt.out_subscript, outer_bounds or bounds,
                                 spec.arrays, stmt.out_array, where)
                exprs = list(_walk_exprs(stmt.expr))
            else:
                raise ValueError(f"{where}: unknown statement {stmt!r}")
            for expr in exprs:
                if expr.kind == "acc" and not isinstance(stmt, ReduceStmt):
                    raise ValueError(f"{where}: acc outside a reduction")
                if expr.kind == "iv" and expr.name not in bounds:
                    raise ValueError(f"{where}: unknown iv {expr.name!r}")
                if expr.kind == "bin" and expr.op not in EXPR_OPS:
                    raise ValueError(f"{where}: bad expr op {expr.op!r}")
                if expr.kind == "load":
                    if expr.array not in spec.arrays:
                        raise ValueError(
                            f"{where}: unknown array {expr.array!r}")
                    _check_subscript(expr.subscript, bounds, spec.arrays,
                                     expr.array, where)


# ----------------------------------------------------------------------
# Spec -> Kernel (IR + args + inputs)
# ----------------------------------------------------------------------
def _emit_affine(b: IRBuilder, affine: Affine, ivs: Dict[str, object]):
    value = None
    for iv, coef in sorted(affine.coeffs.items()):
        if coef == 0:
            continue
        term = ivs[iv] if coef == 1 else b.mul(ivs[iv], coef)
        value = term if value is None else b.add(value, term)
    if value is None:
        return b.const(affine.const)
    if affine.const:
        value = b.add(value, affine.const)
    return value


def _emit_subscript(b, sub: Subscript, ivs, decls):
    idx = _emit_affine(b, sub.affine, ivs)
    if sub.indirect is not None:
        idx = b.load(decls[sub.indirect], idx)
    if sub.offset:
        idx = b.add(idx, sub.offset)
    return idx


def _emit_expr(b, expr: Expr, ivs, decls, acc=None):
    if expr.kind == "const":
        return b.const(expr.value)
    if expr.kind == "iv":
        return ivs[expr.name]
    if expr.kind == "acc":
        if acc is None:
            raise ValueError("acc expression outside a reduction")
        return acc
    if expr.kind == "load":
        return b.load(decls[expr.array],
                      _emit_subscript(b, expr.subscript, ivs, decls))
    lhs = _emit_expr(b, expr.lhs, ivs, decls, acc)
    rhs = _emit_expr(b, expr.rhs, ivs, decls, acc)
    return b.binary(expr.op, lhs, rhs)


def _build_from_spec(spec: KernelSpec, kernel: Kernel) -> Function:
    fn = Function(spec.name)
    b = IRBuilder(fn)
    bound_args = {}
    for nest in spec.nests:
        for lp in nest.loops:
            bound_args[lp.iv] = b.arg(f"n_{lp.iv}")
    decls = {
        name: b.array(name, arr.size) for name, arr in spec.arrays.items()
    }
    b.at(b.block("entry"))
    nb = NestBuilder(b)
    for nest in spec.nests:
        ivs: Dict[str, object] = {}
        carried_specs = [
            (si, stmt) for si, stmt in enumerate(nest.stmts)
            if isinstance(stmt, ReduceStmt)
        ]
        loops = []
        for li, lp in enumerate(nest.loops):
            innermost = li == len(nest.loops) - 1
            carried = (
                {f"acc{si}": stmt.init for si, stmt in carried_specs}
                if innermost else None
            )
            loop = nb.open_loop(lp.iv, bound_args[lp.iv], carried=carried)
            ivs[lp.iv] = loop.iv
            loops.append(loop)
        inner = loops[-1]
        inner_lp = nest.loops[-1]
        updates: Dict[str, object] = {}
        for si, stmt in enumerate(nest.stmts):
            if isinstance(stmt, StoreStmt):
                join = None
                if stmt.guard is not None:
                    g = stmt.guard
                    lhs = _emit_affine(b, g.affine, ivs)
                    if g.parity:
                        lhs = b.and_(lhs, 1)
                    cond = b.binary(g.op, lhs, g.rhs)
                    _, _, join = nb.if_then(cond, f"{nest.tag}s{si}")
                idx = _emit_subscript(b, stmt.subscript, ivs, decls)
                value = _emit_expr(b, stmt.expr, ivs, decls)
                b.store(decls[stmt.array], idx, value)
                if join is not None:
                    nb.end_then(join)
            else:  # ReduceStmt
                acc = inner.carried[f"acc{si}"]
                value = _emit_expr(b, stmt.expr, ivs, decls, acc=acc)
                nxt = b.binary(stmt.op, acc, value,
                               name=f"{nest.tag}acc{si}n")
                updates[f"acc{si}"] = nxt
                is_last = b.eq(ivs[inner_lp.iv],
                               b.sub(bound_args[inner_lp.iv], 1))
                _, _, join = nb.if_then(is_last, f"{nest.tag}r{si}")
                out_idx = _emit_subscript(b, stmt.out_subscript, ivs, decls)
                b.store(decls[stmt.out_array], out_idx, nxt)
                nb.end_then(join)
        for li in range(len(nest.loops) - 1, -1, -1):
            nb.close_loop(updates if li == len(nest.loops) - 1 else None)
    b.ret()
    return fn


def spec_to_kernel(spec: KernelSpec) -> Kernel:
    """Materialize a spec as a :class:`repro.kernels.Kernel`.

    Loop bounds become function arguments (``n_<iv>``), matching how the
    seed kernels pass compile-time sizes; array inputs come from the same
    :func:`~repro.kernels.base.lcg_values` LCG the seed kernels use, so
    a spec fully determines its golden run on every platform.
    """
    validate_spec(spec)
    args = {
        f"n_{lp.iv}": lp.bound
        for nest in spec.nests for lp in nest.loops
    }
    memory_init = {
        name: lcg_values(arr.size, seed=arr.init_seed, lo=arr.lo, hi=arr.hi)
        for name, arr in spec.arrays.items()
        if arr.init_seed is not None
    }
    return Kernel(
        name=spec.name,
        description="PVFuzz generated kernel",
        builder=lambda kernel, _spec=spec: _build_from_spec(_spec, kernel),
        args=args,
        memory_init=memory_init,
        paper_reference="repro.fuzz differential harness",
    )


def instruction_count(spec: KernelSpec) -> int:
    """Number of IR instructions (phis included) the spec builds to."""
    fn = spec_to_kernel(spec).build_ir()
    return sum(len(bb.phis) + len(bb.instructions) for bb in fn.blocks)
