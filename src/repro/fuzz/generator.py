"""Seeded random sampling of the fuzz kernel grammar.

:func:`generate_spec` maps ``(seed, index)`` to one
:class:`~repro.fuzz.spec.KernelSpec` deterministically — two generator
instances with the same coordinates produce structurally identical IR
(same :func:`~repro.dataflow.codegen.structural_key`) and identical
golden runs, which ``tests/fuzz/test_generator.py`` pins.

The sampler is biased toward the shapes that exercise the memory
subsystem rather than uniform over the grammar:

* every nest contains at least one store whose value expression *reads
  the stored array* (a may-RAW pair, so dynamic disambiguation hardware
  is actually instantiated);
* ~1/4 of nests get a distance-1 loop-carried recurrence
  (``t[i+1] = f(t[i])``) — the premature-validation worst case;
* about a third of loads are re-routed through an index array in a
  second pass (non-affine subscripts: the polyhedral layer must give
  up and the prover reports UNKNOWN);
* reductions, guarded stores and multi-nest kernels appear often enough
  that fake tokens, conditional groups and cross-nest hazards all show
  up within a few dozen kernels.

One shape is deliberately outside the grammar: two *independent*
statements in the same innermost body touching the same array.  With no
dataflow edge between them, a same-iteration may-alias replays exactly
the race it squashed every time — a deterministic livelock inherent to
premature validation (no store queue means nothing orders the pair), so
it cannot terminate under any PreVV depth.  Hazards stay expressed as
within-statement RMW pairs (ordered by the value dependence) and
cross-iteration recurrences (resolved because the older iteration's
commit survives the squash).

Sampling happens in two phases: statements are generated affine-only,
then every array is sized to cover the maximum statically reachable
subscript, and only then (sizes known) some loads become indirect.  Only
``random.Random`` methods with cross-version stable algorithms
(``randrange``/``random``) are used, via thin helpers.
"""

from __future__ import annotations

import random
from typing import Dict, List

from .spec import (
    Affine,
    ArraySpec,
    Expr,
    Guard,
    KernelSpec,
    LoopSpec,
    NestSpec,
    ReduceStmt,
    StoreStmt,
    Subscript,
    validate_spec,
)

_NEST_TAGS = ("p", "q")
_IV_NAMES = ("i", "j", "k")


def _choice(rng: random.Random, seq):
    return seq[rng.randrange(len(seq))]


def _weighted(rng: random.Random, pairs):
    """``pairs``: (value, weight) — integer-weight roulette wheel."""
    total = sum(w for _, w in pairs)
    pick = rng.randrange(total)
    for value, weight in pairs:
        if pick < weight:
            return value
        pick -= weight
    raise AssertionError("unreachable")


def _affine_hi(affine: Affine, bounds: Dict[str, int]) -> int:
    return affine.const + sum(
        c * (bounds[iv] - 1) for iv, c in affine.coeffs.items()
    )


def _affine(rng: random.Random, ivs: List[str],
            max_const: int = 3) -> Affine:
    """Random affine over a subset of ``ivs`` (possibly const-only)."""
    coeffs: Dict[str, int] = {}
    if ivs:
        n_terms = _weighted(rng, [(1, 6), (2, 3), (0, 1)])
        for iv in ivs:
            if len(coeffs) >= n_terms:
                break
            if rng.random() < 0.7 or (not coeffs and iv == ivs[-1]):
                coeffs[iv] = _weighted(rng, [(1, 6), (2, 3), (3, 1)])
    const = rng.randrange(max_const + 1)
    return Affine(const=const, coeffs=coeffs)


def _expr(rng, ivs, data_arrays, depth: int = 2,
          acc_ok: bool = False) -> Expr:
    kind = _weighted(rng, [
        ("load", 5), ("bin", 4 if depth > 0 else 0),
        ("iv", 2 if ivs else 0), ("const", 2),
        ("acc", 2 if acc_ok else 0),
    ])
    if kind == "const":
        return Expr("const", value=rng.randrange(1, 6))
    if kind == "iv":
        return Expr("iv", name=_choice(rng, ivs))
    if kind == "acc":
        return Expr("acc")
    if kind == "load":
        return Expr("load", array=_choice(rng, data_arrays),
                    subscript=Subscript(affine=_affine(rng, ivs)))
    op = _weighted(rng, [("add", 5), ("sub", 2), ("mul", 3),
                         ("and", 1), ("or", 1), ("xor", 2)])
    return Expr(
        "bin", op=op,
        lhs=_expr(rng, ivs, data_arrays, depth - 1, acc_ok),
        rhs=_expr(rng, ivs, data_arrays, depth - 1, acc_ok),
    )


def _guard(rng, ivs, bounds) -> Guard:
    affine = _affine(rng, ivs, max_const=1)
    if not affine.coeffs and ivs:
        affine.coeffs[_choice(rng, ivs)] = 1
    if rng.random() < 0.6:
        return Guard(affine=affine, op=_choice(rng, ("eq", "ne")),
                     rhs=rng.randrange(2), parity=True)
    hi = _affine_hi(affine, bounds)
    return Guard(affine=affine, op=_choice(rng, ("lt", "le", "gt", "ge")),
                 rhs=rng.randrange(max(hi, 1)), parity=False)


def _walk_stmt_exprs(stmt):
    stack = [stmt.expr]
    while stack:
        e = stack.pop()
        if e.kind == "bin":
            stack.extend((e.lhs, e.rhs))
        else:
            yield e


def _subscripts_of(nest: NestSpec):
    """Every (subscript, array) access the nest makes, loads and stores."""
    for stmt in nest.stmts:
        if isinstance(stmt, StoreStmt):
            yield stmt.subscript, stmt.array
        else:
            yield stmt.out_subscript, stmt.out_array
        for e in _walk_stmt_exprs(stmt):
            if e.kind == "load":
                yield e.subscript, e.array


def generate_spec(seed: int, index: int = 0) -> KernelSpec:
    """Deterministically sample one kernel spec at ``(seed, index)``."""
    rng = random.Random((seed << 20) ^ index)

    n_nests = _weighted(rng, [(1, 7), (2, 3)])
    n_data = rng.randrange(2, 4)
    data_arrays = [f"a{d}" for d in range(n_data)]
    want_index_array = rng.random() < 0.55

    nests: List[NestSpec] = []
    for ni in range(n_nests):
        tag = _NEST_TAGS[ni]
        depth = _weighted(rng, [(1, 5), (2, 4), (3, 1)])
        loops = [
            LoopSpec(iv=f"{tag}{_IV_NAMES[li]}",
                     bound=rng.randrange(2, 7))
            for li in range(depth)
        ]
        ivs = [lp.iv for lp in loops]
        bounds = {lp.iv: lp.bound for lp in loops}
        outer_ivs = ivs[:-1]

        stmts: List[object] = []

        # Statement 1: guaranteed may-RAW read-modify-write store.
        target = _choice(rng, data_arrays)
        if rng.random() < 0.25:
            # Distance-1 recurrence: t[iv + 1] = f(t[iv]).
            iv = ivs[-1]
            load = Expr("load", array=target,
                        subscript=Subscript(affine=Affine(coeffs={iv: 1})))
            value = _weighted(rng, [
                (Expr("bin", op="add", lhs=load,
                      rhs=Expr("const", value=rng.randrange(1, 4))), 3),
                (Expr("bin", op="mul", lhs=load,
                      rhs=Expr("bin", op="add",
                               lhs=Expr("iv", name=iv),
                               rhs=Expr("const", value=1))), 2),
            ])
            stmts.append(StoreStmt(
                array=target,
                subscript=Subscript(affine=Affine(const=1,
                                                  coeffs={iv: 1})),
                expr=value,
            ))
        else:
            sub = Subscript(affine=_affine(rng, ivs))
            load = Expr("load", array=target, subscript=sub)
            rhs = _expr(rng, ivs, data_arrays, depth=1)
            op = _choice(rng, ("add", "xor", "sub"))
            guard = _guard(rng, ivs, bounds) if rng.random() < 0.3 else None
            stmts.append(StoreStmt(
                array=target,
                subscript=Subscript(affine=Affine(const=sub.affine.const,
                                                  coeffs=dict(
                                                      sub.affine.coeffs))),
                expr=Expr("bin", op=op, lhs=load, rhs=rhs),
                guard=guard,
            ))

        # Statement 2 (sometimes): a reduction or an extra store.  It may
        # only touch arrays statement 1 leaves alone: a same-iteration
        # store->load (or load->store) pair across *independent*
        # statements has no dataflow edge ordering the two accesses, so
        # under PreVV a may-alias between them replays the very race it
        # squashed — a deterministic livelock, not a detectable bug.
        # Within one statement the value loads feed the store, and
        # cross-iteration races resolve because the older iteration's
        # commit survives the squash; only this cross-statement shape is
        # excluded.
        conflict = {target}
        for e in _walk_stmt_exprs(stmts[0]):
            if e.kind == "load":
                conflict.add(e.array)
        free_arrays = [a for a in data_arrays if a not in conflict]
        extra = rng.random()
        if extra < 0.25 and free_arrays:
            stmts.append(ReduceStmt(
                op=_choice(rng, ("add", "xor")),
                expr=_expr(rng, ivs, free_arrays, depth=1, acc_ok=True),
                out_array=_choice(rng, free_arrays),
                out_subscript=Subscript(
                    affine=_affine(rng, outer_ivs, max_const=2)),
                init=rng.randrange(3),
            ))
        elif extra < 0.5 and free_arrays:
            guard = _guard(rng, ivs, bounds) if rng.random() < 0.4 else None
            stmts.append(StoreStmt(
                array=_choice(rng, free_arrays),
                subscript=Subscript(affine=_affine(rng, ivs)),
                expr=_expr(rng, ivs, free_arrays, depth=2),
                guard=guard,
            ))

        nests.append(NestSpec(tag=tag, loops=loops, stmts=stmts))

    # Phase 2: size every array to cover the maximum statically
    # reachable subscript (uniform size keeps indirection trivially in
    # bounds: index values are capped at size - 1).
    max_hi = 1
    for nest in nests:
        bounds = {lp.iv: lp.bound for lp in nest.loops}
        for sub, _array in _subscripts_of(nest):
            max_hi = max(max_hi, _affine_hi(sub.affine, bounds) + sub.offset)
    size = max_hi + 2

    arrays: Dict[str, ArraySpec] = {}
    for d, name in enumerate(data_arrays):
        arrays[name] = ArraySpec(
            size=size,
            init_seed=100 + (seed % 1000) * 7 + d,
            lo=0,
            hi=min(size - 1, 9),
        )
    if want_index_array:
        arrays["idx"] = ArraySpec(
            size=size,
            init_seed=500 + (seed % 1000) * 3,
            lo=0,
            hi=size - 1,
        )

    # Phase 3 (sizes known): some loads become indirect.  Store
    # subscripts stay affine so the interpreter/golden memory exercises
    # both prover outcomes (affine stores vs non-affine loads).
    if want_index_array:
        for nest in nests:
            for stmt in nest.stmts:
                for e in _walk_stmt_exprs(stmt):
                    if (
                        e.kind == "load"
                        and e.array != "idx"
                        and e.subscript.indirect is None
                        and rng.random() < 0.35
                    ):
                        e.subscript.indirect = "idx"

    spec = KernelSpec(
        name=f"fuzz_s{seed}_k{index}",
        arrays=arrays,
        nests=nests,
    )
    validate_spec(spec)
    return spec
