"""PVFuzz: random kernel generation + differential fuzzing of the engines.

The package turns the equivalence/soundness machinery built in PRs 2-6
(four bit-identical scalar engines, the lockstep vector engine, the PVSan
sequential-consistency oracle and the PVSan/PVPerf static provers) into a
bug-finding loop:

* :mod:`repro.fuzz.spec` — a serializable grammar of fully-nested loop
  kernels (the shape :class:`repro.kernels.Kernel` requires) and its
  translation to :mod:`repro.ir` via the existing builders;
* :mod:`repro.fuzz.generator` — seeded random sampling of that grammar:
  loop depth/bounds, affine and indirect subscripts, loop-carried
  recurrences, conditional stores and reductions;
* :mod:`repro.fuzz.harness` — the differential check: every engine and
  config against the :class:`~repro.dataflow.ReferenceSimulator`, the
  interpreter golden memory, the SC oracle, and the static depth/II
  bounds;
* :mod:`repro.fuzz.shrink` — delta debugging of a failing spec down to a
  minimal reproducer;
* :mod:`repro.fuzz.corpus` — the committed regression corpus under
  ``tests/fuzz/corpus/`` (shrunk failures become tier-1 tests forever);
* ``python -m repro.fuzz`` — the CLI entry point with JSONL reporting.
"""

from .spec import (
    Affine,
    ArraySpec,
    Guard,
    KernelSpec,
    LoopSpec,
    NestSpec,
    ReduceStmt,
    StoreStmt,
    instruction_count,
    spec_from_dict,
    spec_to_kernel,
    validate_spec,
)
from .generator import generate_spec
from .harness import (
    DEFAULT_ENGINES,
    Divergence,
    KernelReport,
    check_kernel,
    check_spec,
    configs_from_names,
    sabotage_kill_index_check,
)
from .shrink import shrink_spec
from .corpus import (
    CorpusEntry,
    corpus_entries,
    default_corpus_dir,
    load_entry,
    load_spec,
    save_spec,
)

__all__ = [
    "Affine",
    "ArraySpec",
    "Guard",
    "KernelSpec",
    "LoopSpec",
    "NestSpec",
    "ReduceStmt",
    "StoreStmt",
    "instruction_count",
    "spec_from_dict",
    "spec_to_kernel",
    "validate_spec",
    "generate_spec",
    "DEFAULT_ENGINES",
    "Divergence",
    "KernelReport",
    "check_kernel",
    "check_spec",
    "configs_from_names",
    "sabotage_kill_index_check",
    "shrink_spec",
    "CorpusEntry",
    "corpus_entries",
    "default_corpus_dir",
    "load_entry",
    "load_spec",
    "save_spec",
]
