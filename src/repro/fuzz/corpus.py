"""The committed regression corpus: shrunk failures that live forever.

Each corpus entry is one JSON file holding a serialized
:class:`~repro.fuzz.spec.KernelSpec` plus provenance (why it was saved,
which invariant it violated, the shrink trajectory) and a *status*:

* ``guard`` — the failure has been fixed (or was induced by a deliberate
  sabotage); the replay test re-runs the full differential harness and
  demands a clean report, so the bug staying fixed is a tier-1 fact;
* ``open`` — a real, still-unfixed finding; the replay test demands the
  failure *still reproduces*, so whoever fixes it is forced to flip the
  entry to ``guard`` (and the corpus doubles as the model's known-issue
  tracker).

The parametrized replay test lives in
``tests/fuzz/test_corpus_replay.py``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .spec import KernelSpec, spec_from_dict

#: corpus schema version, bumped on incompatible spec-format changes
CORPUS_VERSION = 1

#: valid entry statuses
STATUSES = ("guard", "open")


@dataclass
class CorpusEntry:
    """One committed corpus file, decoded."""

    filename: str
    spec: KernelSpec
    status: str = "guard"
    reason: str = ""
    invariant: str = ""
    provenance: Dict[str, object] = field(default_factory=dict)


def default_corpus_dir() -> str:
    """``tests/fuzz/corpus`` relative to the repository root.

    Resolved from this file's location (``src/repro/fuzz`` -> repo root)
    so the CLI and the replay test agree without configuration; callers
    outside a source checkout pass an explicit directory instead.
    """
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "fuzz", "corpus")


def save_spec(
    spec: KernelSpec,
    directory: Optional[str] = None,
    reason: str = "",
    invariant: str = "",
    status: str = "guard",
    provenance: Optional[Dict[str, object]] = None,
) -> str:
    """Write one spec (+ provenance) to the corpus; returns the path."""
    if status not in STATUSES:
        raise ValueError(f"status must be one of {STATUSES}, not {status!r}")
    directory = directory or default_corpus_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{spec.name}.json")
    payload = {
        "version": CORPUS_VERSION,
        "status": status,
        "reason": reason,
        "invariant": invariant,
        "provenance": provenance or {},
        "spec": spec.to_dict(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_entry(path: str) -> CorpusEntry:
    """Read one corpus file back into a :class:`CorpusEntry`."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("version") != CORPUS_VERSION:
        raise ValueError(
            f"{path}: corpus version {payload.get('version')!r}"
            f" != {CORPUS_VERSION}"
        )
    status = payload.get("status", "guard")
    if status not in STATUSES:
        raise ValueError(f"{path}: unknown status {status!r}")
    return CorpusEntry(
        filename=os.path.basename(path),
        spec=spec_from_dict(payload["spec"]),
        status=status,
        reason=payload.get("reason", ""),
        invariant=payload.get("invariant", ""),
        provenance=payload.get("provenance", {}),
    )


def load_spec(path: str) -> KernelSpec:
    """Read one corpus entry's spec (provenance discarded)."""
    return load_entry(path).spec


def corpus_entries(
    directory: Optional[str] = None,
) -> List[CorpusEntry]:
    """All corpus entries, sorted by filename."""
    directory = directory or default_corpus_dir()
    if not os.path.isdir(directory):
        return []
    return [
        load_entry(os.path.join(directory, name))
        for name in sorted(os.listdir(directory))
        if name.endswith(".json")
    ]
