"""``python -m repro.fuzz.lint_corpus`` — lint every committed corpus spec.

Every corpus entry is a shrunk, committed reproducer of a real past
divergence.  This CLI replays each one through the full static lint
stack — IR, circuit, PreVV, sanitize, perf and occupancy layers — under
the hardware configuration recorded in its provenance, arming the
measured occupancy cross-check (PV504) on ``guard`` entries (``open``
entries still crash at runtime by contract, so only the static layers
can speak about them).

Exit codes follow ``python -m repro.lint``:

* ``0`` — every entry clean (no warning-or-worse diagnostic);
* ``1`` — an error diagnostic anywhere: a guard regressed, or a static
  layer went unsound on a committed reproducer;
* ``2`` — warnings only.

With ``--out`` the diagnostics are also written as JSON Lines (one
run-metadata object, then one object per diagnostic), the CI artifact
format shared with the lint CLI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..analysis.lint.diagnostics import LintReport
from ..analysis.lint.driver import run_passes
from ..analysis.lint.registry import LAYERS, LintContext
from ..compile import compile_function
from .corpus import CorpusEntry, corpus_entries
from .harness import configs_from_names
from .spec import spec_to_kernel


def lint_entry(entry: CorpusEntry, max_cycles: int = 400_000) -> LintReport:
    """Full-stack lint of one corpus entry under its provenance config."""
    kernel = spec_to_kernel(entry.spec)
    fn = kernel.build_ir()
    config_name = str(entry.provenance.get("config", "prevv16"))
    config = configs_from_names([config_name])[0]
    build = compile_function(fn, config, args=kernel.args)

    occupancy_measured = None
    if entry.status == "guard":
        from ..analysis.occupancy import measure_build

        measured_build = compile_function(fn, config, args=kernel.args)
        measured_build.memory.initialize(kernel.memory_init)
        occupancy_measured = measure_build(
            measured_build, max_cycles=max_cycles
        )

    ctx = LintContext(
        fn=fn,
        circuit=build.circuit,
        build=build,
        config=config,
        analysis=build.analysis,
        kernel=kernel,
        occupancy_measured=occupancy_measured,
        report=LintReport(
            subject=f"{entry.spec.name}[{config.name}:{entry.status}]"
        ),
    )
    return run_passes(ctx)


def _emit_jsonl(reports: List[LintReport], stream) -> None:
    stream.write(json.dumps(
        {"meta": "lint-corpus", "armed_layers": list(LAYERS)},
        sort_keys=True,
    ) + "\n")
    records = []
    for report in reports:
        for diag in report.diagnostics:
            record = {"subject": report.subject}
            record.update(diag.to_dict())
            records.append(record)
    records.sort(
        key=lambda r: (
            r["subject"], r["code"], r["location"], r["message"], r["pass"]
        )
    )
    for record in records:
        stream.write(json.dumps(record, sort_keys=True) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.lint_corpus",
        description="Replay every committed fuzz-corpus spec through the "
        "full lint stack (including the PVBound occupancy layer, with "
        "the measured PV504 cross-check armed on guard entries).",
    )
    parser.add_argument(
        "--corpus", default=None,
        help="corpus directory (default: tests/fuzz/corpus)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=400_000,
        help="simulation budget for the measured occupancy run",
    )
    parser.add_argument(
        "--out", default=None,
        help="also write diagnostics as JSON Lines to this path",
    )
    ns = parser.parse_args(argv)

    entries = corpus_entries(ns.corpus)
    if not entries:
        print("no corpus entries found", file=sys.stderr)
        return 1

    reports = []
    for entry in entries:
        report = lint_entry(entry, max_cycles=ns.max_cycles)
        reports.append(report)
        print(report.format(), end="\n")

    if ns.out:
        with open(ns.out, "w") as fh:
            _emit_jsonl(reports, fh)

    if any(r.errors for r in reports):
        return 1
    if any(r.warnings for r in reports):
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
