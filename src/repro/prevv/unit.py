"""The PreVV unit: arbiter + premature queue for one validation group.

This component reproduces Fig. 3/Fig. 5 for one (reduced) group of
ambiguous operations on a single array:

* each static member operation is a **port** (``p0 .. p{n-1}``) whose
  channel delivers packed ``(index, value)`` tokens — the output of the
  LMerge/SMerge data-collection path — plus fake tokens (Sec. V-C) and the
  end-of-nest done token;
* arrivals are re-ordered per port by their iteration tag, then the
  arbiter processes up to one load-side and one store-side operation per
  cycle (the LMerge/SMerge + comparator structure of Fig. 5);
* each processed operation is validated against the premature queue
  (Eqs. 2-5 with the ROM resolving same-iteration ties) and then stored;
* violations raise a squash request to the
  :class:`~repro.prevv.replay.SquashController` with the erroneous
  iteration, flushing the pipeline behind it;
* entries retire from the head once every port has advanced past them —
  fake and done tokens are exactly what guarantees this always happens
  (the Fig. 6 deadlock is the behaviour with fakes disabled).

Validation is *value-based* (the paper's key idea, echoing value-based
memory ordering in CPUs): a reordering whose values happen to match is
benign and costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dataflow.component import Component
from ..dataflow.token import Token
from ..memory.ram import Memory
from .premature_queue import PrematureQueue
from .properties import ITER_DONE, PTuple
from .replay import SquashController


@dataclass
class PortConfig:
    """Static description of one member operation of the group."""

    kind: str        # "load" | "store"
    array: str
    domain: int      # squash domain (innermost loop body) of the op
    phase: int       # program order of the op's loop nest
    rom_pos: int     # static order inside the body (the arbiter ROM)


class PreVVUnit(Component):
    """Premature-value-validation unit for one ambiguous group."""

    resource_class = "prevv_unit"
    # Acceptance-policy features, keyed on by the static occupancy model
    # (repro.analysis.occupancy) so its transition system describes the
    # implemented arbiter and the PV502 regression test can model the
    # pre-fix semantics by flipping them off in the *model* only.
    #: Full-queue escape also admits version-pinning ports when the head
    #: is position-retirable but version-blocked (cross-phase handoff).
    FULL_QUEUE_VERSION_RELEASE = True
    #: Escape admissions reserve enough physical slots for the records
    #: already pulled from the ports, making slack overflow unreachable.
    FULL_QUEUE_PHYSICAL_GUARD = True
    # Scheduling contract: the unit is a pure consumer — it has no output
    # channels at all, so no input valid can ever be carried to an output
    # valid (the valid wave terminates here) and there is no output ready
    # to observe.  Input valids/data steer only the readies it grants.
    forwards_valid = False
    observes_output_ready = False
    scheduling_contract_audited = True

    def __init__(
        self,
        name: str,
        memory: Memory,
        controller: SquashController,
        ports: List[PortConfig],
        queue_depth: int,
        validations_per_cycle: int = 2,
        reorder_window: int = 8,
        addr_width: int = 32,
        data_width: int = 32,
    ):
        super().__init__(name)
        self.memory = memory
        self.controller = controller
        self.ports = ports
        self.queue = PrematureQueue(
            queue_depth,
            slack=(reorder_window + 1) * max(1, len(ports)) + 8,
        )
        self.validations_per_cycle = validations_per_cycle
        self.reorder_window = reorder_window
        self.addr_width = addr_width
        self.data_width = data_width
        # Per port: next expected iteration and the tag-keyed reorder buffer.
        self._expected: List[int] = [0] * len(ports)
        self._pending: List[Dict[int, PTuple]] = [dict() for _ in ports]
        # Highest memory version observed per port (loads: read version,
        # stores: commit serial). Monotone per port because each port's
        # memory accesses happen in program order; gates retirement so an
        # entry outlives every in-flight operation that raced it.
        self._last_version: List[int] = [0] * len(ports)
        self._notified_points: Dict[int, int] = {}
        # Highest real (non-fake) iteration decoded per port, and the
        # memory-controller port observing the same operation; together
        # they prove "nothing in flight" for the version bound below.
        self._last_real_iter: List[int] = [-1] * len(ports)
        self._mc_link: List = [None] * len(ports)  # (mc, kind, port_idx)
        controller.register_unit(self)
        # Optional PVSan SC-oracle adapter observing every arbiter
        # decision (process/violation); attached by the sanitizer runner,
        # never by the builder.  Must stay purely observational.
        self.sanitizer = None
        # Statistics
        self.violations = 0
        self.violations_by_kind = {"raw": 0, "war": 0, "waw": 0}
        self.benign_reorders = 0
        self.fake_tokens = 0
        self.processed_ops = 0
        self._port_chs = None  # lazy (port_idx, channel) list, wiring-static
        # Per-channel decode cache: id(channel) -> [token, decoded record].
        # A channel offers one token until it fires, but the fixpoint
        # engine may evaluate _accepts many times per cycle — decode once
        # per *token* (identity-keyed; tokens are immutable) and reuse the
        # record at the clock edge too.
        self._dcache: Dict[int, list] = {}
        # Cached result of _next_processable(), invalidated whenever its
        # inputs (_pending contents, _expected) change: arrivals,
        # processing, squash.  is_busy polls every quiet cycle; without
        # the cache each poll rescans every port's pending dict.
        self._np_result: Optional[Tuple[int, PTuple]] = None
        self._np_valid = False

    # ------------------------------------------------------------------
    # Elastic interface
    # ------------------------------------------------------------------
    def port_name(self, i: int) -> str:
        return f"p{i}"

    def fake_port_name(self, i: int) -> str:
        return f"p{i}_fake"

    def done_port_name(self, i: int) -> str:
        return f"p{i}_done"

    def _port_channels(self):
        """(port_idx, channel) pairs for every connected port channel.

        Real, fake and done packets arrive on *separate* channels so a
        fast fake path cannot head-of-line-block the slow real path of
        the same port (and vice versa) inside an external merge.  Wiring
        is static once simulation starts, so the list is computed once.
        """
        cached = self._port_chs
        if cached is None:
            cached = []
            for i in range(len(self.ports)):
                for name in (
                    self.port_name(i),
                    self.fake_port_name(i),
                    self.done_port_name(i),
                ):
                    ch = self.inputs.get(name)
                    if ch is not None:
                        cached.append((i, ch))
            self._port_chs = cached
        return cached

    def _accepts(self, port_idx: int, ch) -> bool:
        """Acceptance: reorder-window room, in-window iteration, and
        architectural backpressure when the premature queue is full
        (Fig. 4c) with the liveness escape for a starving validator side."""
        pending = self._pending[port_idx]
        if len(pending) >= self.reorder_window:
            return False
        if not ch.valid or ch.data is None:
            # Only grant ready once the offered token is inspectable;
            # granting earlier in the fixpoint would bypass the window
            # checks below (ready is monotone and cannot be retracted).
            return False
        record = self._decode_cached(port_idx, ch)
        expected = self._expected[port_idx]
        window_top = expected + self.reorder_window
        if not record.done and record.iteration >= window_top:
            return False  # too far ahead: wait at the channel
        if record.iteration != expected and (
            len(pending) >= self.reorder_window - 1
        ):
            # Reserve the last slot for the expected iteration: each
            # channel delivers in iteration order, so the expected record
            # is always at the head of the channel carrying it and the
            # reservation guarantees it can always enter.
            return False
        if record.done or record.fake:
            return True   # no queue slot needed
        if not self.queue.is_full:
            return True
        # Full queue (Fig. 4c): backpressure with two liveness escapes,
        # both bounded by the physical-slot reservation guard so an
        # admission can never push the queue past its physical capacity.
        #
        # Escape 1 — position-blocked head: the only real operation still
        # admitted is the one holding back the retirement watermark;
        # processing it is what lets the head entries validate and free
        # space. Everything else stalls, which is exactly the
        # backpressure that makes Depth_q a performance knob.
        no_real_pending = all(r.done or r.fake for r in pending.values())
        if no_real_pending and port_idx == self._watermark_port():
            return self._escape_slack_available()
        # Escape 2 — version-blocked head (cross-phase handoff): every
        # port's position is already past the head, but some port may
        # still deliver an operation that *raced* the head — typically a
        # later nest's premature load the controller granted before this
        # arbiter saw any real op on that port, which pins
        # _port_version_bound at the conservative value.  Admitting the
        # watermark port cannot help (its position no longer bounds
        # retirement; every push only burns physical slack — the
        # queue_overflow_cross_phase_min fuzz finding).  Instead admit
        # exactly the next expected record of each pinning port:
        # processing it either raises that port's version bound past the
        # head or detects the violation and squashes — both unblock
        # retirement.
        if self.FULL_QUEUE_VERSION_RELEASE:
            head = self.queue.peek_head()
            if (
                head is not None
                and head.version is not None
                and (head.phase, head.iteration) < self._watermark()
                and record.iteration == self._expected[port_idx]
                and self._port_version_bound(port_idx) < head.version
            ):
                return self._escape_slack_available()
        return False

    def _escape_slack_available(self) -> bool:
        """Room for a full-queue escape admission in the physical slots.

        Every real record currently pending in a reorder window will be
        pushed without any further channel acceptance, and at most one
        real record per port can be accepted this cycle; reserving both
        keeps next cycle's occupancy at or below the physical depth, so
        :class:`QueueOverflowError` is structurally unreachable.  Healthy
        runs sit far below the threshold (physical depth is architectural
        depth + (window+1)*ports + 8) and pay one comparison.
        """
        if not self.FULL_QUEUE_PHYSICAL_GUARD:
            return True
        pending_real = sum(
            1
            for pending in self._pending
            for r in pending.values()
            if not (r.done or r.fake)
        )
        return (
            self.queue.occupancy + pending_real + len(self.ports)
            <= self.queue.physical_depth
        )

    def propagate(self) -> None:
        for i, ch in self._port_channels():
            if self._accepts(i, ch):
                self.drive_ready(ch.consumer_port, True)

    def attach_mc_port(self, port_idx: int, mc, kind: str, mc_port: int) -> None:
        """Link a unit port to the controller port carrying the same op."""
        self._mc_link[port_idx] = (mc, kind, mc_port)
        mc.set_port_domain(kind, mc_port, self.ports[port_idx].domain)

    def _advance_version(self, port_idx: int, version) -> None:
        if version is not None and version > self._last_version[port_idx]:
            self._last_version[port_idx] = version

    def tick(self):
        # 0. Account backpressure once per cycle at the clock edge (doing
        # it in propagate would tie the statistic to the fixpoint engine's
        # evaluation count).
        if self.queue.is_full:
            self.queue.record_full_stall()
        changed = False
        # 1. Pull arrivals into the reorder buffers.
        for i, ch in self._port_channels():
            if ch.fires:
                record = self._decode_cached(i, ch)
                self._pending[i][record.iteration] = record
                changed = True
                if not record.fake and not record.done:
                    if record.iteration > self._last_real_iter[i]:
                        self._last_real_iter[i] = record.iteration
        # 2. Process in program order. Real operations are bounded per cycle
        # by the comparator bandwidth (Fig. 5); fake and done markers only
        # advance counters (a register update in hardware), so they do not
        # consume validation slots.
        budget = self.validations_per_cycle
        marker_budget = 4 * max(1, len(self.ports))
        if changed:
            self._np_valid = False
        while budget > 0 and marker_budget > 0:
            choice = self._next_processable()
            if choice is None:
                break
            port_idx, record = choice
            if record.fake or record.done:
                marker_budget -= 1
            else:
                budget -= 1
            del self._pending[port_idx][record.iteration]
            changed = True
            squashed_self = self._process(port_idx, record)
            if not squashed_self:
                if record.done:
                    self._expected[port_idx] = ITER_DONE
                else:
                    self._expected[port_idx] = record.iteration + 1
            self._np_valid = False
            if squashed_self:
                break
        # 3. Retire entries no future arrival can accuse.
        if self._retire():
            changed = True
        # Change report for the incremental engine: everything the
        # propagate above reads (_pending sizes, _expected, queue
        # occupancy/fullness) only moves through the branches that set
        # ``changed``; squash-path mutations happen in the controller's
        # end-of-cycle hook, which independently forces a full sweep.
        return changed

    # ------------------------------------------------------------------
    # Decoding / ordering
    # ------------------------------------------------------------------
    def _decode_cached(self, port_idx: int, ch) -> PTuple:
        """Decode the channel's offered token at most once.

        Identity-keyed: tokens are immutable and a channel holds one token
        object until it fires, so ``cell[0] is token`` proves the cached
        record is the decode of exactly this offer.  A squash replaces the
        offered token object (or re-offers the same immutable token, whose
        decode is identical), so no explicit invalidation is needed.
        """
        token = ch.data
        cell = self._dcache.get(id(ch))
        if cell is not None and cell[0] is token:
            return cell[1]
        record = self._decode(port_idx, token)
        self._dcache[id(ch)] = [token, record]
        return record

    def _decode(self, port_idx: int, token: Token) -> PTuple:
        # The record aliases the token's tag dict instead of copying it:
        # tokens are immutable and nothing mutates PTuple.tags, the squash
        # predicate only reads it.
        cfg = self.ports[port_idx]
        payload = token.value
        iteration = token.tag(cfg.domain)
        if isinstance(payload, tuple) and payload and payload[0] == "fake":
            return PTuple(
                op="fake", index=-1, value=0, phase=cfg.phase,
                iteration=iteration, rom_pos=cfg.rom_pos, domain=cfg.domain,
                port=port_idx, fake=True, tags=token.tags,
            )
        if isinstance(payload, tuple) and payload and payload[0] == "done":
            # The exit token's tag is the last executed iteration; the done
            # marker therefore occupies slot tag + 1 so it is processed only
            # after every real iteration of this port.
            return PTuple(
                op="done", index=-1, value=0, phase=cfg.phase,
                iteration=iteration + 1, rom_pos=cfg.rom_pos,
                domain=cfg.domain, port=port_idx, done=True,
                tags=token.tags,
            )
        index, value = payload
        return PTuple(
            op=cfg.kind, index=int(index), value=value, phase=cfg.phase,
            iteration=iteration, rom_pos=cfg.rom_pos, domain=cfg.domain,
            port=port_idx, version=token.version, tags=token.tags,
        )

    def _next_processable(self) -> Optional[Tuple[int, PTuple]]:
        """Oldest (by program position) pending record at its port's turn.

        Cached between calls: the result depends only on ``_pending`` and
        ``_expected``, so it is recomputed only after an arrival, a
        processed record, or a squash invalidated it (``_np_valid``).
        """
        if self._np_valid:
            return self._np_result
        best: Optional[Tuple[int, PTuple]] = None
        for i, pending in enumerate(self._pending):
            record = pending.get(self._expected[i])
            if record is None and pending:
                # A done marker may sit above the expected slot when the
                # loop ran zero iterations for the remaining ports.
                for it, cand in pending.items():
                    if cand.done and it <= self._expected[i]:
                        record = cand
                        break
            if record is None:
                continue
            if best is None or record.position < best[1].position:
                best = (i, record)
        self._np_result = best
        self._np_valid = True
        return best

    # ------------------------------------------------------------------
    # Validation (Eqs. 2-5 generalized)
    # ------------------------------------------------------------------
    def _flag_violation(
        self, kind: str, observed, reference, accused: PTuple
    ) -> None:
        """Account one detected violation (Eqs. 2-5 mismatch).

        ``observed`` is the value the accused operation carried,
        ``reference`` the value program order says it should have seen —
        the very comparison the arbiter just made, handed to the PVSan
        oracle so it can flag squashes on *equal* values as spurious.
        """
        self.violations += 1
        self.violations_by_kind[kind] += 1
        if self.sanitizer is not None:
            self.sanitizer.on_violation(self, kind, observed, reference, accused)

    def _process(self, port_idx: int, record: PTuple) -> bool:
        """Validate ``record``; returns True when its own iteration squashes."""
        self.processed_ops += 1
        if self.sanitizer is not None:
            self.sanitizer.on_process(self, port_idx, record)
        if record.done:
            self._advance_version(port_idx, ITER_DONE)
            return False
        if record.fake:
            self.fake_tokens += 1
            return False
        cfg = self.ports[port_idx]
        if record.op == "store":
            write = self.memory.find_record(
                cfg.array, record.index, record.domain, record.iteration
            )
            if write is not None:
                record.old_value = write.old_value
                record.version = write.serial
            else:
                # The controller has not committed this store yet (port
                # contention); the current content is still the old value
                # and the commit serial is resolved lazily at retirement.
                record.old_value = self.memory.load(cfg.array, record.index)
                record.version = None
            squashed = self._validate_store(record)
        else:
            squashed = self._validate_load(record)
        if not squashed:
            self._advance_version(port_idx, record.version)
            self.queue.push(record)
        return squashed

    def _same_index(self, record: PTuple):
        # O(matching entries): the queue maintains the index→entries map
        # incrementally; the list is already in head→tail order.
        return self.queue.entries_for(record.index)

    def _validate_store(self, store: PTuple) -> bool:
        """Arriving store: accuse younger queued ops that used stale data."""
        entries = self._same_index(store)
        stores = sorted(
            [e for e in entries if e.op == "store"] + [store],
            key=lambda e: e.position,
        )
        for entry in entries:
            if entry.position <= store.position:
                if (
                    entry.op == "load"
                    and entry.version is not None
                    and store.version is not None
                    and entry.version >= store.version
                    and entry.value != store.old_value
                ):
                    # WAR: the program-older load read memory *after* this
                    # store committed (versions prove it) and saw the wrong
                    # value: replay from the load's iteration.
                    self._flag_violation(
                        "war", entry.value, store.old_value, entry
                    )
                    self.controller.request_squash(
                        entry.domain, entry.iteration
                    )
                    self.controller.request_squash(
                        store.domain, store.iteration
                    )
                    return True
                continue
            if entry.op == "load":
                # Eq. (2)-(5): the younger load should hold the value of the
                # latest store older than it (including the arrival).
                older = [s for s in stores if s.position < entry.position]
                expected = older[-1].value if older else None
                if expected is not None and entry.value != expected:
                    self._flag_violation("raw", entry.value, expected, entry)
                    self.controller.request_squash(entry.domain, entry.iteration)
                    return False
                self.benign_reorders += 1
            elif entry.value != store.value:
                # Store/store inversion: the younger store committed first;
                # memory would end with the wrong value. Replay the younger.
                self._flag_violation("waw", entry.value, store.value, entry)
                self.controller.request_squash(entry.domain, entry.iteration)
                return False
        return False

    def _validate_load(self, load: PTuple) -> bool:
        """Arriving load: check against both older and younger stores."""
        entries = self._same_index(load)
        older_stores = [
            e for e in entries
            if e.op == "store" and e.position < load.position
        ]
        if older_stores:
            latest = max(older_stores, key=lambda e: e.position)
            if load.value != latest.value:
                # The load raced ahead of an older store's commit (classic
                # RAW): its own iteration must replay.
                self._flag_violation("raw", load.value, latest.value, load)
                self.controller.request_squash(load.domain, load.iteration)
                return True
            self.benign_reorders += 1
        younger_stores = [
            e for e in entries
            if e.op == "store" and e.position > load.position
        ]
        if younger_stores:
            earliest = min(younger_stores, key=lambda e: e.position)
            if earliest.old_value is not None and load.value != earliest.old_value:
                # WAR: a younger store overwrote memory before this older
                # load read it. Replay the load and the stores behind it.
                self._flag_violation(
                    "war", load.value, earliest.old_value, load
                )
                self.controller.request_squash(load.domain, load.iteration)
                self.controller.request_squash(
                    earliest.domain, earliest.iteration
                )
                return True
            self.benign_reorders += 1
        return False

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def _port_position(self, i: int) -> Tuple[int, int]:
        cfg = self.ports[i]
        if self._expected[i] >= ITER_DONE:
            # The port's nest has finished: it can never accuse anything
            # again, so it no longer bounds retirement in any phase.
            return (ITER_DONE, ITER_DONE)
        return (cfg.phase, self._expected[i])

    def _watermark(self) -> Tuple[int, int]:
        return min(self._port_position(i) for i in range(len(self.ports)))

    def _watermark_port(self) -> int:
        """Port whose expected position bounds retirement (the laggard)."""
        return min(
            range(len(self.ports)), key=lambda i: self._port_position(i)
        )

    def _resolve_pending_versions(self) -> None:
        for entry in self.queue.entries():
            if entry.op == "store" and entry.version is None:
                cfg = self.ports[entry.port]
                write = self.memory.find_record(
                    cfg.array, entry.index, entry.domain, entry.iteration
                )
                if write is not None:
                    entry.version = write.serial
                    self._advance_version(entry.port, write.serial)

    def _port_version_bound(self, i: int) -> int:
        """Lower bound on the memory version of this port's future arrivals.

        Per-port accesses happen in program order, so their versions are
        monotone in iteration order: the bound is the version of the *next
        real record this port will process*.  Walking the consecutive run
        of pending records from the expected slot, the first real one
        supplies it (pending stores resolve their commit serial through
        the memory log — the controller commits independently of the
        arbiter).  When nothing real is pending and the controller has no
        operation in flight toward the arbiter, everything still to come
        will access memory later than now, i.e. at ``memory.version`` or
        above; otherwise only the last processed version is guaranteed.
        """
        cfg = self.ports[i]
        it = self._expected[i]
        while it in self._pending[i]:
            record = self._pending[i][it]
            if record.done:
                return ITER_DONE
            if not record.fake:
                version = record.version
                if version is None and record.op == "store":
                    write = self.memory.find_record(
                        cfg.array, record.index, record.domain,
                        record.iteration,
                    )
                    if write is not None:
                        version = write.serial
                        record.version = version
                if version is None:
                    # Unresolved pending store: only the last processed
                    # version is a safe lower bound.
                    return self._last_version[i]
                return max(self._last_version[i], version)
            it += 1
        link = self._mc_link[i]
        if link is not None:
            mc, kind, mc_port = link
            progress = (
                mc.load_progress.get(mc_port, -1)
                if kind == "load"
                else mc.store_progress.get(mc_port, -1)
            )
            if progress <= self._last_real_iter[i]:
                return max(self._last_version[i], self.memory.version)
        return self._last_version[i]

    def _min_version(self) -> int:
        if not self.ports:
            return 0
        return min(
            self._port_version_bound(i) for i in range(len(self.ports))
        )

    def _retire(self) -> bool:
        """Retire validated head entries; True when anything was popped."""
        if self.controller.has_pending_squash():
            # A violation was detected this cycle and its squash executes
            # at the clock edge; retiring (and advancing retire points) now
            # could prune the very replay state the squash needs.
            return False
        self._resolve_pending_versions()
        watermark = self._watermark()
        min_version = self._min_version()
        popped = False
        # Head-only retirement, exactly as Fig. 4 describes: "each time an
        # operation in the queue is validated, the head pointer moves one
        # position forward". Entries stuck behind a not-yet-validated head
        # accumulate, which is what makes Depth_q a real performance knob.
        while not self.queue.is_empty:
            head = self.queue.peek_head()
            retirable = (
                (head.phase, head.iteration) < watermark
                and head.version is not None
                and head.version <= min_version
            )
            if not retirable:
                break
            self.queue.pop_head()
            popped = True
        for domain in set(cfg.domain for cfg in self.ports):
            point = self.retire_point_for(domain)
            if point > self._notified_points.get(domain, -1):
                self._notified_points[domain] = point
                self.controller.notify_retired(domain, point)
        return popped

    def touches_domain(self, domain: int) -> bool:
        return any(cfg.domain == domain for cfg in self.ports)

    def retire_point_for(self, domain: int) -> int:
        """Largest iteration below which this unit can never squash ``domain``.

        Bounded by (a) the ports' progress — a future arrival can accuse
        anything at or above its position — and (b) the oldest queued or
        pending record of the domain, since any of those can still be the
        target of a squash and the replay gates must keep their iterations
        available.
        """
        phases = [c.phase for c in self.ports if c.domain == domain]
        if not phases:
            return ITER_DONE
        domain_phase = phases[0]
        point = ITER_DONE
        for i, cfg in enumerate(self.ports):
            expected = self._expected[i]
            if cfg.phase < domain_phase and expected < ITER_DONE:
                return 0  # an earlier nest may still accuse anything
            if cfg.phase == domain_phase:
                point = min(point, expected)
            for record in self._pending[i].values():
                if record.domain == domain and not record.done:
                    point = min(point, record.iteration)
        for entry in self.queue.entries():
            if entry.domain == domain:
                point = min(point, entry.iteration)
        return point

    # ------------------------------------------------------------------
    # Squash interface
    # ------------------------------------------------------------------
    def on_squash(self, domain: int, min_iter: int) -> None:
        self._np_valid = False
        if self._notified_points.get(domain, -1) > min_iter:
            self._notified_points[domain] = min_iter
        self.queue.remove_if(
            lambda e: (
                e.tags.get(domain, -1) >= min_iter
                or (e.domain == domain and e.iteration >= min_iter)
            )
        )
        for i, cfg in enumerate(self.ports):
            if cfg.domain == domain and self._expected[i] >= min_iter:
                self._expected[i] = min_iter
            if cfg.domain == domain and self._last_real_iter[i] >= min_iter:
                self._last_real_iter[i] = min_iter - 1
            self._pending[i] = {
                it: rec
                for it, rec in self._pending[i].items()
                if not (
                    rec.tags.get(domain, -1) >= min_iter
                    or (rec.domain == domain and rec.iteration >= min_iter)
                )
            }

    def flush(self, domain: int, min_iter: int) -> None:
        # The controller drives on_squash explicitly; the circuit-wide token
        # flush must not touch queue entries of *older* iterations, so the
        # component-level flush is a no-op for the unit.
        return

    @property
    def is_busy(self) -> bool:
        # Busy only when an accepted record can actually be processed;
        # unprocessable backlog must let the deadlock detector speak.
        return self._next_processable() is not None

    @property
    def has_pending(self) -> bool:
        """True while any port still holds unvalidated records.

        The public quiescence signal completion conditions should poll
        (instead of reaching into ``_pending``): the unit is drained only
        once every accepted packet has been validated and retired.
        """
        return any(self._pending)

    @property
    def pending_occupancies(self) -> List[int]:
        """Per-port reorder-buffer occupancies, for the PVBound
        measured path (sampled from an end-of-cycle hook — nothing on
        the stat-free fast path pays for it)."""
        return [len(pending) for pending in self._pending]

    @property
    def resource_params(self):
        n_loads = sum(1 for c in self.ports if c.kind == "load")
        n_stores = len(self.ports) - n_loads
        return {
            "depth": self.queue.depth,
            "n_loads": max(1, n_loads),
            "n_stores": max(1, n_stores),
            "addr_width": self.addr_width,
            "data_width": self.data_width,
            "iter_width": 16,
        }
