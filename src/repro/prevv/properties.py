"""The P-tuple of Eq. (1) and program-order positions.

``P_m = {iter_m, index_m, value_m, Op_m}`` — each premature operation
records its iteration, target index, value and operation type.  Our
implementation extends the iteration into a three-level *program-order
position* ``(phase, iteration, rom_pos)``:

* ``phase`` — static program order of the operation's loop nest (0 for the
  first top-level loop, 1 for the second, ...).  All dynamic operations of
  an earlier nest precede all operations of a later nest, which is how
  cross-nest ambiguous pairs (e.g. 2mm's producer/consumer nests) become
  comparable;
* ``iteration`` — the activation index of the operation's innermost loop
  body (the squash-domain iteration tag);
* ``rom_pos`` — the static order of the operation inside the body, read
  from the arbiter's ROM exactly as the paper resolves ``iter_m == iter_n``
  ties (Sec. III, "we can use a tuple to store the original sequence").

Lexicographic comparison of positions is the paper's ``iter_m < iter_n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Sentinel iteration for "this port will never send again" done-tokens.
ITER_DONE = 1 << 60

Position = Tuple[int, int, int]  # (phase, iteration, rom_pos)


@dataclass
class PTuple:
    """One premature operation's validation record (Eq. 1, extended)."""

    op: str                       # "load" | "store"
    index: int                    # memory index (index_m)
    value: int                    # loaded or stored value (value_m)
    phase: int                    # loop-nest program order
    iteration: int                # domain iteration (iter_m)
    rom_pos: int                  # static order inside the body
    domain: int                   # squash-domain id of the owning port
    port: int                     # owning unit port id
    fake: bool = False            # Sec. V-C fake signal
    done: bool = False            # end-of-nest marker (iteration == DONE)
    old_value: Optional[int] = None  # pre-store content (stores only)
    #: loads: memory version at the read; stores: commit serial (filled in
    #: lazily once the memory controller has committed the write)
    version: Optional[int] = None
    tags: Dict[int, int] = field(default_factory=dict)  # full token tags

    @property
    def position(self) -> Position:
        return (self.phase, self.iteration, self.rom_pos)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "FAKE" if self.fake else ("DONE" if self.done else self.op)
        return (
            f"P({kind}@{self.position}, idx={self.index}, val={self.value})"
        )


def make_fake(phase: int, iteration: int, rom_pos: int, domain: int,
              port: int, tags: Optional[Dict[int, int]] = None) -> PTuple:
    """A fake token: occupies the iteration slot without any memory effect."""
    return PTuple(
        op="fake",
        index=-1,
        value=0,
        phase=phase,
        iteration=iteration,
        rom_pos=rom_pos,
        domain=domain,
        port=port,
        fake=True,
        tags=dict(tags or {}),
    )


def make_done(phase: int, domain: int, port: int) -> PTuple:
    """A done token: the port's loop nest has finished for good."""
    return PTuple(
        op="done",
        index=-1,
        value=0,
        phase=phase,
        iteration=ITER_DONE,
        rom_pos=0,
        domain=domain,
        port=port,
        done=True,
    )
