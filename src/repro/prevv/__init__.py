"""PreVV: premature value validation (the paper's core contribution).

Replaces the LSQ with a premature queue, an arbiter and a squash path:
loads and stores of an ambiguous group execute fully out of order against
the memory controller ("premature"), record their ``P = {iter, index,
value, op}`` in the queue, and the arbiter validates values after the
fact, squashing and replaying only the (rare) truly violated iterations.
"""

from .properties import ITER_DONE, PTuple, Position, make_done, make_fake
from .premature_queue import PrematureQueue
from .replay import DomainGate, ReplayGate, SquashController
from .fake import DoneTokenGenerator, FakeTokenGenerator, PairPacker
from .unit import PortConfig, PreVVUnit

__all__ = [
    "ITER_DONE",
    "PTuple",
    "Position",
    "make_done",
    "make_fake",
    "PrematureQueue",
    "DomainGate",
    "ReplayGate",
    "SquashController",
    "DoneTokenGenerator",
    "FakeTokenGenerator",
    "PairPacker",
    "PortConfig",
    "PreVVUnit",
]
