"""The premature queue (Sec. IV-B, Fig. 4).

A circular buffer of :class:`~repro.prevv.properties.PTuple` records with
head/tail pointers.  The three states of Fig. 4 are observable:

* *normal* — entries stored between head and tail;
* *wrap-around* — the tail wrapped past the end of the storage array;
* *full* — ``head == tail`` with every slot occupied, which stalls the
  arbiter from accepting further premature operations (backpressure into
  the main pipeline — the source of PreVV16's extra cycles in Table II).

The queue stores the four labels of Eq. (1) per slot; validated entries
leave from the head ("each time an operation in the queue is validated,
the head pointer moves one position forward"), squashed entries are
excised in place.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from ..errors import QueueOverflowError
from .properties import PTuple


class PrematureQueue:
    """Bounded circular buffer of premature-operation records."""

    def __init__(self, depth: int, slack: int = 0):
        """``depth`` is the architectural queue size (Fig. 4).

        ``slack`` adds hidden physical slots so the arbiter can always
        finish validating operations it already pulled from its ports while
        the architectural queue asserts backpressure — the registers of the
        LMerge/SMerge stage in the real design.  Backpressure
        (:attr:`is_full`) is asserted at the *architectural* depth.
        """
        if depth < 1:
            raise ValueError("premature queue depth must be >= 1")
        if slack < 0:
            raise ValueError("queue slack must be >= 0")
        self.depth = depth
        self.physical_depth = depth + slack
        self._slots: List[Optional[PTuple]] = [None] * self.physical_depth
        self._head = 0  # oldest stored operation
        self._tail = 0  # next free slot
        self._count = 0
        # Statistics for the evaluation harness.
        self.max_occupancy = 0
        self.total_pushes = 0
        self.full_stalls = 0

    # ------------------------------------------------------------------
    # State queries (Fig. 4)
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        """Architecturally full (Fig. 4c): stop accepting new operations."""
        return self._count >= self.depth

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def is_wrapped(self) -> bool:
        """Fig. 4(b): stored data wraps past the end of the array."""
        return self._count > 0 and self._head + self._count > self.physical_depth

    @property
    def head(self) -> int:
        return self._head

    @property
    def tail(self) -> int:
        return self._tail

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, record: PTuple) -> None:
        """Store at the tail; overflow beyond the physical slots is a bug."""
        if self._count >= self.physical_depth:
            raise QueueOverflowError(
                "premature queue pushed past its physical capacity "
                "(backpressure bug)"
            )
        self._slots[self._tail] = record
        self._tail = (self._tail + 1) % self.physical_depth
        self._count += 1
        self.total_pushes += 1
        self.max_occupancy = max(self.max_occupancy, self._count)

    def pop_head(self) -> PTuple:
        """Validate/retire the oldest entry (head pointer advances)."""
        if self.is_empty:
            raise QueueOverflowError("premature queue popped while empty")
        record = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.physical_depth
        self._count -= 1
        return record

    def entries(self) -> Iterator[PTuple]:
        """Stored records from head to tail (the arbiter's search order)."""
        for k in range(self._count):
            slot = self._slots[(self._head + k) % self.physical_depth]
            if slot is not None:
                yield slot

    def peek_head(self) -> Optional[PTuple]:
        return self._slots[self._head] if self._count else None

    def remove_if(self, predicate: Callable[[PTuple], bool]) -> int:
        """Excise matching entries, compacting toward the head.

        Used on squash: entries belonging to flushed iterations vanish.
        Returns the number removed.
        """
        kept = [r for r in self.entries() if not predicate(r)]
        removed = self._count - len(kept)
        if removed:
            self._slots = [None] * self.physical_depth
            self._head = 0
            self._tail = len(kept) % self.physical_depth
            for k, record in enumerate(kept):
                self._slots[k] = record
            self._count = len(kept)
        return removed

    def record_full_stall(self) -> None:
        self.full_stalls += 1

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover
        state = (
            "full" if self.is_full
            else "wrap" if self.is_wrapped
            else "normal"
        )
        return (
            f"PrematureQueue(depth={self.depth}, count={self._count}, "
            f"state={state})"
        )
