"""The premature queue (Sec. IV-B, Fig. 4).

A circular buffer of :class:`~repro.prevv.properties.PTuple` records with
head/tail pointers.  The three states of Fig. 4 are observable:

* *normal* — entries stored between head and tail;
* *wrap-around* — the tail wrapped past the end of the storage array;
* *full* — ``head == tail`` with every slot occupied, which stalls the
  arbiter from accepting further premature operations (backpressure into
  the main pipeline — the source of PreVV16's extra cycles in Table II).

The queue stores the four labels of Eq. (1) per slot; validated entries
leave from the head ("each time an operation in the queue is validated,
the head pointer moves one position forward"), squashed entries are
excised in place — the head pointer never moves backward, so the
wrap-around state of Fig. 4(b) survives a squash exactly as the
hardware's pointers would.

Alongside the ring, the queue maintains an index→entries map (the
software analogue of partitioning disambiguation state by address, as
R-HLS does) so the arbiter's Eq. (2)-(5) search touches only the entries
that share the validated operation's index instead of scanning the whole
queue.  Every list in the map is kept in head→tail (program) order.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from ..errors import QueueOverflowError
from .properties import PTuple

#: Shared empty result for :meth:`PrematureQueue.entries_for` misses.
_NO_ENTRIES: List[PTuple] = []


class PrematureQueue:
    """Bounded circular buffer of premature-operation records."""

    def __init__(self, depth: int, slack: int = 0):
        """``depth`` is the architectural queue size (Fig. 4).

        ``slack`` adds hidden physical slots so the arbiter can always
        finish validating operations it already pulled from its ports while
        the architectural queue asserts backpressure — the registers of the
        LMerge/SMerge stage in the real design.  Backpressure
        (:attr:`is_full`) is asserted at the *architectural* depth.
        """
        if depth < 1:
            raise ValueError("premature queue depth must be >= 1")
        if slack < 0:
            raise ValueError("queue slack must be >= 0")
        self.depth = depth
        self.physical_depth = depth + slack
        self._slots: List[Optional[PTuple]] = [None] * self.physical_depth
        self._head = 0  # oldest stored operation
        self._tail = 0  # next free slot
        self._count = 0
        # index -> stored records with that index, in head→tail order.
        # Maintained incrementally by push/pop_head and rebuilt on the
        # (rare) squash path so entries_for() is O(matching entries).
        self._by_index: Dict[int, List[PTuple]] = {}
        # Statistics for the evaluation harness.
        self.max_occupancy = 0
        self.total_pushes = 0
        self.full_stalls = 0
        # Optional PVSan observer: ``on_retire(record)`` for every head
        # retirement, ``on_excise(record)`` for every squash excision.
        # Purely observational — it must never mutate queue state.
        self.observer = None

    # ------------------------------------------------------------------
    # State queries (Fig. 4)
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        """Architecturally full (Fig. 4c): stop accepting new operations."""
        return self._count >= self.depth

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def is_wrapped(self) -> bool:
        """Fig. 4(b): stored data wraps past the end of the array."""
        return self._count > 0 and self._head + self._count > self.physical_depth

    @property
    def head(self) -> int:
        return self._head

    @property
    def tail(self) -> int:
        return self._tail

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, record: PTuple) -> None:
        """Store at the tail; overflow beyond the physical slots is a bug."""
        if self._count >= self.physical_depth:
            raise QueueOverflowError(
                "premature queue pushed past its physical capacity "
                "(backpressure bug)"
            )
        self._slots[self._tail] = record
        self._tail = (self._tail + 1) % self.physical_depth
        self._count += 1
        self.total_pushes += 1
        if self._count > self.max_occupancy:
            self.max_occupancy = self._count
        lst = self._by_index.get(record.index)
        if lst is None:
            self._by_index[record.index] = [record]
        else:
            lst.append(record)

    def pop_head(self) -> PTuple:
        """Validate/retire the oldest entry (head pointer advances)."""
        if self.is_empty:
            raise QueueOverflowError("premature queue popped while empty")
        record = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.physical_depth
        self._count -= 1
        lst = self._by_index.get(record.index)
        if lst is not None:
            # The head is the globally oldest record, hence the oldest of
            # its index list too; fall back to an identity scan so a
            # mutated record can never corrupt the map.
            if lst and lst[0] is record:
                del lst[0]
            else:  # pragma: no cover - defensive
                for k, entry in enumerate(lst):
                    if entry is record:
                        del lst[k]
                        break
            if not lst:
                del self._by_index[record.index]
        if self.observer is not None:
            self.observer.on_retire(record)
        return record

    def entries(self) -> Iterator[PTuple]:
        """Stored records from head to tail (the arbiter's search order)."""
        for k in range(self._count):
            slot = self._slots[(self._head + k) % self.physical_depth]
            if slot is not None:
                yield slot

    def entries_for(self, index: int) -> List[PTuple]:
        """Stored records sharing ``index``, in head→tail order.

        The Eq. (2)-(5) search set: validation only ever compares against
        same-index entries, so the arbiter asks for exactly this list
        instead of scanning :meth:`entries`.  Callers must not mutate it.
        """
        return self._by_index.get(index, _NO_ENTRIES)

    def peek_head(self) -> Optional[PTuple]:
        return self._slots[self._head] if self._count else None

    def remove_if(self, predicate: Callable[[PTuple], bool]) -> int:
        """Excise matching entries, compacting in place toward the head.

        Used on squash: entries belonging to flushed iterations vanish.
        Survivors shift toward the head *within the ring* — the head
        pointer itself never moves, so a wrapped queue (Fig. 4b) keeps its
        wrap-around layout and the hardware-observable pointer state
        machine is preserved.  The index map is rebuilt from the
        compacted ring.  Returns the number removed.
        """
        count = self._count
        if count == 0:
            return 0
        phys = self.physical_depth
        slots = self._slots
        head = self._head
        # Decide fates first so a throwing predicate cannot corrupt state.
        doomed = [
            predicate(slots[(head + k) % phys]) for k in range(count)
        ]
        removed = sum(doomed)
        if not removed:
            return 0
        write = head
        by_index: Dict[int, List[PTuple]] = {}
        for k, drop in enumerate(doomed):
            if drop:
                if self.observer is not None:
                    self.observer.on_excise(slots[(head + k) % phys])
                continue
            record = slots[(head + k) % phys]
            slots[write] = record
            write = (write + 1) % phys
            lst = by_index.get(record.index)
            if lst is None:
                by_index[record.index] = [record]
            else:
                lst.append(record)
        self._count = count - removed
        self._tail = write
        self._by_index = by_index
        for _ in range(removed):
            slots[write] = None
            write = (write + 1) % phys
        return removed

    def record_full_stall(self) -> None:
        self.full_stalls += 1

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover
        state = (
            "full" if self.is_full
            else "wrap" if self.is_wrapped
            else "normal"
        )
        return (
            f"PrematureQueue(depth={self.depth}, count={self._count}, "
            f"state={state})"
        )
