"""Circuit-side helpers feeding the PreVV unit ports.

* :class:`PairPacker` — joins an operation's index and value copies into
  one packed ``(index, value)`` token (the data-collection half of the
  LMerge/SMerge of Fig. 5; "we use merge to collect all the data of an
  operation before it is used for validation").
* :class:`FakeTokenGenerator` — Sec. V-C: sits on the not-taken branch
  path of a conditional member operation and converts the branch token
  into a ``("fake",)`` packet, convincing the arbiter that "the ambiguous
  pair does not take effect in the current iteration".
* :class:`DoneTokenGenerator` — converts the (single-shot) exit token of
  a loop nest into a ``("done",)`` packet so the arbiter can retire every
  remaining entry of that nest; this generalizes the fake-token idea to
  nest boundaries and is what lets cross-nest groups (2mm/3mm) drain.
"""

from __future__ import annotations

from ..dataflow.component import Component
from ..dataflow.token import combine


class PairPacker(Component):
    """Join index and value into a ``(index, value)`` P-packet."""

    resource_class = "pair_packer"
    scheduling_contract_audited = True

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width
        self._cache = [None, None, None]  # [index tok, value tok, packed]

    def propagate(self) -> None:
        idx_ch = self.inputs["index"]
        val_ch = self.inputs["value"]
        if not (idx_ch.valid and val_ch.valid):
            return
        cache = self._cache
        if cache[0] is idx_ch.data and cache[1] is val_ch.data:
            packed = cache[2]
        else:
            packed = combine(
                (idx_ch.data.value, val_ch.data.value), idx_ch.data, val_ch.data
            )
            packed.version = val_ch.data.version
            cache[0] = idx_ch.data
            cache[1] = val_ch.data
            cache[2] = packed
        self.drive_out("out", packed)
        if self.out_ready("out"):
            self.drive_ready("index", True)
            self.drive_ready("value", True)

    @property
    def resource_params(self):
        return {"width": self.width}


class FakeTokenGenerator(Component):
    """Emit a ``("fake",)`` packet per incoming (not-taken) control token."""

    resource_class = "fake_gen"
    scheduling_contract_audited = True

    def __init__(self, name: str):
        super().__init__(name)
        self.generated = 0
        self._cache = [None, None]  # [input token, fake packet]

    def propagate(self) -> None:
        if self.in_valid("in"):
            token = self.in_token("in")
            cache = self._cache
            if cache[0] is not token:
                cache[0] = token
                cache[1] = token.with_value(("fake",))
            self.drive_out("out", cache[1])
            self.drive_ready("in", self.out_ready("out"))

    def tick(self):
        if self.outputs["out"].fires:
            self.generated += 1
        return False  # the counter never feeds propagate


class DoneTokenGenerator(Component):
    """Emit a ``("done",)`` packet per incoming loop-nest exit token."""

    resource_class = "fake_gen"
    scheduling_contract_audited = True

    def __init__(self, name: str):
        super().__init__(name)
        self.generated = 0
        self._cache = [None, None]  # [input token, done packet]

    def propagate(self) -> None:
        if self.in_valid("in"):
            token = self.in_token("in")
            cache = self._cache
            if cache[0] is not token:
                cache[0] = token
                cache[1] = token.with_value(("done",))
            self.drive_out("out", cache[1])
            self.drive_ready("in", self.out_ready("out"))

    def tick(self):
        if self.outputs["out"].fires:
            self.generated += 1
        return False  # the counter never feeds propagate
