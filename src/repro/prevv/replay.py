"""Squash domains: domain gates and the squash controller.

A **squash domain** is one loop body.  Every channel entering the body
(the true-outputs of the loop-header branches) routes through the
domain's single :class:`DomainGate`, which handles each iteration's entry
tokens **atomically as one bundle**:

* a bundle passes only when every channel's token is present and every
  output can accept it (all-or-nothing — so replay state can never
  desynchronize across channels);
* each passing token is tagged with the domain's iteration number (tags
  then propagate to every derived token downstream);
* the bundle is stored until its iteration retires, so a squash can
  re-inject the complete inputs of the erroneous iteration and let the
  pipeline re-execute it ("the entire pipeline following it needs to be
  squashed").

The :class:`SquashController` reproduces the squash path of Fig. 3/5:
when an arbiter detects a violation it (1) expands the squash over every
domain whose stored bundles are contaminated by the squashed iterations
(enclosing loops, sibling loops fed by squashed values), (2) flushes all
tagged tokens, (3) rolls back their memory writes, (4) rewinds the gates
(replay survivors; contaminated bundles regenerate through the dataflow),
and (5) notifies every PreVV unit.  It also aggregates retirement so the
gates and the memory write log stay bounded.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..dataflow.component import Component
from ..dataflow.token import Token
from ..errors import ValidationError

Bundle = Tuple[Token, ...]


class DomainGate(Component):
    """Per-iteration gate over all entry channels of one domain.

    Each channel is an independent *lane*: tokens pass eagerly (a slow
    loop-carried value must not hold back the address computation of the
    next iteration — that out-of-order slack is exactly what premature
    execution exploits), each lane keeps its own iteration counter and
    replay storage, and squash handling (flush / rewind / contamination /
    pruning) operates consistently across all lanes of the domain.
    """

    resource_class = "replay_gate"
    scheduling_contract_audited = True

    def __init__(self, name: str, domain: int, width: int = 32):
        super().__init__(name)
        self.domain = domain
        self.width = width
        self.n_channels = 0
        self._next_iter: List[int] = []           # per lane
        self._stored: List[List[Tuple[int, Token]]] = []
        self._replay: List[Deque[Tuple[int, Token]]] = []
        self.replayed_tokens = 0
        # Per lane: [source token, iteration, tagged token] — with_tag is
        # pure, so the tagged token is rebuilt only when the (immutable)
        # source token or the iteration changes.  Keeping the output
        # token's identity stable across fixpoint evaluations also lets
        # the engine's change detection skip downstream re-evaluation.
        self._tag_cache: List[list] = []
        self._in_chs = None  # lane channel lists, bound after wiring
        self._out_chs = None

    # ------------------------------------------------------------------
    def add_channel(self) -> int:
        """Register one more gated channel; returns its lane index."""
        idx = self.n_channels
        self.n_channels += 1
        self._next_iter.append(0)
        self._stored.append([])
        self._replay.append(deque())
        self._tag_cache.append([None, -1, None])
        self._in_chs = None  # wiring changed: rebind lazily
        self._out_chs = None
        return idx

    def in_port(self, i: int) -> str:
        return f"in{i}"

    def out_port(self, i: int) -> str:
        return f"out{i}"

    def _bind(self):
        self._in_chs = [
            self.inputs[f"in{i}"] for i in range(self.n_channels)
        ]
        self._out_chs = [
            self.outputs[f"out{i}"] for i in range(self.n_channels)
        ]
        return self._in_chs

    def _tagged(self, lane: int, token: Token, iteration: int) -> Token:
        cell = self._tag_cache[lane]
        if cell[0] is token and cell[1] == iteration:
            return cell[2]
        tagged = token.with_tag(self.domain, iteration)
        cell[0] = token
        cell[1] = iteration
        cell[2] = tagged
        return tagged

    # ------------------------------------------------------------------
    def propagate(self) -> None:
        ins = self._in_chs or self._bind()
        outs = self._out_chs
        for i in range(self.n_channels):
            out_ch = outs[i]
            replay = self._replay[i]
            if replay:
                iteration, token = replay[0]
                out_ch.valid = True
                out_ch.data = self._tagged(i, token, iteration)
                continue  # hold new input on this lane while replaying
            in_ch = ins[i]
            if in_ch.valid:
                out_ch.valid = True
                out_ch.data = self._tagged(i, in_ch.data, self._next_iter[i])
                if out_ch.ready:
                    in_ch.ready = True

    def tick(self):
        ins = self._in_chs or self._bind()
        outs = self._out_chs
        changed = False
        for i in range(self.n_channels):
            out_ch = outs[i]
            if not (out_ch.valid and out_ch.ready):
                continue
            # Lane state only ever moves on an output fire: either a
            # replayed entry is consumed or a live token is stored and the
            # iteration counter advances.
            changed = True
            if self._replay[i]:
                self._replay[i].popleft()
                self.replayed_tokens += 1
                continue
            in_ch = ins[i]
            if in_ch.valid and in_ch.ready:
                self._stored[i].append((self._next_iter[i], in_ch.data))
                self._next_iter[i] += 1
        return changed

    # ------------------------------------------------------------------
    # Squash / retirement interface (driven by the controller)
    # ------------------------------------------------------------------
    def flush(self, domain: int, min_iter: int) -> None:
        """Drop stored/replay tokens *derived from* squashed iterations.

        The check uses the original tokens' tags (what produced the
        entry), not the iteration it was recorded under: iteration ``e``'s
        entry was produced by ``e - 1`` and must survive a squash at
        ``e``; contaminated entries regenerate through the dataflow.
        """
        for i in range(self.n_channels):
            self._stored[i] = [
                (it, t)
                for it, t in self._stored[i]
                if not t.is_squashed_by(domain, min_iter)
            ]
            self._replay[i] = deque(
                (it, t)
                for it, t in self._replay[i]
                if not t.is_squashed_by(domain, min_iter)
            )

    def rewind(self, min_iter: int) -> None:
        """Queue surviving entries of iterations >= min_iter per lane."""
        for i in range(self.n_channels):
            replays = sorted(
                ((it, t) for it, t in self._stored[i] if it >= min_iter),
                key=lambda pair: pair[0],
            )
            expected = min_iter
            for it, _ in replays:
                if it != expected:
                    raise ValidationError(
                        f"{self.name}/lane{i}: replay gap — have iteration "
                        f"{it}, expected {expected}"
                    )
                expected += 1
            self._replay[i] = deque(replays)
            if replays:
                self._next_iter[i] = expected
            else:
                # Never advance a lane that was still behind the squash
                # point: it keeps waiting for its live input.
                self._next_iter[i] = min(self._next_iter[i], min_iter)

    def prune_by_watermarks(self, watermarks: Dict[int, int],
                            own_watermark: int) -> None:
        """Drop stored entries that can never be replayed again.

        An entry is dead once (a) its own iteration is below the domain's
        retirement watermark — no direct squash can target it — and (b)
        every tag on its token is below the tagging domain's watermark —
        no cascade can flush it.
        """

        def dead(it: int, token: Token) -> bool:
            if it >= own_watermark:
                return False
            return all(
                tag_iter < watermarks.get(dom, 0)
                for dom, tag_iter in token.tags.items()
            )

        for i in range(self.n_channels):
            self._stored[i] = [
                (it, t) for it, t in self._stored[i] if not dead(it, t)
            ]

    def contamination(self, domain: int, min_iter: int) -> Optional[int]:
        """Smallest stored iteration derived from squashed iterations of
        ``domain`` (the cascade trigger), or ``None``."""
        hits = [
            it
            for lane in self._stored
            for it, t in lane
            if t.is_squashed_by(domain, min_iter)
        ]
        return min(hits) if hits else None

    @property
    def is_busy(self) -> bool:
        return any(self._replay[i] for i in range(self.n_channels))

    @property
    def iterations_seen(self) -> int:
        return max(self._next_iter, default=0)

    @property
    def stored_count(self) -> int:
        return sum(len(lane) for lane in self._stored)

    @property
    def resource_params(self):
        return {"width": self.width, "n": max(1, self.n_channels)}


class SquashController:
    """Central coordination of squash, rollback, replay and retirement."""

    def __init__(self, circuit, memory):
        self.circuit = circuit
        self.memory = memory
        self._gates: Dict[int, DomainGate] = {}
        self._units: List = []
        self._pending: List[Tuple[int, int]] = []  # (domain, min_iter)
        # Optional PVSan oracle notified of every *executed* squash (the
        # expanded target map), so it can retract findings whose records
        # the squash rolled back.  Purely observational.
        self.sanitizer = None
        # Statistics
        self.squashes = 0
        self.squashed_iterations = 0
        self.rolled_back_writes = 0
        self.flushes_by_domain: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def register_gate(self, gate: DomainGate) -> None:
        self._gates[gate.domain] = gate

    def register_unit(self, unit) -> None:
        self._units.append(unit)

    def gate_for(self, domain: int) -> Optional[DomainGate]:
        return self._gates.get(domain)

    @property
    def gates(self) -> List[DomainGate]:
        return list(self._gates.values())

    @property
    def domains(self) -> List[int]:
        return sorted(self._gates)

    # ------------------------------------------------------------------
    # Squash path
    # ------------------------------------------------------------------
    def request_squash(self, domain: int, min_iter: int) -> None:
        """Record a squash to be executed at the end of the current cycle.

        Deferral keeps the cycle's already-settled handshakes consistent:
        the flush runs after every component committed its clock edge.
        """
        self._pending.append((domain, min_iter))

    def has_pending_squash(self) -> bool:
        return bool(self._pending)

    def end_of_cycle(self):
        """Simulator hook: execute pending squashes after all ticks.

        The requested targets are expanded transitively: squashing domain
        ``d`` from ``e`` invalidates every stored bundle of *other* domains
        whose tokens derive from the squashed iterations (an enclosing
        loop's sweep that consumed a squashed inner exit, a sibling loop
        fed by squashed values, ...) — those domains are squashed from
        their first contaminated iteration too, until a fixpoint.
        """
        if not self._pending:
            return None
        targets: Dict[int, int] = {}
        for domain, min_iter in self._pending:
            if domain not in targets or min_iter < targets[domain]:
                targets[domain] = min_iter
        self._pending.clear()
        changed = True
        while changed:
            changed = False
            for domain, min_iter in list(targets.items()):
                for other_dom, gate in self._gates.items():
                    if other_dom == domain:
                        continue
                    point = gate.contamination(domain, min_iter)
                    if point is not None and point < targets.get(
                        other_dom, 1 << 62
                    ):
                        targets[other_dom] = point
                        changed = True
        self._execute_squashes(targets)
        # Truthy return tells the simulator's incremental engine that this
        # hook mutated circuit state (flushed channels, rewound gates), so
        # every component must be re-evaluated next cycle.
        return True

    def _execute_squashes(self, targets: Dict[int, int]) -> None:
        self.squashes += 1
        if self.sanitizer is not None:
            self.sanitizer.on_squash_executed(dict(targets))
        # Phase 1: flush every target domain's tokens everywhere (gates
        # flush their replay storage by token tags at the same time).
        for domain, min_iter in sorted(targets.items()):
            self.flushes_by_domain[domain] = (
                self.flushes_by_domain.get(domain, 0) + 1
            )
            gate = self._gates.get(domain)
            if gate is not None:
                self.squashed_iterations += max(
                    0, gate.iterations_seen - min_iter
                )
            self.circuit.flush(domain, min_iter)
        # Phase 2: roll back the squashed iterations' memory writes.
        for domain, min_iter in sorted(targets.items()):
            self.rolled_back_writes += self.memory.rollback(domain, min_iter)
        # Phase 3: rewind gates (replay survivors, await regeneration).
        for domain, min_iter in sorted(targets.items()):
            gate = self._gates.get(domain)
            if gate is not None:
                gate.rewind(min_iter)
        # Phase 4: units drop poisoned entries / rewind port counters.
        for domain, min_iter in sorted(targets.items()):
            for unit in self._units:
                unit.on_squash(domain, min_iter)

    # ------------------------------------------------------------------
    # Retirement path
    # ------------------------------------------------------------------
    def _watermark(self, domain: int) -> int:
        """No squash of ``domain`` can ever target iterations below this."""
        points = [
            u.retire_point_for(domain)
            for u in self._units
            if u.touches_domain(domain)
        ]
        # Domains without PreVV ports are only squashed via cascades,
        # which the tag-based pruning accounts for.
        return min(points) if points else (1 << 60)

    def notify_retired(self, domain: int, upto_iter: int) -> None:
        """A unit's retire point advanced: re-sweep retirement state."""
        watermarks = {dom: self._watermark(dom) for dom in self._gates}
        for dom, gate in self._gates.items():
            gate.prune_by_watermarks(watermarks, watermarks.get(dom, 1 << 60))
        for dom, mark in watermarks.items():
            self.memory.set_retired(dom, mark)


#: Backwards-compatible alias (the per-channel gate was replaced by the
#: atomic bundle gate).
ReplayGate = DomainGate
