"""PreVV reproduction: premature value validation for dataflow circuits.

Reproduces Zou et al., "PreVV: Eliminating Store Queue via Premature Value
Validation for Dataflow Circuit on FPGA" (DATE 2025) as a pure-Python
system: a cycle-accurate elastic-circuit simulator, a Dynamatic-style HLS
flow, LSQ baselines, the PreVV architecture, and an FPGA area/timing model.

Quickstart::

    from repro.kernels import get_kernel
    from repro.eval import run_kernel, PREVV16

    result = run_kernel(get_kernel("polyn_mult"), PREVV16)
    print(result.cycles, result.resources.luts)
"""

__version__ = "1.0.0"
