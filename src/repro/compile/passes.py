"""The compilation pass pipeline (the paper's LLVM-pass framing).

The paper's methodology: (1) polyhedral analysis finds the ambiguous
pairs, (2) their LLVM pass replaces Dynamatic's LSQ with PreVV components,
(3) hardware templates realize the design.  :func:`run_pipeline` runs the
same stages explicitly and returns a :class:`CompilationReport` with each
stage's artefacts — useful for inspecting what the flow decided and as
the programmatic analogue of ``--print-after-all``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import (
    MemoryAnalysis,
    PreVVGroup,
    analyze_function,
    reduce_pairs,
    suggest_depth,
)
from ..config import HardwareConfig
from ..ir import Function, verify_function
from .elastic import BuildResult, compile_function


@dataclass
class CompilationReport:
    """Everything the pipeline produced, stage by stage."""

    function: Function
    analysis: MemoryAnalysis
    groups: List[PreVVGroup]
    suggested_depth: Optional[int]
    build: BuildResult

    @property
    def needs_disambiguation(self) -> bool:
        return bool(self.analysis.pairs)

    def summary(self) -> str:
        lines = [f"function {self.function.name}"]
        lines.append(
            f"  ambiguous pairs: {len(self.analysis.pairs)} on arrays "
            f"{sorted(self.analysis.conflicted_arrays) or '(none)'}"
        )
        lines.append(f"  validation groups after reduction: {len(self.groups)}")
        for group in self.groups:
            lines.append(
                f"    @{group.array}: {len(group.loads)}L + "
                f"{len(group.stores)}S"
            )
        if self.suggested_depth is not None:
            lines.append(f"  suggested Depth_q: {self.suggested_depth}")
        lines.append(
            f"  circuit: {len(self.build.circuit.components)} components, "
            f"{len(self.build.circuit.channels)} channels, "
            f"{len(self.build.units)} PreVV units, "
            f"{len(self.build.lsqs)} LSQs"
        )
        return "\n".join(lines)


def run_pipeline(
    fn: Function,
    config: HardwareConfig,
    args: Optional[Dict[str, int]] = None,
    t_org: float = 3.0,
    p_squash: float = 0.05,
    t_token: float = 60.0,
) -> CompilationReport:
    """Verify -> analyze -> reduce -> (size) -> synthesize.

    The sizing stage applies the Sec. V-A matched-depth model with the
    given pipeline estimates; it only *reports* the suggestion — the
    generated circuit uses ``config.prevv_depth`` so that evaluation
    sweeps stay explicit.
    """
    verify_function(fn)
    analysis = analyze_function(fn)
    groups = reduce_pairs(analysis)
    depth = None
    if groups and config.memory_style == "prevv":
        depth = suggest_depth(t_org, p_squash, t_token)
    build = compile_function(fn, config, args=args)
    return CompilationReport(
        function=fn,
        analysis=analysis,
        groups=groups,
        suggested_depth=depth,
        build=build,
    )
