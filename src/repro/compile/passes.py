"""The compilation pass pipeline (the paper's LLVM-pass framing).

The paper's methodology: (1) polyhedral analysis finds the ambiguous
pairs, (2) their LLVM pass replaces Dynamatic's LSQ with PreVV components,
(3) hardware templates realize the design.  :func:`run_pipeline` runs the
same stages explicitly and returns a :class:`CompilationReport` with each
stage's artefacts — useful for inspecting what the flow decided and as
the programmatic analogue of ``--print-after-all``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis import (
    DEFAULT_P_SQUASH,
    DEFAULT_T_ORG,
    DEFAULT_T_TOKEN,
    MemoryAnalysis,
    PreVVGroup,
    analyze_function,
    reduce_pairs,
    suggest_depth,
)
from ..analysis.lint import LintReport, lint_build
from ..config import HardwareConfig
from ..errors import CompileError
from ..ir import Function, verify_function
from .elastic import BuildResult, compile_function


@dataclass
class CompilationReport:
    """Everything the pipeline produced, stage by stage."""

    function: Function
    analysis: MemoryAnalysis
    groups: List[PreVVGroup]
    suggested_depth: Optional[int]
    build: BuildResult
    #: post-build static-analysis report (None when linting was disabled)
    lint: Optional[LintReport] = None

    @property
    def needs_disambiguation(self) -> bool:
        return bool(self.analysis.pairs)

    def summary(self) -> str:
        lines = [f"function {self.function.name}"]
        lines.append(
            f"  ambiguous pairs: {len(self.analysis.pairs)} on arrays "
            f"{sorted(self.analysis.conflicted_arrays) or '(none)'}"
        )
        lines.append(f"  validation groups after reduction: {len(self.groups)}")
        for group in self.groups:
            lines.append(
                f"    @{group.array}: {len(group.loads)}L + "
                f"{len(group.stores)}S"
            )
        if self.suggested_depth is not None:
            lines.append(f"  suggested Depth_q: {self.suggested_depth}")
        lines.append(
            f"  circuit: {len(self.build.circuit.components)} components, "
            f"{len(self.build.circuit.channels)} channels, "
            f"{len(self.build.units)} PreVV units, "
            f"{len(self.build.lsqs)} LSQs"
        )
        if self.lint is not None:
            lines.append("  " + self.lint.summary())
        return "\n".join(lines)


def run_pipeline(
    fn: Function,
    config: HardwareConfig,
    args: Optional[Dict[str, int]] = None,
    t_org: float = DEFAULT_T_ORG,
    p_squash: float = DEFAULT_P_SQUASH,
    t_token: float = DEFAULT_T_TOKEN,
    lint: bool = True,
) -> CompilationReport:
    """Verify -> analyze -> reduce -> (size) -> synthesize -> lint.

    The sizing stage applies the Sec. V-A matched-depth model with the
    given pipeline estimates; it only *reports* the suggestion — the
    generated circuit uses ``config.prevv_depth`` so that evaluation
    sweeps stay explicit.

    The final stage runs the circuit- and PreVV-layer lint passes over
    the build (the IR layer already ran inside ``verify_function``) and
    raises :class:`CompileError` on any error-severity finding — a
    generated circuit that can deadlock or miss ordering hardware never
    reaches simulation.  Pass ``lint=False`` to skip (e.g. when
    deliberately building stress-test configurations).
    """
    verify_function(fn)
    analysis = analyze_function(fn)
    groups = reduce_pairs(analysis)
    depth = None
    if groups and config.memory_style == "prevv":
        depth = suggest_depth(t_org, p_squash, t_token)
    build = compile_function(fn, config, args=args)
    lint_report = None
    if lint:
        lint_report = lint_build(build, fn=fn, config=config)
        if not lint_report.ok:
            details = "; ".join(d.format() for d in lint_report.errors)
            raise CompileError(f"{fn.name}: circuit lint failed: {details}")
    return CompilationReport(
        function=fn,
        analysis=analysis,
        groups=groups,
        suggested_depth=depth,
        build=build,
        lint=lint_report,
    )
