"""Elastic circuit synthesis: IR functions -> dataflow circuits.

This is the reproduction of Dynamatic's netlist generation [15] plus the
paper's LLVM pass that swaps the LSQ for PreVV components:

* every basic block gets a control token stream (Entry for the entry
  block, ControlMerge at multi-predecessor joins);
* SSA values are routed along CFG edges: Branch components at conditional
  exits, Mux components (driven by the ControlMerge index) at joins;
* OEHB+TEHB buffer pairs on back-edges give loops their token storage;
* memory accesses attach to a per-array interface:

  - hazard-free arrays        -> plain :class:`MemoryController`;
  - conflicted arrays (LSQ)   -> :class:`LoadStoreQueue` with per-block
    allocation groups;
  - conflicted arrays (PreVV) -> plain controller (premature execution)
    **plus** a :class:`PreVVUnit` observing packed ``(index, value)``
    copies of every member operation, with ReplayGates tagging loop-body
    iterations, fake-token generators on skipped conditional paths
    (Sec. V-C) and done-token generators on nest exits.

The builder enforces the structural restrictions stated in DESIGN.md:
PreVV member operations must live in innermost loop bodies of (possibly
imperfect) nests, and conditional members must be guarded by a single
if-branch whose skip edge can trigger the fake token.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis import MemoryAnalysis, PreVVGroup, analyze_function, reduce_pairs
from ..config import HardwareConfig
from ..dataflow import (
    Branch,
    Circuit,
    Constant,
    ControlMerge,
    Entry,
    Fifo,
    Fork,
    Mux,
    OpaqueBuffer,
    Operator,
    Select,
    Sink,
    TransparentBuffer,
    TransparentFifo,
)
from ..errors import CompileError
from ..ir import (
    Argument,
    BasicBlock,
    BinaryInst,
    BranchInst,
    ConstInt,
    Function,
    Instruction,
    JumpInst,
    LoadInst,
    PhiInst,
    RetInst,
    SelectInst,
    StoreInst,
    Value,
    back_edges,
    dominators,
    find_loops,
    innermost_loop_of,
    verify_function,
)
from ..lsq import GroupSpec, LoadStoreQueue
from ..memory import Memory, MemoryController
from ..prevv import (
    DoneTokenGenerator,
    FakeTokenGenerator,
    PairPacker,
    PortConfig,
    PreVVUnit,
    ReplayGate,
    SquashController,
)

Endpoint = Tuple[object, str]  # (component, output port)


@dataclass
class BuildResult:
    """Everything the runner needs to simulate and measure a kernel."""

    circuit: Circuit
    memory: Memory
    config: HardwareConfig
    exit_sink: Sink
    ret_sink: Optional[Sink]
    controllers: List[MemoryController] = field(default_factory=list)
    lsqs: List[LoadStoreQueue] = field(default_factory=list)
    units: List[PreVVUnit] = field(default_factory=list)
    gates: List[ReplayGate] = field(default_factory=list)
    squash_controller: Optional[SquashController] = None
    analysis: Optional[MemoryAnalysis] = None
    groups: List[PreVVGroup] = field(default_factory=list)

    @property
    def memory_interfaces(self):
        return list(self.controllers) + list(self.lsqs)


def compile_function(
    fn: Function,
    config: HardwareConfig,
    args: Optional[Dict[str, int]] = None,
) -> BuildResult:
    """Compile ``fn`` into an elastic circuit under ``config``.

    ``args`` binds scalar arguments to constants (the evaluation fixes
    kernel sizes at synthesis time, exactly like the paper's HLS flow).
    """
    return _Builder(fn, config, args or {}).build()


class _Builder:
    def __init__(self, fn: Function, config: HardwareConfig, args: Dict[str, int]):
        verify_function(fn)
        self.fn = fn
        self.config = config
        self.args = args
        for arg in fn.args:
            if arg.name not in args:
                raise CompileError(
                    f"{fn.name}: argument {arg.name!r} must be bound at compile "
                    "time (pass args={...})"
                )
        self.circuit = Circuit(f"{fn.name}_{config.name}")
        self.memory = Memory({n: d.size for n, d in fn.arrays.items()})
        self.loops = find_loops(fn)
        self.backedges = set(
            (id(a), id(b)) for a, b in back_edges(fn)
        )
        self.doms = dominators(fn)
        self.analysis = analyze_function(fn)
        self.groups = reduce_pairs(self.analysis)
        if config.memory_style == "none" and self.analysis.pairs:
            raise CompileError(
                f"{fn.name}: kernel has ambiguous pairs; memory_style='none' "
                "would be unsound"
            )
        # Bookkeeping
        self._uid = 0
        self._demands: Dict[Tuple[int, str], List[Tuple[object, str]]] = {}
        self._endpoint_owner: Dict[Tuple[int, str], object] = {}
        self._val_points: Dict[Tuple[int, int], Endpoint] = {}  # (bb, value)
        self._ctrl_points: Dict[int, Endpoint] = {}
        self._bb_consts: Dict[Tuple[int, int], Endpoint] = {}
        self._edge_gates: List[ReplayGate] = []
        self._domain_gates: Dict[int, ReplayGate] = {}
        self._domain_of_loop: Dict[int, int] = {}
        self._live_in: Dict[int, Set[Value]] = {}
        self._phase_of_loop: Dict[int, int] = {}
        self._op_port: Dict[int, Tuple[object, int]] = {}
        self._packer_feeds: List = []
        self.result: Optional[BuildResult] = None

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------
    def _name(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}_{self._uid}"

    def _demand(self, src: Endpoint, dst_comp, dst_port: str) -> None:
        comp, port = src
        key = (id(comp), port)
        self._demands.setdefault(key, []).append((dst_comp, dst_port))
        self._endpoint_owner[key] = comp

    def _finalize_demands(self) -> None:
        """Insert forks for fan-out, sinks for dangling outputs.

        Every fork output gets a transparent slack FIFO: an eager fork
        cannot accept its next token until the slowest consumer took the
        current one, so without slack one slow consumer (say, an operator
        waiting on a multiplier) serializes every sibling path.  This is
        the role of Dynamatic's buffer-placement pass.
        """
        slack_depth = max(2, self.config.mem_port_slack)
        for (comp_id, port), consumers in list(self._demands.items()):
            comp = self._endpoint_owner[(comp_id, port)]
            if len(consumers) == 1:
                dst, dport = consumers[0]
                self.circuit.connect(comp, port, dst, dport)
            else:
                fork = self.circuit.add(
                    Fork(self._name(f"fork_{comp.name}"), len(consumers))
                )
                self.circuit.connect(comp, port, fork, "in")
                for k, (dst, dport) in enumerate(consumers):
                    slack = self.circuit.add(
                        TransparentFifo(
                            self._name(f"slk_{comp.name}_{k}"), slack_depth
                        )
                    )
                    self.circuit.connect(fork, f"out{k}", slack, "in")
                    self.circuit.connect(slack, "out", dst, dport)
        # Dangling outputs -> sinks (e.g. unused branch sides).
        for comp in list(self.circuit.components):
            for port in list(getattr(comp, "_declared_outputs", [])):
                if port not in comp.outputs:
                    sink = self.circuit.add(
                        Sink(self._name(f"sink_{comp.name}"), record=False)
                    )
                    self.circuit.connect(comp, port, sink, "in")

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def _compute_liveness(self) -> None:
        fn = self.fn

        def trackable(v: Value) -> bool:
            return isinstance(v, (Instruction, Argument))

        uses: Dict[int, Set[Value]] = {}
        defs: Dict[int, Set[Value]] = {}
        for block in fn.blocks:
            u: Set[Value] = set()
            d: Set[Value] = set(block.phis)
            for inst in block.instructions:
                for op in inst.operands:
                    if trackable(op):
                        u.add(op)
                d.add(inst)
            uses[id(block)] = u
            defs[id(block)] = d
        # Arguments are defined in entry.
        defs[id(fn.entry)] |= set(fn.args)

        live_in: Dict[int, Set[Value]] = {id(b): set() for b in fn.blocks}
        changed = True
        while changed:
            changed = False
            for block in reversed(fn.blocks):
                out: Set[Value] = set()
                for succ in block.successors:
                    out |= live_in[id(succ)] - set(succ.phis)
                    for phi in succ.phis:
                        inc = phi.incoming_for(block)
                        if trackable(inc):
                            out.add(inc)
                new_in = (uses[id(block)] | out) - defs[id(block)]
                new_in -= set(block.phis)
                if new_in != live_in[id(block)]:
                    live_in[id(block)] = new_in
                    changed = True
        self._live_in = live_in

    def _routed_values(self, block: BasicBlock) -> List[Value]:
        """Values that must arrive at ``block`` per activation (sorted)."""
        values = set(self._live_in[id(block)]) | set(block.phis)
        return sorted(values, key=lambda v: v.name)

    # ------------------------------------------------------------------
    # Build phases
    # ------------------------------------------------------------------
    def build(self) -> BuildResult:
        self._compute_liveness()
        self._assign_domains_and_phases()
        interfaces = self._create_memory_interfaces()
        self._create_block_components()
        self._wire_edges()
        self._wire_instructions()
        self._wire_memory(interfaces)
        exit_sink, ret_sink = self._wire_exit()
        squash_ctrl = self._wire_prevv_support(interfaces)
        self._finalize_demands()
        self.circuit.validate()
        result = BuildResult(
            circuit=self.circuit,
            memory=self.memory,
            config=self.config,
            exit_sink=exit_sink,
            ret_sink=ret_sink,
            controllers=[
                c for c in interfaces.values()
                if isinstance(c, MemoryController)
            ],
            lsqs=[
                c for c in interfaces.values()
                if isinstance(c, LoadStoreQueue)
            ],
            units=list(self._units),
            gates=list(self._edge_gates),
            squash_controller=squash_ctrl,
            analysis=self.analysis,
            groups=self.groups,
        )
        self.result = result
        return result

    # ------------------------------------------------------------------
    # Domains and phases (PreVV only)
    # ------------------------------------------------------------------
    def _block_of(self, inst: Instruction) -> BasicBlock:
        return inst.parent

    def _top_loop_of(self, loop):
        while loop.parent is not None:
            loop = loop.parent
        return loop

    def _assign_domains_and_phases(self) -> None:
        if self.config.memory_style != "prevv" or not self.groups:
            return
        # Phases: top-level loops in program order.
        top_loops = [l for l in self.loops if l.parent is None]
        top_loops.sort(key=lambda l: self.fn.blocks.index(l.header))
        for phase, loop in enumerate(top_loops):
            self._phase_of_loop[id(loop)] = phase
        # Every loop gets a squash domain: a violation in an inner loop
        # cascades to enclosing/related loops (their tokens are derived
        # from squashed iterations), so every loop needs replay gates.
        for op in (
            op for group in self.groups
            for op in list(group.loads) + list(group.stores)
        ):
            if innermost_loop_of(self.loops, self._block_of(op)) is None:
                raise CompileError(
                    f"{self.fn.name}: PreVV operation {op.name} is not "
                    "inside any loop"
                )
        for next_domain, loop in enumerate(self.loops):
            self._domain_of_loop[id(loop)] = next_domain

    # ------------------------------------------------------------------
    # Memory interfaces
    # ------------------------------------------------------------------
    def _mem_ops_in_program_order(self, array: str):
        ops = []
        for block in self.fn.blocks:
            for inst in block.memory_ops():
                if inst.array.name == array:
                    ops.append(inst)
        return ops

    def _create_memory_interfaces(self) -> Dict[str, object]:
        cfg = self.config
        interfaces: Dict[str, object] = {}
        self._units: List[PreVVUnit] = []
        for array in sorted(self.fn.arrays):
            ops = self._mem_ops_in_program_order(array)
            if not ops:
                continue
            loads = [o for o in ops if isinstance(o, LoadInst)]
            stores = [o for o in ops if isinstance(o, StoreInst)]
            conflicted = array in self.analysis.conflicted_arrays
            use_lsq = conflicted and cfg.memory_style in ("dynamatic", "fast")
            if use_lsq:
                groups = self._lsq_groups(array, loads, stores)
                lsq = LoadStoreQueue(
                    self._name(f"lsq_{array}"),
                    self.memory,
                    array,
                    n_loads=len(loads),
                    n_stores=len(stores),
                    groups=groups,
                    depth_loads=cfg.lsq_depth_loads,
                    depth_stores=cfg.lsq_depth_stores,
                    alloc_latency=cfg.effective_alloc_latency,
                    load_latency=cfg.load_latency,
                    loads_per_cycle=cfg.loads_per_cycle,
                    stores_per_cycle=cfg.stores_per_cycle,
                    style=cfg.memory_style,
                    addr_width=cfg.addr_width,
                    data_width=cfg.data_width,
                )
                self.circuit.add(lsq)
                interfaces[array] = lsq
            else:
                mc = MemoryController(
                    self._name(f"mc_{array}"),
                    self.memory,
                    array,
                    n_loads=len(loads),
                    n_stores=len(stores),
                    load_latency=cfg.load_latency,
                    loads_per_cycle=cfg.loads_per_cycle,
                    stores_per_cycle=cfg.stores_per_cycle,
                    addr_width=cfg.addr_width,
                    data_width=cfg.data_width,
                )
                self.circuit.add(mc)
                interfaces[array] = mc
            for i, op in enumerate(loads):
                self._op_port[id(op)] = (interfaces[array], i)
                self._val_points[(id(op.parent), id(op))] = (
                    interfaces[array],
                    f"ld{i}_data",
                )
            for j, op in enumerate(stores):
                self._op_port[id(op)] = (interfaces[array], j)
        return interfaces

    def _lsq_groups(self, array, loads, stores) -> List[GroupSpec]:
        load_index = {id(op): i for i, op in enumerate(loads)}
        store_index = {id(op): j for j, op in enumerate(stores)}
        groups = []
        self._lsq_group_blocks: Dict[str, List[BasicBlock]] = getattr(
            self, "_lsq_group_blocks", {}
        )
        blocks = []
        for block in self.fn.blocks:
            ops = [o for o in block.memory_ops() if o.array.name == array]
            if not ops:
                continue
            spec = []
            for op in ops:
                if isinstance(op, LoadInst):
                    spec.append(("load", load_index[id(op)]))
                else:
                    spec.append(("store", store_index[id(op)]))
            groups.append(GroupSpec(spec))
            blocks.append(block)
        self._lsq_group_blocks[array] = blocks
        return groups

    # ------------------------------------------------------------------
    # Pass 1: per-block components
    # ------------------------------------------------------------------
    def _create_block_components(self) -> None:
        fn = self.fn
        self._muxes: Dict[Tuple[int, int], Mux] = {}
        self._cmerges: Dict[int, ControlMerge] = {}
        for block in fn.blocks:
            preds = fn.predecessors(block)
            if block is fn.entry:
                entry = self.circuit.add(Entry(f"entry_{block.name}"))
                self._ctrl_points[id(block)] = (entry, "out")
            elif len(preds) >= 2:
                cmerge = self.circuit.add(
                    ControlMerge(f"cmerge_{block.name}", len(preds))
                )
                self._cmerges[id(block)] = cmerge
                self._ctrl_points[id(block)] = (cmerge, "out")
                routed = self._routed_values(block)
                if routed:
                    for value in routed:
                        mux = self.circuit.add(
                            Mux(self._name(f"mux_{block.name}_{value.name}"),
                                len(preds))
                        )
                        self._muxes[(id(block), id(value))] = mux
                        self._demand((cmerge, "index"), mux, "select")
                else:
                    sink = self.circuit.add(
                        Sink(self._name(f"sink_idx_{block.name}"), record=False)
                    )
                    self._demand((cmerge, "index"), sink, "in")
            # single-pred blocks: control point set during edge wiring
            # Instruction components
            for inst in block.instructions:
                self._create_instruction_component(block, inst)
        # Argument constants in entry.
        for arg in fn.args:
            const = self.circuit.add(
                Constant(self._name(f"arg_{arg.name}"), self.args[arg.name])
            )
            self._demand(self._ctrl_points[id(fn.entry)], const, "ctrl")
            self._val_points[(id(fn.entry), id(arg))] = (const, "out")

    def _create_instruction_component(self, block, inst) -> None:
        if isinstance(inst, BinaryInst):
            comp = self.circuit.add(
                Operator.from_opcode(
                    self._name(f"{inst.opcode}_{inst.name}"), inst.opcode,
                    width=self.config.data_width,
                )
            )
            self._val_points[(id(block), id(inst))] = (comp, "out")
        elif isinstance(inst, SelectInst):
            comp = self.circuit.add(Select(self._name(f"select_{inst.name}")))
            self._val_points[(id(block), id(inst))] = (comp, "out")
        elif isinstance(inst, LoadInst):
            pass  # endpoint resolved via the memory interface in _wire_memory
        elif isinstance(inst, (StoreInst, BranchInst, JumpInst, RetInst)):
            pass
        elif isinstance(inst, PhiInst):
            pass  # muxes created with the block
        else:  # pragma: no cover - defensive
            raise CompileError(f"cannot synthesize {inst!r}")

    # ------------------------------------------------------------------
    # Value resolution
    # ------------------------------------------------------------------
    def _const_endpoint(self, block, value: int) -> Endpoint:
        key = (id(block), value)
        if key not in self._bb_consts:
            const = self.circuit.add(
                Constant(self._name(f"const_{block.name}_{value}"), value)
            )
            self._demand(self._ctrl_points[id(block)], const, "ctrl")
            self._bb_consts[key] = (const, "out")
        return self._bb_consts[key]

    def _value_endpoint(self, block, value: Value) -> Endpoint:
        if isinstance(value, ConstInt):
            return self._const_endpoint(block, value.value)
        key = (id(block), id(value))
        point = self._val_points.get(key)
        if point is None:
            raise CompileError(
                f"{self.fn.name}: no endpoint for {value.short()} in block "
                f"{block.name} (liveness/routing bug)"
            )
        return point

    # ------------------------------------------------------------------
    # Pass 2: edge wiring
    # ------------------------------------------------------------------
    def _gated_edges(self) -> Set[Tuple[int, int]]:
        gated = set()
        for loop_id, _domain in self._domain_of_loop.items():
            loop = next(l for l in self.loops if id(l) == loop_id)
            for succ in loop.header.successors:
                if succ in loop.blocks and succ is not loop.header:
                    gated.add((id(loop.header), id(succ)))
        return gated

    def _wire_edges(self) -> None:
        fn = self.fn
        gated = self._gated_edges()
        self._edge_ctrl: Dict[Tuple[int, int], Endpoint] = {}
        # Branch components per (block, source-key); created lazily.
        branch_cache: Dict[Tuple[int, object], Branch] = {}

        order = fn.reachable_blocks()
        for block in order:
            term = block.terminator
            succs = block.successors
            if not succs:
                continue
            cond_ep = None
            if isinstance(term, BranchInst):
                cond_ep = self._value_endpoint(block, term.cond)

            for succ in succs:
                routed = self._routed_values(succ)
                pred_list = fn.predecessors(succ)
                pred_idx = next(
                    k for k, p in enumerate(pred_list) if p is block
                )
                items: List[Tuple[object, Endpoint]] = []
                # control token
                items.append(("ctrl", self._ctrl_points[id(block)]))
                for value in routed:
                    if isinstance(value, PhiInst) and value.parent is succ:
                        source = value.incoming_for(block)
                    else:
                        source = value
                    items.append((value, self._value_endpoint(block, source)))

                for target, src_ep in items:
                    ep = src_ep
                    if isinstance(term, BranchInst):
                        skey = (id(block), self._source_key(target, src_ep))
                        branch = branch_cache.get(skey)
                        if branch is None:
                            branch = self.circuit.add(
                                Branch(self._name(f"br_{block.name}"))
                            )
                            branch._declared_outputs = ["true", "false"]
                            self._demand(ep, branch, "data")
                            self._demand(cond_ep, branch, "cond")
                            branch_cache[skey] = branch
                        side = "true" if succ is term.if_true else "false"
                        branch._declared_outputs = [
                            p for p in branch._declared_outputs if p != side
                        ]
                        ep = (branch, side)
                    ep = self._buffer_edge(block, succ, ep, gated, target)
                    self._attach_edge_value(
                        block, succ, pred_idx, target, ep, len(pred_list)
                    )

    def _source_key(self, target, src_ep):
        if target == "ctrl":
            return "ctrl"
        comp, port = src_ep
        return (id(comp), port)

    def _buffer_edge(self, block, succ, ep, gated, target) -> Endpoint:
        """Back-edge storage and replay-gate insertion on one edge value."""
        comp, port = ep
        if (id(block), id(succ)) in self.backedges:
            tehb = self.circuit.add(TransparentBuffer(self._name("tehb")))
            oehb = self.circuit.add(OpaqueBuffer(self._name("oehb")))
            self._demand(ep, tehb, "in")
            chan = self.circuit.connect(tehb, "out", oehb, "in")
            chan.is_backedge = True
            ep = (oehb, "out")
        if (id(block), id(succ)) in gated:
            loop = next(
                l for l in self.loops
                if id(l.header) == id(block) and id(l) in self._domain_of_loop
            )
            domain = self._domain_of_loop[id(loop)]
            gate = self._domain_gates.get(domain)
            if gate is None:
                gate = self.circuit.add(
                    ReplayGate(f"gate_d{domain}", domain)
                )
                self._domain_gates[domain] = gate
                self._edge_gates.append(gate)
            k = gate.add_channel()
            self._demand(ep, gate, gate.in_port(k))
            ep = (gate, gate.out_port(k))
        return ep

    def _attach_edge_value(self, block, succ, pred_idx, target, ep, n_preds):
        if target == "ctrl":
            self._edge_ctrl[(id(block), id(succ))] = ep
        if n_preds >= 2:
            if target == "ctrl":
                cmerge = self._cmerges[id(succ)]
                self._demand(ep, cmerge, f"in{pred_idx}")
            else:
                mux = self._muxes[(id(succ), id(target))]
                self._demand(ep, mux, f"in{pred_idx}")
                self._val_points[(id(succ), id(target))] = (mux, "out")
        else:
            if target == "ctrl":
                self._ctrl_points[id(succ)] = ep
            else:
                self._val_points[(id(succ), id(target))] = ep

    # ------------------------------------------------------------------
    # Pass 3: in-block instruction operands
    # ------------------------------------------------------------------
    def _wire_instructions(self) -> None:
        for block in self.fn.blocks:
            for inst in block.instructions:
                if isinstance(inst, BinaryInst):
                    comp, _ = self._val_points[(id(block), id(inst))]
                    self._demand(
                        self._value_endpoint(block, inst.lhs), comp, "in0"
                    )
                    self._demand(
                        self._value_endpoint(block, inst.rhs), comp, "in1"
                    )
                elif isinstance(inst, SelectInst):
                    comp, _ = self._val_points[(id(block), id(inst))]
                    self._demand(
                        self._value_endpoint(block, inst.cond), comp, "cond"
                    )
                    self._demand(
                        self._value_endpoint(block, inst.if_true), comp, "a"
                    )
                    self._demand(
                        self._value_endpoint(block, inst.if_false), comp, "b"
                    )

    # ------------------------------------------------------------------
    # Pass 4: memory wiring
    # ------------------------------------------------------------------
    def _port_slack(self, src: Endpoint, interface, port: str) -> None:
        """Demand ``src`` into ``interface.port`` through a slack FIFO.

        The transparent FIFO decouples the producing fork from the port's
        grant condition (e.g. a store address must not block its producer
        while the store data is still being computed) — the role of
        Dynamatic's buffer placement in front of memory interfaces.
        """
        fifo = self.circuit.add(
            TransparentFifo(
                self._name(f"slack_{interface.name}_{port}"),
                self.config.mem_port_slack,
            )
        )
        self._demand(src, fifo, "in")
        self.circuit.connect(fifo, "out", interface, port)

    def _wire_memory(self, interfaces: Dict[str, object]) -> None:
        prevv_ops: Set[int] = set()
        if self.config.memory_style == "prevv":
            for group in self.groups:
                prevv_ops.update(id(op) for op in group.loads + group.stores)

        for block in self.fn.blocks:
            for inst in block.memory_ops():
                interface, port = self._op_port[id(inst)]
                if isinstance(inst, LoadInst):
                    self._port_slack(
                        self._value_endpoint(block, inst.index),
                        interface,
                        f"ld{port}_addr",
                    )
                else:
                    self._port_slack(
                        self._value_endpoint(block, inst.index),
                        interface,
                        f"st{port}_addr",
                    )
                    self._port_slack(
                        self._value_endpoint(block, inst.value),
                        interface,
                        f"st{port}_data",
                    )
        # LSQ group allocation tokens come from the owning block's control.
        for array, lsq in interfaces.items():
            if isinstance(lsq, LoadStoreQueue):
                for g, block in enumerate(self._lsq_group_blocks[array]):
                    self._demand(
                        self._ctrl_points[id(block)], lsq, f"group{g}"
                    )

    # ------------------------------------------------------------------
    # Pass 5: exits
    # ------------------------------------------------------------------
    def _exit_block(self) -> BasicBlock:
        exits = [
            b for b in self.fn.blocks
            if isinstance(b.terminator, RetInst)
        ]
        if len(exits) != 1:
            raise CompileError(
                f"{self.fn.name}: expected exactly one return block, "
                f"found {len(exits)}"
            )
        return exits[0]

    def _wire_exit(self) -> Tuple[Sink, Optional[Sink]]:
        block = self._exit_block()
        exit_sink = self.circuit.add(Sink("exit_ctrl"))
        self._demand(self._ctrl_points[id(block)], exit_sink, "in")
        ret_sink = None
        term = block.terminator
        if term.value is not None:
            ret_sink = self.circuit.add(Sink("ret_value"))
            self._demand(
                self._value_endpoint(block, term.value), ret_sink, "in"
            )
        # Any remaining unused loads etc. are handled by demand finalization.
        return exit_sink, ret_sink

    # ------------------------------------------------------------------
    # Pass 6: PreVV units, fakes, dones, controller
    # ------------------------------------------------------------------
    def _needs_fake(self, op) -> bool:
        """True when the op's block is skipped on some loop iterations."""
        block = self._block_of(op)
        loop = innermost_loop_of(self.loops, block)
        # The block executes every iteration iff it dominates every
        # back-edge tail of its loop.
        tails = [
            tail for tail, header in back_edges(self.fn)
            if header is loop.header
        ]
        return not all(block in self.doms.get(t, set()) for t in tails)

    def _skip_edge_ctrl(self, op) -> Endpoint:
        """Control endpoint of the edge taken when the op's block is skipped."""
        block = self._block_of(op)
        preds = self.fn.predecessors(block)
        if len(preds) != 1 or not isinstance(preds[0].terminator, BranchInst):
            raise CompileError(
                f"{self.fn.name}: conditional PreVV op {op.name} must sit in "
                "a block with a single conditionally-branching predecessor"
            )
        guard = preds[0]
        term = guard.terminator
        other = term.if_false if term.if_true is block else term.if_true
        ep = self._edge_ctrl.get((id(guard), id(other)))
        if ep is None:
            raise CompileError(
                f"{self.fn.name}: cannot locate skip edge control for "
                f"{op.name} ({guard.name} -> {other.name}); the skip target "
                "must be a single-predecessor block"
            )
        return ep

    def _nest_exit_ctrl(self, op) -> Endpoint:
        """Control endpoint of the op's top-level-loop exit edge."""
        loop = self._top_loop_of(
            innermost_loop_of(self.loops, self._block_of(op))
        )
        header = loop.header
        term = header.terminator
        if not isinstance(term, BranchInst):
            raise CompileError(
                f"{self.fn.name}: loop header {header.name} must end in a "
                "conditional branch"
            )
        exit_succ = (
            term.if_false if term.if_true in loop.blocks else term.if_true
        )
        ep = self._edge_ctrl.get((id(header), id(exit_succ)))
        if ep is None:
            raise CompileError(
                f"{self.fn.name}: cannot locate nest exit control "
                f"({header.name} -> {exit_succ.name}); the exit target must "
                "be a single-predecessor block"
            )
        return ep

    def _wire_prevv_support(self, interfaces) -> Optional[SquashController]:
        if self.config.memory_style != "prevv" or not self.groups:
            return None
        controller = SquashController(self.circuit, self.memory)
        for gate in self._edge_gates:
            controller.register_gate(gate)

        all_mem_ops = list(self.fn.memory_ops())
        rom_pos = {id(op): k for k, op in enumerate(all_mem_ops)}

        for group in self.groups:
            ops = sorted(
                group.loads + group.stores, key=lambda o: rom_pos[id(o)]
            )
            ports = []
            for op in ops:
                block = self._block_of(op)
                loop = innermost_loop_of(self.loops, block)
                domain = self._domain_of_loop[id(loop)]
                phase = self._phase_of_loop[id(self._top_loop_of(loop))]
                ports.append(
                    PortConfig(
                        kind="load" if isinstance(op, LoadInst) else "store",
                        array=group.array,
                        domain=domain,
                        phase=phase,
                        rom_pos=rom_pos[id(op)],
                    )
                )
            unit = self.circuit.add(
                PreVVUnit(
                    self._name(f"prevv_{group.array}"),
                    self.memory,
                    controller,
                    ports,
                    queue_depth=self.config.prevv_depth,
                    validations_per_cycle=(
                        self.config.prevv_validations_per_cycle
                    ),
                    reorder_window=self.config.prevv_reorder_window,
                    addr_width=self.config.addr_width,
                    data_width=self.config.data_width,
                )
            )
            self._units.append(unit)
            for k, op in enumerate(ops):
                self._wire_prevv_port(unit, k, op, interfaces[group.array])
        return controller

    def _wire_prevv_port(self, unit, port_idx, op, mc) -> None:
        block = self._block_of(op)
        iface, mc_port_idx = self._op_port[id(op)]
        unit.attach_mc_port(
            port_idx,
            iface,
            "load" if isinstance(op, LoadInst) else "store",
            mc_port_idx,
        )
        fifo_depth = self.config.prevv_fifo_depth
        packer = self.circuit.add(PairPacker(self._name(f"pack_{op.name}")))
        idx_fifo = self.circuit.add(
            Fifo(self._name(f"pfifo_idx_{op.name}"), fifo_depth)
        )
        val_fifo = self.circuit.add(
            Fifo(self._name(f"pfifo_val_{op.name}"), fifo_depth)
        )
        out_fifo = self.circuit.add(
            Fifo(self._name(f"pfifo_out_{op.name}"), fifo_depth)
        )
        self.circuit.connect(idx_fifo, "out", packer, "index")
        self.circuit.connect(val_fifo, "out", packer, "value")
        self.circuit.connect(packer, "out", out_fifo, "in")

        # Tap the index (both kinds) and the value (response or store data).
        self._demand(self._value_endpoint(block, op.index), idx_fifo, "in")
        if isinstance(op, LoadInst):
            self._demand((iface, f"ld{mc_port_idx}_data"), val_fifo, "in")
        else:
            self._demand(self._value_endpoint(block, op.value), val_fifo, "in")

        # Real, fake and done packets use separate unit channels so the
        # fast fake path can never head-of-line-block slow real packets.
        self.circuit.connect(out_fifo, "out", unit, unit.port_name(port_idx))
        if self._needs_fake(op):
            fake = self.circuit.add(
                FakeTokenGenerator(self._name(f"fake_{op.name}"))
            )
            self._demand(self._skip_edge_ctrl(op), fake, "in")
            self.circuit.connect(
                fake, "out", unit, unit.fake_port_name(port_idx)
            )
        done = self.circuit.add(
            DoneTokenGenerator(self._name(f"done_{op.name}"))
        )
        self._demand(self._nest_exit_ctrl(op), done, "in")
        self.circuit.connect(
            done, "out", unit, unit.done_port_name(port_idx)
        )
