"""Elastic circuit synthesis (the Dynamatic flow + the PreVV LLVM pass)."""

from .elastic import BuildResult, compile_function
from .passes import CompilationReport, run_pipeline

__all__ = ["BuildResult", "compile_function", "CompilationReport", "run_pipeline"]
