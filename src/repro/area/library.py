"""Per-component FPGA cost library.

Cost functions per ``resource_class`` (see each component's
``resource_params``).  The constants model a Xilinx 7-series fabric
(6-input LUTs, FF pairs, distributed LUTRAM) and are calibrated once
against the published Dynamatic component costs and the magnitudes of the
paper's Table I; they are **frozen** here — the benchmarks regenerate the
paper's tables from structure, not from fitted per-kernel numbers.

Key structural asymmetry (the heart of the paper's area claim):

* the **LSQ** pays for load *and* store CAM storage, an ``O(D^2)``
  load-vs-store dependency matrix and per-entry age/priority logic — its
  LUT cost grows superlinearly with depth;
* the **PreVV unit** pays for a single LUTRAM-backed circular queue plus
  one comparator column (the arbiter compares the arriving operation
  against stored entries) — linear in ``depth_q``, with FFs almost flat
  (storage lives in LUTRAM, matching Table I's tiny FF growth from
  PreVV16 to PreVV64).
"""

from __future__ import annotations

import math
from typing import Callable, Dict

from ..errors import ConfigError
from .model import Resources


def _log2(value: float) -> float:
    return math.log2(max(2.0, value))


# ----------------------------------------------------------------------
# Elastic component costs
# ----------------------------------------------------------------------
def _entry(p):
    return Resources(luts=1, ffs=1)


def _source(p):
    return Resources(luts=1, ffs=0)


def _sink(p):
    return Resources(luts=1, ffs=0)


def _constant(p):
    return Resources(luts=p.get("width", 32) / 16.0, ffs=0)


def _fork(p):
    n = p.get("n", 2)
    return Resources(luts=1.5 * n, ffs=n)


def _join(p):
    return Resources(luts=p.get("n", 2), ffs=0)


def _merge(p):
    w, n = p.get("width", 32), p.get("n", 2)
    return Resources(luts=0.35 * w * (n - 1) + 2, ffs=0, muxes=n - 1)


def _cmerge(p):
    n = p.get("n", 2)
    return Resources(luts=3 * n + 4, ffs=4, muxes=n - 1)


def _mux(p):
    w, n = p.get("width", 32), p.get("n", 2)
    return Resources(luts=0.35 * w * (n - 1) + 2, ffs=0, muxes=n - 1)


def _branch(p):
    return Resources(luts=3, ffs=0)


def _select(p):
    w = p.get("width", 32)
    return Resources(luts=0.35 * w + 2, ffs=0, muxes=1)


def _oehb(p):
    w = p.get("width", 32)
    return Resources(luts=2, ffs=w + 2)


def _tehb(p):
    w = p.get("width", 32)
    return Resources(luts=0.35 * w + 2, ffs=w + 2, muxes=1)


def _fifo(p):
    w, d = p.get("width", 32), p.get("depth", 2)
    # SRL-based: LUTRAM storage + pointer control.
    return Resources(luts=w * d / 16.0 + 6, ffs=w / 4.0 + 2 * _log2(d) + 3)


def _replay_gate(p):
    w = p.get("width", 32)
    # Tagging counter + replay storage control (storage shares the domain's
    # retirement-bounded LUTRAM).
    return Resources(luts=0.5 * w + 10, ffs=w / 2.0 + 10)


def _pair_packer(p):
    return Resources(luts=p.get("width", 32) / 8.0 + 2, ffs=0)


def _fake_gen(p):
    return Resources(luts=3, ffs=1)


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
def _add(p):
    w = p.get("width", 32)
    return Resources(luts=w, ffs=0)


def _mul(p):
    w, latency = p.get("width", 32), p.get("latency", 4)
    return Resources(luts=60, ffs=w * latency / 2.0, dsps=3)


def _div(p):
    w = p.get("width", 32)
    return Resources(luts=16 * w, ffs=9 * w)


def _logic(p):
    return Resources(luts=p.get("width", 32) / 2.0, ffs=0)


def _shift(p):
    w = p.get("width", 32)
    return Resources(luts=w * _log2(w) / 6.0, ffs=0)


def _cmp(p):
    return Resources(luts=p.get("width", 32) / 2.0 + 1, ffs=0)


# ----------------------------------------------------------------------
# Memory interfaces
# ----------------------------------------------------------------------
def _memory_controller(p):
    ports = p.get("n_loads", 1) + p.get("n_stores", 1)
    aw = p.get("addr_width", 32)
    return Resources(
        luts=60 + 14 * ports + 0.3 * aw * ports,
        ffs=40 + 8 * ports,
        muxes=ports,
    )


def _lsq(p):
    """Dynamatic-style LSQ [15]/[4] (+ the [8] allocation network).

    Storage CAMs for both queues, an O(Dl*Ds) load/store dependency
    matrix, per-entry age logic, port muxing and the group-allocator ROM.
    """
    dl, ds = p.get("depth_loads", 16), p.get("depth_stores", 16)
    aw, dw = p.get("addr_width", 32), p.get("data_width", 32)
    n_ports = p.get("n_loads", 1) + p.get("n_stores", 1)
    n_groups = p.get("n_groups", 1)
    luts = (
        4.6 * dl * aw                      # load queue CAM + comparators
        + 4.6 * ds * (aw + dw / 2.0)       # store queue CAM + data mux
        + 24.0 * dl * ds                   # load-store dependency matrix
        + 11.0 * (dl * _log2(dl) + ds * _log2(ds))  # age/priority logic
        + 180.0 * n_ports                  # port interfaces
        + 40.0 * n_groups + 200.0          # group allocator + ROM
    )
    ffs = (
        2.6 * dl * (aw + 4)
        + 2.6 * ds * (aw + dw + 4)
        + 30.0 * n_ports
        + 90.0
    )
    muxes = 2.0 * (dl + ds) + 4.0 * n_ports
    if p.get("style") == "fast":
        # Straight-to-the-queue allocation network [8].
        luts += 55.0 * n_ports + 45.0 * n_groups + 260.0
        ffs += 22.0 * n_ports + 70.0
    return Resources(luts=luts, ffs=ffs, muxes=muxes)


def _prevv_unit(p):
    """Premature queue + arbiter (Sec. IV).

    The queue is LUTRAM-backed (tiny FF growth with depth, Table I);
    the arbiter adds one comparator column over the stored entries plus
    the LMerge/SMerge port logic and the order ROM.
    """
    d = p.get("depth", 16)
    aw, dw = p.get("addr_width", 32), p.get("data_width", 32)
    iw = p.get("iter_width", 16)
    n_ports = p.get("n_loads", 1) + p.get("n_stores", 1)
    luts = 0.75 * (
        d * (aw + dw + iw + 2) / 16.0      # LUTRAM queue storage
        + 2.2 * d * (aw + dw) / 2.0        # validation comparator column
        + 5.0 * d                          # head/tail valid logic
    ) + 3.75 * (
        340.0 * n_ports                    # LMerge/SMerge port interfaces
        + 40.0 * n_ports + 420.0           # squash mux + order ROM
    )
    ffs = 2.75 * (
        6.0 * d                            # entry valid/state bits
        + 4.0 * _log2(d)                   # head/tail pointers
    ) + 3.0 * (
        (aw + dw + iw) * n_ports / 3.0     # port capture registers
        + 70.0
    )
    muxes = d / 2.0 + 2.0 * n_ports
    return Resources(luts=luts, ffs=ffs, muxes=muxes)


COST_LIBRARY: Dict[str, Callable[[dict], Resources]] = {
    "entry": _entry,
    "source": _source,
    "sink": _sink,
    "constant": _constant,
    "fork": _fork,
    "join": _join,
    "merge": _merge,
    "cmerge": _cmerge,
    "mux": _mux,
    "branch": _branch,
    "select": _select,
    "oehb": _oehb,
    "tehb": _tehb,
    "fifo": _fifo,
    "replay_gate": _replay_gate,
    "pair_packer": _pair_packer,
    "fake_gen": _fake_gen,
    "add": _add,
    "mul": _mul,
    "div": _div,
    "logic": _logic,
    "shift": _shift,
    "cmp": _cmp,
    "memory_controller": _memory_controller,
    "lsq": _lsq,
    "prevv_unit": _prevv_unit,
}


def component_cost(component) -> Resources:
    """Resource estimate for one component (zero for sim-only helpers)."""
    cls = component.resource_class
    if cls is None:
        return Resources()
    try:
        fn = COST_LIBRARY[cls]
    except KeyError:
        raise ConfigError(
            f"no cost model for resource class {cls!r} "
            f"(component {component.name})"
        ) from None
    return fn(component.resource_params)
