"""Circuit-level resource aggregation and the Fig. 1 category breakdown."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .library import component_cost
from .model import (
    CATEGORY_COMPUTE,
    CATEGORY_CONTROL,
    CATEGORY_INTERFACE,
    CATEGORY_MEMORY,
    Resources,
)

#: resource-class -> Fig. 1 category
_CATEGORY_OF = {
    "lsq": CATEGORY_MEMORY,
    "prevv_unit": CATEGORY_MEMORY,
    "replay_gate": CATEGORY_MEMORY,
    "pair_packer": CATEGORY_MEMORY,
    "fake_gen": CATEGORY_MEMORY,
    "memory_controller": CATEGORY_INTERFACE,
    "add": CATEGORY_COMPUTE,
    "mul": CATEGORY_COMPUTE,
    "div": CATEGORY_COMPUTE,
    "logic": CATEGORY_COMPUTE,
    "shift": CATEGORY_COMPUTE,
    "cmp": CATEGORY_COMPUTE,
    "select": CATEGORY_COMPUTE,
}


def category_of(component) -> str:
    cls = component.resource_class
    return _CATEGORY_OF.get(cls, CATEGORY_CONTROL)


@dataclass
class CircuitReport:
    """Aggregated resources with per-category and per-component detail."""

    total: Resources = field(default_factory=Resources)
    by_category: Dict[str, Resources] = field(default_factory=dict)
    by_class: Dict[str, Resources] = field(default_factory=dict)

    def share(self, category: str, metric: str = "luts") -> float:
        """Fraction of ``metric`` spent in ``category`` (Fig. 1's y-axis)."""
        denom = getattr(self.total, metric)
        if denom == 0:
            return 0.0
        part = self.by_category.get(category, Resources())
        return getattr(part, metric) / denom

    def ordering_share(self) -> float:
        """LUT+FF+mux share of the memory-ordering hardware (Fig. 1)."""
        num = self.by_category.get(CATEGORY_MEMORY, Resources())
        total_all = self.total.luts + self.total.ffs + self.total.muxes
        if total_all == 0:
            return 0.0
        return (num.luts + num.ffs + num.muxes) / total_all


def circuit_report(circuit) -> CircuitReport:
    """Estimate resources for every component of ``circuit``."""
    report = CircuitReport()
    for comp in circuit.components:
        cost = component_cost(comp)
        report.total += cost
        cat = category_of(comp)
        report.by_category.setdefault(cat, Resources())
        report.by_category[cat] += cost
        cls = comp.resource_class or "none"
        report.by_class.setdefault(cls, Resources())
        report.by_class[cls] += cost
    return report
