"""Resource accounting primitives.

:class:`Resources` mirrors what the paper reports: LUTs, FFs and muxes
(DSPs are tracked but not evaluated — "the use of DSP is not evaluated, as
neither LSQ nor PreVV utilizes DSP").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass
class Resources:
    """FPGA resource bundle (fractional during estimation; round to report)."""

    luts: float = 0.0
    ffs: float = 0.0
    muxes: float = 0.0
    dsps: float = 0.0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.muxes + other.muxes,
            self.dsps + other.dsps,
        )

    def __iadd__(self, other: "Resources") -> "Resources":
        self.luts += other.luts
        self.ffs += other.ffs
        self.muxes += other.muxes
        self.dsps += other.dsps
        return self

    def scaled(self, factor: float) -> "Resources":
        return Resources(
            self.luts * factor,
            self.ffs * factor,
            self.muxes * factor,
            self.dsps * factor,
        )

    def rounded(self) -> "Resources":
        return Resources(
            round(self.luts), round(self.ffs), round(self.muxes),
            round(self.dsps),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "luts": self.luts,
            "ffs": self.ffs,
            "muxes": self.muxes,
            "dsps": self.dsps,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Resources(LUT={self.luts:.0f}, FF={self.ffs:.0f}, "
            f"MUX={self.muxes:.0f})"
        )


def total(parts: Iterable[Resources]) -> Resources:
    result = Resources()
    for part in parts:
        result += part
    return result


#: categories used for the Fig. 1 breakdown
CATEGORY_MEMORY = "memory_ordering"   # LSQ / PreVV units+queues
CATEGORY_COMPUTE = "computation"      # operators
CATEGORY_CONTROL = "dataflow_control" # forks/merges/muxes/buffers/gates
CATEGORY_INTERFACE = "memory_interface"  # plain controllers
