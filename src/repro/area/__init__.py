"""FPGA area/timing model: the reproduction's stand-in for Vivado."""

from .model import (
    CATEGORY_COMPUTE,
    CATEGORY_CONTROL,
    CATEGORY_INTERFACE,
    CATEGORY_MEMORY,
    Resources,
    total,
)
from .library import COST_LIBRARY, component_cost
from .report import CircuitReport, category_of, circuit_report
from .timing import clock_period, component_delay, execution_time_us

__all__ = [
    "CATEGORY_COMPUTE",
    "CATEGORY_CONTROL",
    "CATEGORY_INTERFACE",
    "CATEGORY_MEMORY",
    "Resources",
    "total",
    "COST_LIBRARY",
    "component_cost",
    "CircuitReport",
    "category_of",
    "circuit_report",
    "clock_period",
    "component_delay",
    "execution_time_us",
]
