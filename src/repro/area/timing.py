"""Clock-period estimation.

The achieved clock period of the synthesized circuit is the slowest
combinational stage.  We model per-component delay classes (ns on a
Kintex-7 ``xc7k160tfbg484-2`` under a 4 ns constraint, like the paper) and
take the maximum over the circuit, plus a routing-congestion term that
grows gently with total area (big circuits route worse).

The two structure-dependent classes carry the paper's timing story:

* LSQ search is a priority/age network over *all* entries:
  ``delay = LSQ_BASE + LSQ_PER_LOG2 * log2(Dl + Ds)``;
* the PreVV arbiter compares one arrival against the queue through a
  balanced reduction tree, shallower per level:
  ``delay = PREVV_BASE + PREVV_PER_LOG2 * log2(depth_q)``.

This reproduces Table II's shape: PreVV's CP sits slightly below the
LSQ baselines and barely moves from depth 16 to 64.
"""

from __future__ import annotations

import math

from .report import circuit_report

#: fixed delay classes (ns)
DELAY = {
    "entry": 1.0,
    "source": 1.0,
    "sink": 1.0,
    "constant": 1.2,
    "fork": 2.2,
    "join": 2.0,
    "merge": 3.6,
    "cmerge": 3.8,
    "mux": 3.9,
    "branch": 2.8,
    "select": 3.6,
    "oehb": 2.0,
    "tehb": 2.6,
    "fifo": 3.4,
    "replay_gate": 4.2,
    "pair_packer": 2.4,
    "fake_gen": 1.4,
    "add": 5.6,
    "logic": 3.0,
    "shift": 4.2,
    "cmp": 4.8,
    "mul": 6.4,
    "div": 7.3,
    "memory_controller": 6.1,
}

LSQ_BASE = 4.15
LSQ_PER_LOG2 = 0.62
PREVV_BASE = 5.1
PREVV_PER_LOG2 = 0.16
#: routing congestion: ns added per unit of ln(1 + LUTs / CONGESTION_SCALE)
CONGESTION_FACTOR = 0.55
CONGESTION_SCALE = 25_000.0


def component_delay(component) -> float:
    cls = component.resource_class
    if cls is None:
        return 0.0
    if cls == "lsq":
        p = component.resource_params
        depth = p.get("depth_loads", 16) + p.get("depth_stores", 16)
        return LSQ_BASE + LSQ_PER_LOG2 * math.log2(max(2, depth))
    if cls == "prevv_unit":
        p = component.resource_params
        return PREVV_BASE + PREVV_PER_LOG2 * math.log2(max(2, p.get("depth", 16)))
    return DELAY.get(cls, 2.0)


def clock_period(circuit) -> float:
    """Estimated achieved clock period (ns) for ``circuit``."""
    worst = max(
        (component_delay(c) for c in circuit.components), default=1.0
    )
    luts = circuit_report(circuit).total.luts
    congestion = CONGESTION_FACTOR * math.log(1.0 + luts / CONGESTION_SCALE)
    return worst + congestion


def execution_time_us(cycles: int, period_ns: float) -> float:
    """Total execution time in microseconds (Table II's last columns)."""
    return cycles * period_ns / 1000.0
