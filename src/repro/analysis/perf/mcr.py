"""Exact maximum cycle ratio over (latency, capacity)-weighted graphs.

The steady-state initiation interval of an elastic circuit is bounded
below by its *worst cycle*: a directed cycle of total latency ``L`` whose
storage can hold at most ``C`` tokens sustains at most ``C / L``
traversals per clock, so any computation that must send one token per
iteration around it has ``II >= L / C``.  Finding the binding constraint
is therefore a maximum-cycle-ratio problem over the token-flow graph.

The solver is Lawler-style iterative improvement with exact rational
arithmetic: starting from a ratio every cycle beats, repeatedly find a
cycle whose weight ``sum(L - lambda * C)`` is positive under the current
candidate ``lambda`` (Bellman-Ford longest-path relaxation with
positive-cycle extraction), tighten ``lambda`` to that cycle's exact
ratio, and stop when no cycle beats it.  Each round strictly increases
``lambda`` within the finite set of simple-cycle ratios, so termination
is guaranteed, and the final cycle — the *critical cycle* — is returned
alongside the ratio.

Edges with ``capacity=None`` (components whose storage the model cannot
bound) are excluded: a cycle through unbounded storage imposes no
throughput constraint, so dropping those edges computes the exact
maximum over the *constrained* cycles only.  Cycles whose total capacity
is zero hold no token at all — a combinational cycle, the same structure
PV103 flags — and are reported as an infinite ratio (``ratio=None``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class RatioEdge:
    """One edge of the ratio graph: ``src -> dst`` with its traversal cost.

    ``capacity=None`` means unbounded storage (the edge constrains no
    cycle); ``capacity=0`` means the edge holds no token (a cycle of only
    such edges is combinational).
    """

    src: int
    dst: int
    latency: int
    capacity: Optional[int]
    #: opaque label carried through to the critical-cycle report
    tag: str = ""


@dataclass(frozen=True)
class CriticalCycle:
    """The binding cycle of a ratio graph.

    ``ratio`` is ``None`` for a combinational (zero-capacity) cycle —
    the II constraint is infinite because the cycle can never fire.
    """

    ratio: Optional[Fraction]
    latency: int
    capacity: int
    #: edge indices (into the input edge list) along the cycle, in order
    edges: Tuple[int, ...]

    @property
    def is_combinational(self) -> bool:
        return self.ratio is None


def _zero_capacity_cycle(
    n_nodes: int, edges: Sequence[RatioEdge]
) -> Optional[Tuple[int, ...]]:
    """A cycle made entirely of zero-capacity edges, if one exists.

    Iterative DFS with an explicit edge stack; deterministic for a given
    edge order (lowest edge index explored first).
    """
    out: Dict[int, List[int]] = {}
    for idx, edge in enumerate(edges):
        if edge.capacity == 0:
            out.setdefault(edge.src, []).append(idx)
    color: Dict[int, int] = {}  # 0/absent = white, 1 = on stack, 2 = done
    for root in sorted(out):
        if color.get(root):
            continue
        path: List[int] = []  # edge indices of the current DFS path
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            node, i = stack[-1]
            succs = out.get(node, [])
            if i < len(succs):
                stack[-1] = (node, i + 1)
                eidx = succs[i]
                nxt = edges[eidx].dst
                state = color.get(nxt, 0)
                if state == 1:  # back edge: close the cycle
                    cycle = [eidx]
                    for pidx in reversed(path):
                        if edges[cycle[-1]].src == nxt:
                            break
                        cycle.append(pidx)
                    cycle.reverse()
                    # rotate so the cycle starts at its smallest edge index
                    k = cycle.index(min(cycle))
                    return tuple(cycle[k:] + cycle[:k])
                if state == 0:
                    color[nxt] = 1
                    path.append(eidx)
                    stack.append((nxt, 0))
            else:
                color[node] = 2
                stack.pop()
                if path:
                    path.pop()
    return None


def _positive_cycle(
    n_nodes: int,
    edges: Sequence[RatioEdge],
    edge_indices: Sequence[int],
    lam: Fraction,
) -> Optional[List[int]]:
    """A cycle with ``sum(latency - lam * capacity) > 0``, or ``None``.

    Bellman-Ford longest-path relaxation from a virtual source connected
    to every node with weight 0.  If any edge still relaxes after
    ``n_nodes`` full rounds, a positive cycle exists and is extracted by
    walking the predecessor chain.
    """
    dist: Dict[int, Fraction] = {}
    pred: Dict[int, int] = {}  # node -> edge index that last improved it
    zero = Fraction(0)
    weights = {
        idx: Fraction(edges[idx].latency) - lam * edges[idx].capacity
        for idx in edge_indices
    }
    for node in range(n_nodes):
        dist[node] = zero

    witness: Optional[int] = None
    for round_no in range(n_nodes + 1):
        changed = False
        for idx in edge_indices:
            edge = edges[idx]
            cand = dist[edge.src] + weights[idx]
            if cand > dist[edge.dst]:
                dist[edge.dst] = cand
                pred[edge.dst] = idx
                changed = True
                witness = edge.dst
        if not changed:
            return None
    # A node updated in the final round lies on, or is reachable from, a
    # positive cycle: walking predecessors n steps lands inside it.  A
    # broken predecessor chain (possible when relaxation has not yet
    # propagated around the cycle) aborts the extraction — the caller
    # then keeps its current bound, which stays a sound lower bound.
    node = witness
    for _ in range(n_nodes):
        eidx = pred.get(node)
        if eidx is None:
            return None
        node = edges[eidx].src
    cycle: List[int] = []
    seen: Set[int] = set()
    while node not in seen:
        seen.add(node)
        eidx = pred.get(node)
        if eidx is None:
            return None
        cycle.append(eidx)
        node = edges[eidx].src
    # The pred-walk collects edges dst->src order; keep only the simple
    # cycle closing at the revisited node, then restore forward order.
    start = node
    trimmed: List[int] = []
    for eidx in cycle:
        trimmed.append(eidx)
        if edges[eidx].src == start:
            break
    trimmed.reverse()
    k = trimmed.index(min(trimmed))
    return trimmed[k:] + trimmed[:k]


def max_cycle_ratio(
    n_nodes: int, edges: Sequence[RatioEdge]
) -> Optional[CriticalCycle]:
    """The maximum latency/capacity cycle ratio and its critical cycle.

    Returns ``None`` when the constrained subgraph is acyclic (no cycle
    bounds the II), a :class:`CriticalCycle` with ``ratio=None`` when a
    zero-capacity (combinational) cycle exists, and the exact maximum
    ratio as a :class:`~fractions.Fraction` otherwise.
    """
    combinational = _zero_capacity_cycle(n_nodes, edges)
    if combinational is not None:
        latency = sum(edges[i].latency for i in combinational)
        return CriticalCycle(
            ratio=None, latency=latency, capacity=0, edges=combinational
        )

    bounded = [i for i, e in enumerate(edges) if e.capacity is not None]
    if not bounded:
        return None

    # Self-loops short-circuit Bellman-Ford: their ratio is immediate.
    best: Optional[CriticalCycle] = None
    lam = Fraction(-1)
    for idx in bounded:
        edge = edges[idx]
        if edge.src == edge.dst:
            ratio = Fraction(edge.latency, edge.capacity)
            if best is None or ratio > best.ratio:
                best = CriticalCycle(
                    ratio=ratio,
                    latency=edge.latency,
                    capacity=edge.capacity,
                    edges=(idx,),
                )
    if best is not None:
        lam = best.ratio

    while True:
        cycle = _positive_cycle(n_nodes, edges, bounded, lam)
        if cycle is None:
            return best
        latency = sum(edges[i].latency for i in cycle)
        capacity = sum(edges[i].capacity for i in cycle)
        ratio = Fraction(latency, capacity)
        if best is not None and ratio <= best.ratio:
            # Numerically impossible (the cycle was strictly positive
            # under lam = best.ratio) but guards against livelock.
            return best
        best = CriticalCycle(
            ratio=ratio, latency=latency, capacity=capacity, edges=tuple(cycle)
        )
        lam = ratio
