"""PVPerf: static throughput proofs for elaborated dataflow circuits.

The package answers "how fast can this circuit possibly go?" without
simulating it:

* :mod:`~repro.analysis.perf.mcr` — exact maximum cycle ratio over
  (latency, capacity)-weighted graphs;
* :mod:`~repro.analysis.perf.model` — elastic circuit -> ratio graph,
  via each component's :meth:`~repro.dataflow.component.Component.perf_model`;
* :mod:`~repro.analysis.perf.pressure` — PreVV validation-bandwidth and
  premature-queue-depth constraints;
* :mod:`~repro.analysis.perf.predict` — the bundled
  :class:`~repro.analysis.perf.predict.PerfPrediction` API;
* :mod:`~repro.analysis.perf.measure` — measured counterparts and the
  static-vs-measured soundness comparison (PV404's engine).

Every reported number is a provable *lower* bound on the initiation
interval / cycle count; the PV4xx lint layer and the ``--perf`` bench
sweep are the consumers.
"""

from .mcr import CriticalCycle, RatioEdge, max_cycle_ratio
from .measure import CheckRecord, PerfMeasurement, compare, measure_kernel
from .model import PerfGraph, cycle_report, perf_graph
from .predict import PerfPrediction, predict
from .pressure import (
    QueuePressure,
    ValidationPressure,
    queue_pressure,
    validation_pressure,
)

__all__ = [
    "CheckRecord",
    "CriticalCycle",
    "PerfGraph",
    "PerfMeasurement",
    "PerfPrediction",
    "QueuePressure",
    "RatioEdge",
    "ValidationPressure",
    "compare",
    "cycle_report",
    "max_cycle_ratio",
    "measure_kernel",
    "perf_graph",
    "predict",
    "queue_pressure",
    "validation_pressure",
]
