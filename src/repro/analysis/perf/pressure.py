"""PreVV pressure models: validation bandwidth and premature-queue depth.

Two II constraints live in the PreVV unit rather than in the elastic
netlist, so the ratio graph of :mod:`repro.analysis.perf.model` cannot
see them:

* **Validation bandwidth** — the arbiter validates at most
  ``validations_per_cycle`` *real* operations per clock (fake and done
  markers ride a separate counter-update path, Sec. V-C).  A member
  operation whose block executes on every iteration of its innermost
  loop injects one real operation per iteration, so a loop with ``n``
  such members forces ``II >= n / validations_per_cycle`` on that loop.
  Conditional members may send fakes instead and are excluded — counting
  them would over-state the pressure and break the lower-bound contract.

* **Queue depth** — the premature queue holds every premature operation
  until the watermark retires it.  When PVSan's dependence prover bounds
  a pair's aliasing distance, ``next_pow2(n_ops * distance)`` slots are
  known sufficient (:class:`~repro.analysis.sanitizer.prover.PairProof`
  ``.depth_bound``); a shallower queue fills up and stalls the arbiter
  before the distance window closes.  This is backpressure, not a clean
  per-iteration ratio, so it stays an advisory (PV403) rather than a
  term of the proven II bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from ...ir.function import Function
from ...ir.loops import back_edges, dominators, find_loops, innermost_loop_of
from ..sanitizer.prover import DependenceProver, PairClass


@dataclass(frozen=True)
class ValidationPressure:
    """Validation-bandwidth II bound for one (unit, innermost loop)."""

    unit: str            # PreVV unit component name
    array: str
    loop: str            # header block name of the innermost loop
    n_real_ops: int      # members issuing a real op every iteration
    n_conditional: int   # members that may fake (excluded from the bound)
    validations_per_cycle: int

    @property
    def bound(self) -> Fraction:
        """Provable II lower bound of ``loop``, in cycles/iteration."""
        return Fraction(self.n_real_ops, self.validations_per_cycle)


@dataclass(frozen=True)
class QueuePressure:
    """Premature-queue sizing verdict for one PreVV unit."""

    unit: str
    array: str
    queue_depth: int
    #: max sufficient depth over the group's bounded-distance pairs;
    #: ``None`` when no pair has a proven distance
    required_depth: Optional[int]
    #: pairs whose distance stays unproven (no static sizing possible)
    unknown_pairs: int

    @property
    def undersized(self) -> bool:
        return (
            self.required_depth is not None
            and self.queue_depth < self.required_depth
        )


def _unconditional(fn: Function, loops, doms, block) -> bool:
    """True when ``block`` runs on every iteration of its innermost loop.

    Mirrors the builder's fake-token criterion (``_needs_fake``): the
    block executes each iteration iff it dominates every back-edge tail.
    """
    loop = innermost_loop_of(loops, block)
    if loop is None:
        return False
    tails = [t for t, h in back_edges(fn) if h is loop.header]
    return all(block in doms.get(t, set()) for t in tails)


def _block_of(fn: Function, inst):
    for block in fn.blocks:
        if inst in block.instructions:
            return block
    raise ValueError(f"{inst!r} not found in {fn.name}")


def validation_pressure(build, fn: Function) -> List[ValidationPressure]:
    """Per-(unit, loop) validation-bandwidth bounds of a PreVV build.

    ``build.units[i]`` serves ``build.groups[i]`` (same construction
    order); empty for non-PreVV builds.
    """
    loops = find_loops(fn)
    doms = dominators(fn)
    out: List[ValidationPressure] = []
    for unit, group in zip(build.units, build.groups):
        per_loop: Dict[str, List[int]] = {}  # header -> [real, conditional]
        for op in list(group.loads) + list(group.stores):
            block = _block_of(fn, op)
            loop = innermost_loop_of(loops, block)
            if loop is None:
                continue
            counts = per_loop.setdefault(loop.header.name, [0, 0])
            if _unconditional(fn, loops, doms, block):
                counts[0] += 1
            else:
                counts[1] += 1
        for header in sorted(per_loop):
            real, cond = per_loop[header]
            out.append(
                ValidationPressure(
                    unit=unit.name,
                    array=group.array,
                    loop=header,
                    n_real_ops=real,
                    n_conditional=cond,
                    validations_per_cycle=unit.validations_per_cycle,
                )
            )
    return out


def queue_pressure(
    build, fn: Function, args: Dict[str, int]
) -> List[QueuePressure]:
    """Premature-queue sizing verdicts from the PVSan dependence prover."""
    if not build.units:
        return []
    prover = DependenceProver(fn, args, build.analysis)
    proofs = {id(p.pair): p for p in prover.prove_all()}
    out: List[QueuePressure] = []
    for unit, group in zip(build.units, build.groups):
        required: Optional[int] = None
        unknown = 0
        for pair in group.pairs:
            proof = proofs.get(id(pair))
            if proof is None or proof.classification is PairClass.UNKNOWN:
                unknown += 1
            elif proof.classification is PairClass.BOUNDED_DISTANCE:
                if required is None or proof.depth_bound > required:
                    required = proof.depth_bound
        out.append(
            QueuePressure(
                unit=unit.name,
                array=group.array,
                queue_depth=unit.queue.depth,
                required_depth=required,
                unknown_pairs=unknown,
            )
        )
    return out
