"""Measured counterparts of the static bounds, and their comparison.

Soundness is only checkable when each static bound is paired with the
quantity it actually constrains — mixing loops (or cycles) turns a true
bound into a false alarm.  The pairings:

* **graph** — the critical cycle's ratio against the cycle's *own*
  firing count: among its channels, the one with the most transfers
  ``T`` satisfies ``cycles + L + C >= ratio * T`` (the ``L + C`` slack
  absorbs pipeline fill and drain; one extra cycle-load of tokens can be
  in flight at either end of the run).
* **validation** — per PreVV unit, the summed real-validation work
  ``sum(iters(loop) * n_real / v)`` can never exceed the cycle count:
  the arbiter retires at most ``v`` real operations per clock, whichever
  loop produced them.  Replayed iterations only add work on the measured
  side, so the architectural iteration counts stay a lower bound.
* **floor** — any loop's header fires once per body activation and a
  channel fires at most once per clock, so ``cycles >= iters(loop)``.

:func:`compare` evaluates every applicable pairing and returns one
record per check; a failed record means the *static analysis* is wrong
(an unsound model), never the circuit — which is exactly what the PV404
lint pass and the ``--perf`` bench sweep alarm on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from ...compile import compile_function
from ...dataflow import make_simulator
from ...eval.runner import make_done_condition
from ...ir.interpreter import run_golden
from ...kernels import get_kernel
from .predict import PerfPrediction, predict


@dataclass
class PerfMeasurement:
    """Dynamic facts of one simulated kernel run."""

    subject: str
    cycles: int
    #: per-channel transfer counts (needs the stats-collecting engine)
    channel_transfers: Dict[str, int] = field(default_factory=dict)
    #: per-loop body activations from the golden interpreter, keyed by
    #: header block name (architectural — replays not included)
    loop_activations: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class CheckRecord:
    """One static-vs-measured soundness comparison."""

    kind: str        # "graph" | "validation" | "floor"
    subject: str     # what was compared (cycle channels, unit, loop)
    static: Fraction
    measured: Fraction
    note: str = ""

    @property
    def ok(self) -> bool:
        """The lower bound held (static never exceeds measured)."""
        return self.static <= self.measured

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "static": str(self.static),
            "measured": str(self.measured),
            "ok": self.ok,
            "note": self.note,
        }


def measure_kernel(
    kernel_name: str,
    config,
    sizes: Optional[Dict[str, int]] = None,
    max_cycles: int = 2_000_000,
    engine: str = "auto",
):
    """Compile, predict, interpret and simulate one (kernel, config).

    Returns ``(prediction, measurement)`` ready for :func:`compare`.
    The checks need per-channel *transfer* counts only, which the
    compiled engine supplies through its fused counters
    (``count_transfers``); interpreted engines fall back to the full
    stats-collecting path.  ``engine="auto"`` therefore measures with
    the compiled engine whenever the compiler accepts the circuit.
    """
    kernel = get_kernel(kernel_name, **(sizes or {}))
    fn = kernel.build_ir()
    build = compile_function(fn, config, args=kernel.args)
    prediction = predict(build, fn, kernel.args)

    golden = run_golden(fn, args=kernel.args, memory=kernel.memory_init)

    build.memory.initialize(kernel.memory_init)
    sim = make_simulator(build.circuit, engine=engine,
                         max_cycles=max_cycles, count_transfers=True)
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    stats = sim.run(make_done_condition(build))

    measurement = PerfMeasurement(
        subject=build.circuit.name,
        cycles=stats.cycles,
        channel_transfers={
            ch.name: ch.transfers for ch in build.circuit.channels
        },
        loop_activations=dict(golden.loop_activations),
    )
    return prediction, measurement


def compare(
    prediction: PerfPrediction, measurement: PerfMeasurement
) -> List[CheckRecord]:
    """All applicable static-vs-measured checks, graph check first."""
    records: List[CheckRecord] = []
    cycles = Fraction(measurement.cycles)

    cycle = prediction.cycle
    if cycle is not None and not cycle.is_combinational:
        names = [ch.name for ch in prediction.graph.cycle_channels(cycle)]
        fired = max(
            (measurement.channel_transfers.get(name, 0) for name in names),
            default=0,
        )
        if fired > 0:
            slack = cycle.latency + cycle.capacity
            records.append(
                CheckRecord(
                    kind="graph",
                    subject=";".join(names),
                    static=cycle.ratio,
                    measured=Fraction(measurement.cycles + slack, fired),
                    note=f"{fired} firings, fill/drain slack {slack}",
                )
            )

    per_unit: Dict[str, Fraction] = {}
    for vp in prediction.validation:
        iters = measurement.loop_activations.get(vp.loop)
        if iters is None:
            continue
        work = Fraction(iters * vp.n_real_ops, vp.validations_per_cycle)
        per_unit[vp.unit] = per_unit.get(vp.unit, Fraction(0)) + work
    for unit in sorted(per_unit):
        records.append(
            CheckRecord(
                kind="validation",
                subject=unit,
                static=per_unit[unit],
                measured=cycles,
                note="summed real-validation work vs total cycles",
            )
        )

    if measurement.loop_activations:
        loop = max(
            sorted(measurement.loop_activations),
            key=lambda name: measurement.loop_activations[name],
        )
        records.append(
            CheckRecord(
                kind="floor",
                subject=loop,
                static=Fraction(measurement.loop_activations[loop]),
                measured=cycles,
                note="busiest loop's activations vs total cycles",
            )
        )
    return records
