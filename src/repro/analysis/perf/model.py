"""Ratio-graph construction: elastic circuit -> (latency, capacity) edges.

The ratio graph has one node per component and one edge per channel.  A
channel itself is a wire — it stores nothing and delays nothing — so each
edge carries the *consumer's* traversal cost (:meth:`Component.perf_model`):
a directed cycle then sums every on-cycle component's latency and capacity
exactly once, which is what :func:`repro.analysis.perf.mcr.max_cycle_ratio`
needs.  Multi-port components contribute their full capacity to each
incoming edge; that over-states the capacity of cycles sharing the
component, which per the soundness contract only weakens the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...dataflow.channel import Channel
from ...dataflow.circuit import Circuit
from ...dataflow.component import Component
from .mcr import CriticalCycle, RatioEdge, max_cycle_ratio


@dataclass
class PerfGraph:
    """The ratio graph of one circuit, keeping channel back-references.

    ``edges[i]`` was built from ``channels[i]``; node indices are
    positions in ``components`` (circuit construction order), so the
    whole structure is deterministic for a given build.
    """

    components: List[Component]
    channels: List[Channel]
    edges: List[RatioEdge]

    @property
    def n_nodes(self) -> int:
        return len(self.components)

    def critical_cycle(self) -> Optional[CriticalCycle]:
        """The binding cycle (see :func:`max_cycle_ratio`), or ``None``."""
        return max_cycle_ratio(self.n_nodes, self.edges)

    def cycle_channels(self, cycle: CriticalCycle) -> List[Channel]:
        """The channels along a critical cycle, in cycle order."""
        return [self.channels[i] for i in cycle.edges]


def perf_graph(circuit: Circuit) -> PerfGraph:
    """Build the ratio graph of ``circuit``.

    Channels with a dangling end (none exist in a validated circuit) are
    skipped; every other channel becomes one edge weighted by its
    consumer's :meth:`~repro.dataflow.component.Component.perf_model`.
    """
    index: Dict[int, int] = {id(c): i for i, c in enumerate(circuit.components)}
    channels: List[Channel] = []
    edges: List[RatioEdge] = []
    for chan in circuit.channels:
        if chan.producer is None or chan.consumer is None:
            continue
        latency, capacity = chan.consumer.perf_model()
        channels.append(chan)
        edges.append(
            RatioEdge(
                src=index[id(chan.producer)],
                dst=index[id(chan.consumer)],
                latency=latency,
                capacity=capacity,
                tag=chan.name,
            )
        )
    return PerfGraph(
        components=list(circuit.components), channels=channels, edges=edges
    )


def cycle_report(graph: PerfGraph, cycle: CriticalCycle) -> Dict[str, object]:
    """JSON-friendly description of a critical cycle."""
    return {
        "ratio": None if cycle.ratio is None else str(cycle.ratio),
        "latency": cycle.latency,
        "capacity": cycle.capacity,
        "combinational": cycle.is_combinational,
        "channels": [graph.channels[i].name for i in cycle.edges],
    }
