"""Static performance prediction for one compiled kernel.

:func:`predict` bundles the two static analyses — the ratio graph's
maximum cycle ratio (:mod:`repro.analysis.perf.model`) and the PreVV
pressure models (:mod:`repro.analysis.perf.pressure`) — into one
:class:`PerfPrediction`.  Every number it reports is a *lower* bound:

* :attr:`PerfPrediction.ii_lower_bound` — steady-state cycles per firing
  of the circuit's critical cycle (the maximum latency/capacity ratio,
  floored at 1: no channel fires twice in one clock).  ``None`` when a
  combinational cycle makes the constraint infinite.
* :meth:`PerfPrediction.cycles_lower_bound` — total-cycle bound given
  per-loop iteration counts.  Only constraints whose loop attribution is
  statically known enter: the floor (each loop-header firing takes a
  cycle) and the validation-bandwidth sums.  The graph bound is *not*
  multiplied into it — a static analysis cannot know how often the
  critical cycle fires per kernel run — and is instead cross-checked
  against the cycle's own measured channel transfers
  (:func:`repro.analysis.perf.measure.compare`).

The bound direction is the whole point: the autotuner can discard any
configuration whose predicted floor already exceeds the best measured
candidate, without ever simulating it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional

from ...ir.function import Function
from .mcr import CriticalCycle
from .model import PerfGraph, cycle_report, perf_graph
from .pressure import (
    QueuePressure,
    ValidationPressure,
    queue_pressure,
    validation_pressure,
)


@dataclass
class PerfPrediction:
    """Static performance facts of one compiled kernel."""

    subject: str
    graph: PerfGraph
    #: binding cycle of the ratio graph; ``None`` when no constrained
    #: cycle exists (a straight-line circuit)
    cycle: Optional[CriticalCycle]
    validation: List[ValidationPressure] = field(default_factory=list)
    queues: List[QueuePressure] = field(default_factory=list)

    @property
    def ii_lower_bound(self) -> Optional[Fraction]:
        """Cycles per critical-cycle firing; ``None`` if infinite."""
        if self.cycle is not None and self.cycle.is_combinational:
            return None
        floor = Fraction(1)
        if self.cycle is not None and self.cycle.ratio > floor:
            return self.cycle.ratio
        return floor

    def validation_bound_for(self, loop: str) -> Fraction:
        """Provable II bound of one loop from validation bandwidth."""
        bounds = [v.bound for v in self.validation if v.loop == loop]
        return max(bounds) if bounds else Fraction(0)

    def cycles_lower_bound(self, loop_activations: Dict[str, int]) -> Fraction:
        """Sound total-cycle bound given per-loop iteration counts.

        ``loop_activations`` maps loop header block names to body-entry
        counts (:attr:`repro.ir.interpreter.InterpResult.loop_activations`).
        """
        best = Fraction(0)
        for iters in loop_activations.values():
            best = max(best, Fraction(iters))
        # Validation work sums across loops: the unit processes at most
        # validations_per_cycle real ops per clock, whatever loop they
        # came from.
        per_unit: Dict[str, Fraction] = {}
        for vp in self.validation:
            iters = loop_activations.get(vp.loop)
            if iters is None:
                continue
            work = Fraction(iters * vp.n_real_ops, vp.validations_per_cycle)
            per_unit[vp.unit] = per_unit.get(vp.unit, Fraction(0)) + work
        for total in per_unit.values():
            best = max(best, total)
        return best

    def to_dict(self) -> Dict[str, object]:
        ii = self.ii_lower_bound
        return {
            "subject": self.subject,
            "ii_lower_bound": None if ii is None else str(ii),
            "critical_cycle": (
                None
                if self.cycle is None
                else cycle_report(self.graph, self.cycle)
            ),
            "validation": [
                {
                    "unit": v.unit,
                    "array": v.array,
                    "loop": v.loop,
                    "n_real_ops": v.n_real_ops,
                    "n_conditional": v.n_conditional,
                    "validations_per_cycle": v.validations_per_cycle,
                    "bound": str(v.bound),
                }
                for v in self.validation
            ],
            "queues": [
                {
                    "unit": q.unit,
                    "array": q.array,
                    "queue_depth": q.queue_depth,
                    "required_depth": q.required_depth,
                    "unknown_pairs": q.unknown_pairs,
                    "undersized": q.undersized,
                }
                for q in self.queues
            ],
        }


def predict(
    build,
    fn: Optional[Function] = None,
    args: Optional[Dict[str, int]] = None,
) -> PerfPrediction:
    """Statically predict the performance of a compiled kernel.

    ``fn``/``args`` enable the PreVV pressure models; without them (or
    for non-PreVV builds) the prediction carries the graph bound only.
    """
    graph = perf_graph(build.circuit)
    cycle = graph.critical_cycle()
    validation: List[ValidationPressure] = []
    queues: List[QueuePressure] = []
    if fn is not None and build.units:
        validation = validation_pressure(build, fn)
        queues = queue_pressure(build, fn, args or {})
    return PerfPrediction(
        subject=build.circuit.name,
        graph=graph,
        cycle=cycle,
        validation=validation,
        queues=queues,
    )
