"""Overlapped-pair dimension reduction (Sec. V-B).

Naively instantiating one premature queue + arbiter per ambiguous pair
duplicates every shared operation: an operation in ``n`` pairs would be
validated ``n`` times and circuit complexity explodes as Eq. (11)
(``Com_n = 2^n * Com_1``) with the frequency collapse of Eq. (12).

The paper's reduction observes that consecutive same-type accesses do not
form pairs among themselves, so validating one representative per
consecutive type suffices.  Structurally this collapses every connected
component of overlapped pairs into a **single PreVV group**: one premature
queue, one arbiter, one LMerge across the group's loads and one SMerge
across its stores.  :func:`reduce_pairs` performs that collapse.

:func:`naive_complexity` / :func:`naive_frequency` implement Eqs. (11)
and (12) literally for the scalability benchmark (Fig.-style ablation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..ir.instructions import LoadInst, StoreInst
from .ambiguous_pairs import AmbiguousPair, MemoryAnalysis


@dataclass
class PreVVGroup:
    """One reduced validation group: gets exactly one PreVV unit."""

    array: str
    loads: List[LoadInst] = field(default_factory=list)
    stores: List[StoreInst] = field(default_factory=list)
    pairs: List[AmbiguousPair] = field(default_factory=list)

    @property
    def n_ops(self) -> int:
        return len(self.loads) + len(self.stores)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PreVVGroup(@{self.array}, loads={[l.name for l in self.loads]}, "
            f"stores={[s.name for s in self.stores]})"
        )


def reduce_pairs(analysis: MemoryAnalysis) -> List[PreVVGroup]:
    """Collapse overlapped pairs into connected-component groups.

    Pairs on different arrays never overlap (they cannot share an
    operation on two arrays), so grouping is per array.  Within an array,
    union-find over shared operations yields the components.
    """
    groups: List[PreVVGroup] = []
    for array in sorted(analysis.conflicted_arrays):
        pairs = analysis.pairs_for_array(array)
        parent: Dict[int, int] = {}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        ops = {}
        for pair in pairs:
            for op in (pair.load, pair.store):
                ops[id(op)] = op
                parent.setdefault(id(op), id(op))
            union(id(pair.load), id(pair.store))

        components: Dict[int, PreVVGroup] = {}
        for pair in pairs:
            root = find(id(pair.load))
            group = components.get(root)
            if group is None:
                group = PreVVGroup(array)
                components[root] = group
            group.pairs.append(pair)
        for op_id, op in ops.items():
            group = components[find(op_id)]
            if isinstance(op, LoadInst):
                if op not in group.loads:
                    group.loads.append(op)
            elif op not in group.stores:
                group.stores.append(op)
        groups.extend(components.values())
    return groups


def naive_complexity(n_pairs_per_op: int, com_1: float) -> float:
    """Eq. (11): complexity of duplicating PreVV for an op in n pairs."""
    if n_pairs_per_op < 1:
        raise ValueError("an operation must belong to at least one pair")
    return (2 ** n_pairs_per_op) * com_1


def naive_frequency(n_pairs_per_op: int, frq_1: float) -> float:
    """Eq. (12) as printed: ``frq_n = log2(frq_1)``.

    The paper's formula is independent of ``n`` (likely a typesetting slip
    for a log-factor degradation); we implement the printed form for
    ``n > 1`` and return ``frq_1`` unchanged for the base case so the
    scalability benchmark can contrast both readings.
    """
    if n_pairs_per_op <= 1:
        return frq_1
    return math.log2(frq_1)


def reduced_complexity(n_ops: int, com_1: float) -> float:
    """Complexity after reduction: one shared unit, linear in member ops."""
    return com_1 * max(1, n_ops) / 2.0


def max_pairs_per_op(analysis: MemoryAnalysis) -> int:
    """Largest number of pairs any single operation participates in."""
    counts: Dict[int, int] = {}
    for pair in analysis.pairs:
        counts[id(pair.load)] = counts.get(id(pair.load), 0) + 1
        counts[id(pair.store)] = counts.get(id(pair.store), 0) + 1
    return max(counts.values(), default=0)
