"""Premature-queue depth model (Sec. V-A, Eqs. 6-10).

Definition 2 (*matched pair*): a pair whose average execution time equals
its predecessor's, minimizing stall probability.  The model:

* Eq. (6)  ``t_p = t_org * (2 + P_s)`` — average execution time of an
  ambiguous pair under PreVV, where ``t_org`` is the original computation
  time and ``P_s`` the squash probability;
* Eq. (7)  ``t_w = t_token / depth_q`` — the predecessor's effective
  waiting time per live-out token given queue depth ``depth_q``;
* matched when ``t_p == t_w`` — solved by :func:`matched_depth`;
* Eq. (8)  independence constraint between two pairs, with the
  distance/span terms of Eqs. (9)-(10) computed over the component graph
  by :func:`pair_distance` / :func:`pair_span`.

These drive the depth-sweep benchmark (``benchmarks/bench_depth_sweep.py``)
and the automatic depth suggestion in :func:`suggest_depth`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Set

from ..errors import AnalysisError

#: Default pipeline estimates for the Sec. V-A matched-depth model, shared
#: by the compile pipeline and the PreVV-sizing lint pass so both report
#: the same analytical bound.
DEFAULT_T_ORG = 3.0
DEFAULT_P_SQUASH = 0.05
DEFAULT_T_TOKEN = 60.0


def pair_execution_time(t_org: float, p_squash: float) -> float:
    """Eq. (6): ``t_p = t_org * (2 + P_s)``."""
    if not 0.0 <= p_squash <= 1.0:
        raise AnalysisError(f"squash probability {p_squash} outside [0, 1]")
    if t_org <= 0:
        raise AnalysisError("t_org must be positive")
    return t_org * (2.0 + p_squash)


def waiting_time(t_token: float, depth_q: int) -> float:
    """Eq. (7): ``t_w = t_token / depth_q``."""
    if depth_q < 1:
        raise AnalysisError("queue depth must be >= 1")
    return t_token / depth_q


def matched_depth(t_org: float, p_squash: float, t_token: float) -> int:
    """Solve ``t_p == t_w`` (Definition 2) for the matched queue depth.

    Returns the smallest power-of-two depth at least as large as the
    analytic optimum (hardware queues are sized in powers of two).
    """
    optimum = t_token / pair_execution_time(t_org, p_squash)
    depth = 1
    while depth < optimum:
        depth *= 2
    return depth


def is_matched(
    t_org: float, p_squash: float, t_token: float, depth_q: int,
    tolerance: float = 0.25,
) -> bool:
    """Whether ``depth_q`` makes the pair matched within ``tolerance``."""
    t_p = pair_execution_time(t_org, p_squash)
    t_w = waiting_time(t_token, depth_q)
    return abs(t_p - t_w) <= tolerance * max(t_p, t_w)


def independent_pairs(
    d_mn: float,
    span_m: float,
    span_n: float,
    clock_period: float,
    t_token: float,
    depth_q: int,
) -> bool:
    """Eq. (8): distance constraint under which pairs m and n don't overlap."""
    if clock_period <= 0:
        raise AnalysisError("clock period must be positive")
    lhs = d_mn / clock_period
    mid = (span_m + span_n) / clock_period
    t_w = waiting_time(t_token, depth_q)
    return lhs >= mid and lhs >= t_w


# ----------------------------------------------------------------------
# Graph-based distance/span (Eqs. 9-10) over an elastic circuit
# ----------------------------------------------------------------------
def _forward_dag(circuit, skip_backedges: bool = True):
    """Component adjacency of the circuit, back-edge channels removed."""
    adjacency: Dict[str, Set[str]] = {c.name: set() for c in circuit.components}
    for chan in circuit.channels:
        if skip_backedges and getattr(chan, "is_backedge", False):
            continue
        if chan.producer is not None and chan.consumer is not None:
            adjacency[chan.producer.name].add(chan.consumer.name)
    return adjacency


def _longest_path_length(
    adjacency: Dict[str, Set[str]], sources: Iterable[str], targets: Set[str]
) -> Optional[int]:
    """Max #components on any path from a source to a target (DFS + memo).

    Returns ``None`` when no target is reachable.  Cycles that survive
    back-edge removal are cut by the visiting set (conservative).
    """
    memo: Dict[str, Optional[int]] = {}
    visiting: Set[str] = set()

    def depth(node: str) -> Optional[int]:
        if node in memo:
            return memo[node]
        if node in visiting:
            return None
        visiting.add(node)
        best: Optional[int] = 1 if node in targets else None
        for succ in adjacency.get(node, ()):
            sub = depth(succ)
            if sub is not None and (best is None or sub + 1 > best):
                best = sub + 1
        visiting.discard(node)
        memo[node] = best
        return best

    result: Optional[int] = None
    for source in sources:
        d = depth(source)
        if d is not None and (result is None or d > result):
            result = d
    return result


def pair_distance(circuit, begin_names: Sequence[str], end_names: Sequence[str]):
    """Eq. (9): max component count from pair m's start to pair n's end."""
    adjacency = _forward_dag(circuit)
    return _longest_path_length(adjacency, begin_names, set(end_names))


def pair_span(circuit, member_names: Sequence[str]):
    """Eq. (10): max component count over paths inside one pair."""
    members = set(member_names)
    adjacency = _forward_dag(circuit)
    restricted = {
        name: {s for s in succs if s in members}
        for name, succs in adjacency.items()
        if name in members
    }
    return _longest_path_length(restricted, member_names, members)


def suggest_depth(
    t_org: float,
    p_squash: float,
    t_token: float,
    min_depth: int = 2,
    max_depth: int = 256,
) -> int:
    """Matched depth clamped to implementable bounds."""
    depth = matched_depth(t_org, p_squash, t_token)
    return max(min_depth, min(max_depth, depth))
