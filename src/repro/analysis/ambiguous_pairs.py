"""Ambiguous-pair extraction (Definition 1) and per-array grouping.

An *ambiguous pair* ``Am{C^m, C^n}`` is a load and a store on the same
array whose subscripts may conflict across iterations (Sec. III,
Definition 1).  The extraction runs the affine dependence analysis over
every (load, store) combination per array, then refines the subscript
verdict with loop context (:func:`classify_with_loops`): equal subscripts
only mean *same iteration* when every surrounding loop level actually
advances the subscript — ``A[i]`` accessed inside an inner ``j`` loop
conflicts with itself across ``j`` iterations.

:func:`analyze_function` returns a :class:`MemoryAnalysis` that the
compiler uses to decide, per array, whether a plain memory controller
suffices or an ordering structure (LSQ baseline / PreVV unit) is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.function import Function
from ..ir.instructions import Instruction, LoadInst, StoreInst
from ..ir.loops import Loop, find_loops, innermost_loop_of
from .polyhedral import AffineAnalyzer, Dependence, classify_dependence


@dataclass
class AmbiguousPair:
    """Definition 1: a load/store pair that may conflict across iterations."""

    load: LoadInst
    store: StoreInst
    array: str

    def shares_op_with(self, other: "AmbiguousPair") -> bool:
        """Overlap in the sense of Definition 3 (shared component)."""
        return (
            self.load is other.load
            or self.store is other.store
            or self.load is other.store
            or self.store is other.load
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Am{{{self.load.name}, {self.store.name}}}@{self.array}"


@dataclass
class MemoryAnalysis:
    """Per-function disambiguation summary."""

    function: Function
    pairs: List[AmbiguousPair] = field(default_factory=list)
    #: arrays with at least one ambiguous pair
    conflicted_arrays: Set[str] = field(default_factory=set)
    #: dependence class for every (load, store) combination examined
    classifications: Dict[tuple, Dependence] = field(default_factory=dict)

    def pairs_for_array(self, array: str) -> List[AmbiguousPair]:
        return [p for p in self.pairs if p.array == array]

    @property
    def hazard_free_arrays(self) -> Set[str]:
        return set(self.function.arrays) - self.conflicted_arrays


def _refine_same_iteration(
    loops: List[Loop],
    a: Instruction,
    b: Instruction,
    ivs,
) -> Dependence:
    """Demote SAME_ITERATION to MAY_CONFLICT when loop context breaks it.

    ``classify_dependence`` decides SAME_ITERATION from the subscripts
    alone — equal affine forms over a single IV.  That verdict implicitly
    assumes "one iteration" is well defined for both accesses: they must
    sit in the same innermost loop, and every loop level surrounding them
    must advance the subscript.  If an enclosing loop contributes no IV
    (``A[i]`` under an inner ``j`` loop), the same address is re-touched
    on every iteration of that loop — a genuine cross-iteration conflict.
    """
    loop_a = innermost_loop_of(loops, a.parent)
    loop_b = innermost_loop_of(loops, b.parent)
    if loop_a is not loop_b:
        return Dependence.MAY_CONFLICT
    iv_set = set(ivs)
    loop: Optional[Loop] = loop_a
    while loop is not None:
        if not (set(loop.header.phis) & iv_set):
            return Dependence.MAY_CONFLICT
        loop = loop.parent
    return Dependence.SAME_ITERATION


def classify_with_loops(
    analyzer: AffineAnalyzer,
    loops: List[Loop],
    a: Instruction,
    b: Instruction,
) -> Dependence:
    """Loop-aware dependence class between two accesses of one array.

    Runs the subscript-level :func:`classify_dependence`, then applies
    :func:`_refine_same_iteration` — the sound entry point the analysis
    and the linter's cross-check both use.
    """
    expr_a = analyzer.analyze(a.index)
    expr_b = analyzer.analyze(b.index)
    kind = classify_dependence(expr_a, expr_b)
    if kind is Dependence.SAME_ITERATION:
        kind = _refine_same_iteration(loops, a, b, expr_a.iv_coeffs)
    return kind


def analyze_function(fn: Function) -> MemoryAnalysis:
    """Run the dependence analysis and collect every ambiguous pair."""
    analyzer = AffineAnalyzer(fn)
    loops = find_loops(fn)
    analysis = MemoryAnalysis(fn)
    by_array: Dict[str, Dict[str, list]] = {}
    for block in fn.blocks:
        for inst in block.memory_ops():
            slot = by_array.setdefault(
                inst.array.name, {"loads": [], "stores": []}
            )
            if isinstance(inst, LoadInst):
                slot["loads"].append(inst)
            else:
                slot["stores"].append(inst)

    for array, ops in by_array.items():
        for load in ops["loads"]:
            for store in ops["stores"]:
                kind = classify_with_loops(analyzer, loops, load, store)
                analysis.classifications[(id(load), id(store))] = kind
                if kind is Dependence.MAY_CONFLICT:
                    analysis.pairs.append(AmbiguousPair(load, store, array))
                    analysis.conflicted_arrays.add(array)
    return analysis
