"""Ambiguous-pair extraction (Definition 1) and per-array grouping.

An *ambiguous pair* ``Am{C^m, C^n}`` is a load and a store on the same
array whose subscripts may conflict across iterations (Sec. III,
Definition 1).  The extraction runs the affine dependence analysis over
every (load, store) combination per array.

:func:`analyze_function` returns a :class:`MemoryAnalysis` that the
compiler uses to decide, per array, whether a plain memory controller
suffices or an ordering structure (LSQ baseline / PreVV unit) is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.function import Function
from ..ir.instructions import LoadInst, StoreInst
from ..ir.loops import Loop, find_loops, innermost_loop_of
from .polyhedral import AffineAnalyzer, Dependence, classify_dependence


@dataclass
class AmbiguousPair:
    """Definition 1: a load/store pair that may conflict across iterations."""

    load: LoadInst
    store: StoreInst
    array: str

    def shares_op_with(self, other: "AmbiguousPair") -> bool:
        """Overlap in the sense of Definition 3 (shared component)."""
        return (
            self.load is other.load
            or self.store is other.store
            or self.load is other.store
            or self.store is other.load
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"Am{{{self.load.name}, {self.store.name}}}@{self.array}"


@dataclass
class MemoryAnalysis:
    """Per-function disambiguation summary."""

    function: Function
    pairs: List[AmbiguousPair] = field(default_factory=list)
    #: arrays with at least one ambiguous pair
    conflicted_arrays: Set[str] = field(default_factory=set)
    #: dependence class for every (load, store) combination examined
    classifications: Dict[tuple, Dependence] = field(default_factory=dict)

    def pairs_for_array(self, array: str) -> List[AmbiguousPair]:
        return [p for p in self.pairs if p.array == array]

    @property
    def hazard_free_arrays(self) -> Set[str]:
        return set(self.function.arrays) - self.conflicted_arrays


def analyze_function(fn: Function) -> MemoryAnalysis:
    """Run the dependence analysis and collect every ambiguous pair."""
    analyzer = AffineAnalyzer(fn)
    analysis = MemoryAnalysis(fn)
    by_array: Dict[str, Dict[str, list]] = {}
    for block in fn.blocks:
        for inst in block.memory_ops():
            slot = by_array.setdefault(
                inst.array.name, {"loads": [], "stores": []}
            )
            if isinstance(inst, LoadInst):
                slot["loads"].append(inst)
            else:
                slot["stores"].append(inst)

    for array, ops in by_array.items():
        for load in ops["loads"]:
            load_expr = analyzer.analyze(load.index)
            for store in ops["stores"]:
                store_expr = analyzer.analyze(store.index)
                kind = classify_dependence(load_expr, store_expr)
                analysis.classifications[(id(load), id(store))] = kind
                if kind is Dependence.MAY_CONFLICT:
                    analysis.pairs.append(AmbiguousPair(load, store, array))
                    analysis.conflicted_arrays.add(array)
    return analysis
