"""Loop-bound interval analysis for the dependence prover.

The affine analysis (:mod:`repro.analysis.polyhedral`) gives each
subscript as ``sum(c_k * iv_k) + sum(s_j * arg_j) + const`` but says
nothing about the *range* each induction variable sweeps.  This module
recovers that range for the canonical counted-loop shape the kernel
builders emit (``for v = start; v cmp bound; v += step``) by pattern
matching the header phi and the header branch, then folds the kernel's
compile-time scalar arguments into every symbolic term.

With concrete per-IV ranges an affine subscript evaluates to an integer
interval (:func:`range_of`); two accesses whose intervals are disjoint
can never alias, which is the prover's strongest weapon against pairs
the plain GCD test cannot crack.

Everything here is *best effort and sound*: any shape that does not
match (unresolved symbolic bound, data-dependent step, rotated loop)
simply yields no :class:`IVBounds` entry, and downstream classification
falls back to *unknown* — never to a false independence claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...ir.function import Function
from ...ir.instructions import BinaryInst, BranchInst, PhiInst
from ...ir.loops import Loop, find_loops
from ...ir.values import Argument, ConstInt, Value
from ..polyhedral import AffineExpr

_FLIPPED = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}
_NEGATED = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt"}


@dataclass(frozen=True)
class IVBounds:
    """Concrete iteration range of one induction variable.

    ``count`` is the number of body activations; the IV takes the values
    ``start, start + step, ..., start + (count - 1) * step``.
    """

    phi: PhiInst
    start: int
    step: int
    count: int

    @property
    def last(self) -> int:
        return self.start + (self.count - 1) * self.step

    @property
    def lo(self) -> int:
        return min(self.start, self.last)

    @property
    def hi(self) -> int:
        return max(self.start, self.last)


def next_pow2(n: int) -> int:
    """Smallest power of two >= max(n, 1) — queue depths are pow2-sized."""
    p = 1
    while p < n:
        p *= 2
    return p


def _fold(value: Value, args: Dict[str, int]) -> Optional[int]:
    """Constant-fold ``value`` given the kernel's scalar arguments."""
    if isinstance(value, ConstInt):
        return value.value
    if isinstance(value, Argument):
        got = args.get(value.name)
        return int(got) if got is not None else None
    if isinstance(value, BinaryInst):
        lhs = _fold(value.lhs, args)
        rhs = _fold(value.rhs, args)
        if lhs is None or rhs is None:
            return None
        if value.opcode == "add":
            return lhs + rhs
        if value.opcode == "sub":
            return lhs - rhs
        if value.opcode == "mul":
            return lhs * rhs
        if value.opcode == "shl":
            return lhs << rhs
    return None


def _phi_start_step(
    loop: Loop, phi: PhiInst, args: Dict[str, int]
) -> Optional[Tuple[int, int]]:
    """(start, step) of a counted-loop phi, or None when not that shape."""
    start: Optional[int] = None
    step: Optional[int] = None
    for block, incoming in phi.incomings:
        if block in loop.blocks:  # latch edge: the update expression
            if not isinstance(incoming, BinaryInst):
                return None
            if incoming.opcode == "add":
                if incoming.lhs is phi:
                    delta = _fold(incoming.rhs, args)
                elif incoming.rhs is phi:
                    delta = _fold(incoming.lhs, args)
                else:
                    return None
            elif incoming.opcode == "sub" and incoming.lhs is phi:
                folded = _fold(incoming.rhs, args)
                delta = -folded if folded is not None else None
            else:
                return None
            if delta is None or delta == 0 or step is not None:
                return None
            step = delta
        else:  # preheader edge: the start value
            if start is not None:
                return None
            start = _fold(incoming, args)
            if start is None:
                return None
    if start is None or step is None:
        return None
    return start, step


def _trip_count(start: int, step: int, cmp: str, bound: int) -> Optional[int]:
    """Body activations of ``for v = start; v cmp bound; v += step``."""
    if cmp == "le":
        bound, cmp = bound + 1, "lt"
    elif cmp == "ge":
        bound, cmp = bound - 1, "gt"
    if cmp == "lt":
        if step <= 0:
            return None  # would not terminate via this exit; not our shape
        return max(0, -((start - bound) // step))  # ceil((bound-start)/step)
    if cmp == "gt":
        if step >= 0:
            return None
        return max(0, -((bound - start) // -step))
    return None


def derive_iv_bounds(
    fn: Function, args: Dict[str, int]
) -> Dict[PhiInst, IVBounds]:
    """IVBounds for every counted-loop induction phi that fully resolves.

    Matches the canonical shape: a header phi with one out-of-loop start
    incoming and one in-loop ``phi +/- const`` update, exited by a header
    branch comparing the phi against a resolvable bound.  Loops whose
    phis, steps or bounds cannot be folded to integers are skipped.
    """
    bounds: Dict[PhiInst, IVBounds] = {}
    for loop in find_loops(fn):
        term = loop.header.terminator
        if not isinstance(term, BranchInst):
            continue
        cond = term.cond
        if not isinstance(cond, BinaryInst) or cond.opcode not in _FLIPPED:
            continue
        for phi in loop.header.phis:
            parsed = _phi_start_step(loop, phi, args)
            if parsed is None:
                continue
            start, step = parsed
            if cond.lhs is phi:
                cmp, bound_val = cond.opcode, cond.rhs
            elif cond.rhs is phi:
                cmp, bound_val = _FLIPPED[cond.opcode], cond.lhs
            else:
                continue
            # The comparison must hold on the *body* side of the branch.
            if term.if_true in loop.blocks:
                pass
            elif term.if_false in loop.blocks:
                cmp = _NEGATED[cmp]
            else:
                continue
            bound = _fold(bound_val, args)
            if bound is None:
                continue
            count = _trip_count(start, step, cmp, bound)
            if count is None:
                continue
            bounds[phi] = IVBounds(phi, start, step, count)
    return bounds


def resolve_syms(
    expr: AffineExpr, args: Dict[str, int]
) -> Optional[AffineExpr]:
    """Fold every symbolic (Argument) coefficient into the constant term.

    Returns ``None`` when some argument has no binding — the caller must
    then stay conservative.
    """
    const = expr.const
    for sym, coeff in expr.sym_coeffs.items():
        got = args.get(sym.name)
        if got is None:
            return None
        const += coeff * int(got)
    return AffineExpr(dict(expr.iv_coeffs), {}, const)


def range_of(
    expr: AffineExpr,
    bounds: Dict[PhiInst, IVBounds],
    args: Dict[str, int],
) -> Optional[Tuple[int, int]]:
    """Inclusive integer interval an affine subscript can evaluate to.

    Requires every symbolic term to resolve and every IV to have derived
    bounds with at least one activation; otherwise ``None``.
    """
    resolved = resolve_syms(expr, args)
    if resolved is None:
        return None
    lo = hi = resolved.const
    for phi, coeff in resolved.iv_coeffs.items():
        ivb = bounds.get(phi)
        if ivb is None or ivb.count <= 0:
            return None
        a, b = coeff * ivb.lo, coeff * ivb.hi
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi
