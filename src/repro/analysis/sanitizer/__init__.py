"""PVSan: static disambiguation prover + dynamic SC-oracle sanitizer.

Two-sided correctness subsystem for the PreVV arbiter (ISSUE 5):

* :mod:`intervals` / :mod:`prover` — the static side.  Loop-bound interval
  analysis over the affine subscript facts of
  :mod:`repro.analysis.polyhedral` upgrades each ambiguous pair to
  *proven-independent*, *bounded-distance* (with a depth bound tighter
  than the Eq. 6-10 sizing) or *unknown*.
* :mod:`oracle` / :mod:`runner` — the dynamic side.  A shadow
  sequential-consistency oracle replays the interpreter's program-order
  memory trace alongside the cycle simulator and checks every arbiter
  verdict: missed violations, spurious squashes, dimension-reduction
  masking and fake-token retirements.

Findings surface through the PV3xx codes of the lint framework
(``python -m repro.lint --sanitize <kernel>``).
"""

from .intervals import IVBounds, derive_iv_bounds, next_pow2, range_of, resolve_syms
from .oracle import SCOracle
from .prover import DependenceProver, PairClass, PairProof
from .runner import SanitizeResult, sanitize_run

__all__ = [
    "IVBounds",
    "derive_iv_bounds",
    "next_pow2",
    "range_of",
    "resolve_syms",
    "DependenceProver",
    "PairClass",
    "PairProof",
    "SCOracle",
    "SanitizeResult",
    "sanitize_run",
]
