"""Shadow sequential-consistency oracle for the PreVV arbiter (PV3xx).

The oracle replays the IR interpreter's program-order memory trace
*alongside* the cycle simulation and checks every arbiter decision
against it:

* **PV305 — missed violation.**  A premature-queue entry retires (the
  arbiter declares it valid) with an index or value different from what
  the sequential program computes at that ``(static op, iteration)``
  position; or an expected operation never retires; or the final memory
  diverges from the interpreter's.
* **PV306 — spurious squash.**  The arbiter declares an Eq. 2-5
  violation although the two values it compared are equal — value-based
  validation must treat matching values as benign (the paper's central
  economy).
* **PV308 — fake/real disagreement.**  A fake token (Sec. V-C) is
  processed at a position where program order executes the operation, or
  a real operation is processed at a position program order skips.

Key insight of the protocol: premature execution makes *transiently*
wrong values legal — a load may carry stale data until the store that
proves it wrong arrives, and even a retired entry can be rolled back by
a cross-domain squash cascade.  Findings are therefore **pending** until
the end of the run, keyed by the accused record's speculation tags, and
an executed squash that covers a finding *retracts* it (the machine
corrected itself, which is exactly its contract).  Only squashes over
equal values (PV306) are immediate: no later event can justify them.

Position matching uses the pair ``(rom_pos, iteration)``: ``rom_pos`` is
the operation's enumeration index in ``fn.memory_ops()`` (the same
numbering the elastic builder bakes into each port's arbiter ROM) and
``iteration`` is the innermost-loop activation index, which the
interpreter tags onto trace events exactly as the
:class:`~repro.prevv.replay.DomainGate` tags circuit tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...dataflow.tracing import OrderTrace
from ...ir.function import Function
from ...ir.interpreter import InterpResult
from ..lint.diagnostics import LintReport, make_diagnostic

Key = Tuple[int, int]  # (rom_pos, iteration)


@dataclass
class _Pending:
    """A finding awaiting confirmation (retracted if a squash covers it)."""

    code: str
    message: str
    location: str
    hint: str
    tags: Dict[int, int]
    domain: int
    iteration: int

    def covered_by(self, targets: Dict[int, int]) -> bool:
        for domain, min_iter in targets.items():
            if self.tags.get(domain, -1) >= min_iter:
                return True
            if self.domain == domain and self.iteration >= min_iter:
                return True
        return False


@dataclass
class _Retired:
    tags: Dict[int, int]
    domain: int
    iteration: int

    covered_by = _Pending.covered_by


class _QueueObserver:
    """Per-unit adapter forwarding premature-queue events to the oracle."""

    def __init__(self, oracle: "SCOracle", unit):
        self.oracle = oracle
        self.unit = unit

    def on_retire(self, record) -> None:
        self.oracle.on_retire(self.unit, record)

    def on_excise(self, record) -> None:
        self.oracle.trace.record(
            "excise",
            self.unit.name,
            f"{record.op} idx={record.index} it={record.iteration} "
            f"(squash flush)",
        )


class SCOracle:
    """One sanitized run's worth of arbiter-vs-program-order checking."""

    def __init__(
        self,
        fn: Function,
        golden: InterpResult,
        report: Optional[LintReport] = None,
        trace: Optional[OrderTrace] = None,
    ):
        self.fn = fn
        self.golden = golden
        self.report = report if report is not None else LintReport(subject=fn.name)
        self.trace = trace if trace is not None else OrderTrace()
        # rom_pos numbering must mirror _wire_prevv_support exactly.
        self._rom: Dict[int, int] = {
            id(op): k for k, op in enumerate(fn.memory_ops())
        }
        #: (rom_pos, iteration) -> program-order TraceEvent
        self._expected: Dict[Key, object] = {}
        for event in golden.trace.events:
            pos = self._rom.get(id(event.inst))
            if pos is not None:
                self._expected[(pos, event.iteration)] = event
        self._port_rom: set = set()  # rom positions that are unit ports
        self._pending: Dict[Tuple[str, Key], _Pending] = {}
        self._retired: Dict[Key, _Retired] = {}
        self._confirmed: List = []  # diagnostics no squash can retract
        self.checks = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, build) -> None:
        """Hook every PreVV unit and the squash controller of a build."""
        for unit in build.units:
            unit.sanitizer = self
            unit.queue.observer = _QueueObserver(self, unit)
            for cfg in unit.ports:
                self._port_rom.add(cfg.rom_pos)
        if build.squash_controller is not None:
            build.squash_controller.sanitizer = self

    # ------------------------------------------------------------------
    # Findings plumbing
    # ------------------------------------------------------------------
    def _confirm(self, code: str, message: str, location: str, hint: str) -> None:
        self._confirmed.append(
            make_diagnostic(code, message, location=location, hint=hint,
                            pass_name="sanitize-sc-oracle")
        )

    def _defer(
        self, code: str, key: Key, message: str, location: str, hint: str,
        record,
    ) -> None:
        self._pending[(code, key)] = _Pending(
            code, message, location, hint,
            dict(record.tags), record.domain, record.iteration,
        )

    @property
    def has_errors(self) -> bool:
        """Fail-fast signal for Simulator.abort_condition: only findings
        no future squash could retract count."""
        return bool(self._confirmed)

    # ------------------------------------------------------------------
    # Hooks (called from the PreVV machinery)
    # ------------------------------------------------------------------
    def on_process(self, unit, port_idx: int, record) -> None:
        """Every record the arbiter pulls for validation (Fig. 5 front)."""
        if record.done:
            self.trace.record("done", unit.name, f"port {port_idx}")
            return
        self.checks += 1
        cfg = unit.ports[port_idx]
        key = (cfg.rom_pos, record.iteration)
        expected = self._expected.get(key)
        loc = f"{unit.name}:p{port_idx}:it{record.iteration}"
        if record.fake:
            self.trace.record(
                "fake", unit.name, f"port {port_idx} it={record.iteration}"
            )
            if expected is not None:
                self._defer(
                    "PV308", key,
                    f"fake token at rom {cfg.rom_pos} iteration "
                    f"{record.iteration}, but program order executes "
                    f"{expected.op} {expected.array}[{expected.index}] there",
                    loc,
                    "a fake token retires the slot without validation; if "
                    "this survives to the end of the run the operation was "
                    "never checked",
                    record,
                )
            return
        self.trace.record(
            "process", unit.name,
            f"{record.op} idx={record.index} val={record.value} "
            f"it={record.iteration}",
        )
        if expected is None:
            self._defer(
                "PV308", key,
                f"real {record.op} processed at rom {cfg.rom_pos} iteration "
                f"{record.iteration}, which program order never executes",
                loc,
                "the port's condition mis-evaluated (or fake-token wiring "
                "sends reals down a skip edge)",
                record,
            )

    def on_violation(
        self, unit, kind: str, observed, reference, accused
    ) -> None:
        """Every Eq. 2-5 violation verdict the arbiter declares."""
        self.trace.record(
            "violation", unit.name,
            f"{kind} accused={accused.op} idx={accused.index} "
            f"it={accused.iteration} observed={observed} reference={reference}",
        )
        if observed == reference:
            # Immediate: equal values can never be an ordering violation
            # under value-based validation, and no squash "fixes" the
            # wasted replay after the fact.
            self._confirm(
                "PV306",
                f"{kind} violation declared on {accused.op} index "
                f"{accused.index} iteration {accused.iteration} although "
                f"both compared values are {observed!r}",
                f"{unit.name}:it{accused.iteration}",
                "value-based validation (Eqs. 2-5) must treat equal values "
                "as benign reordering",
            )

    def on_retire(self, unit, record) -> None:
        """Every head retirement: the arbiter's final 'valid' verdict."""
        self.checks += 1
        cfg = unit.ports[record.port]
        key = (cfg.rom_pos, record.iteration)
        expected = self._expected.get(key)
        loc = f"{unit.name}:p{record.port}:it{record.iteration}"
        self.trace.record(
            "retire", unit.name,
            f"{record.op} idx={record.index} val={record.value} "
            f"it={record.iteration}",
        )
        if expected is None:
            self._defer(
                "PV305", key,
                f"{record.op} retired at rom {cfg.rom_pos} iteration "
                f"{record.iteration}, which program order never executes",
                loc, "the arbiter validated an operation that should not "
                "exist", record,
            )
            return
        if record.index != expected.index or record.value != expected.value:
            self._defer(
                "PV305", key,
                f"{record.op} retired with {cfg.array}[{record.index}] = "
                f"{record.value}, but program order has "
                f"{expected.array}[{expected.index}] = {expected.value}",
                loc,
                "the arbiter committed a premature value it should have "
                "squashed (missed ordering violation)",
                record,
            )
        else:
            self._pending.pop(("PV305", key), None)
        self._retired[key] = _Retired(
            dict(record.tags), record.domain, record.iteration
        )

    def on_squash_executed(self, targets: Dict[int, int]) -> None:
        """An executed squash retracts every finding it covers: the
        machine rolled the offending state back, so the premature value
        the finding accused never becomes architectural."""
        self.trace.record(
            "squash", "controller",
            " ".join(f"d{d}>={i}" for d, i in sorted(targets.items())),
        )
        self._pending = {
            k: p for k, p in self._pending.items()
            if not p.covered_by(targets)
        }
        self._retired = {
            k: r for k, r in self._retired.items()
            if not r.covered_by(targets)
        }

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(
        self,
        final_memory: Optional[Dict[str, List[int]]] = None,
        completed: bool = True,
    ) -> LintReport:
        """Promote surviving pendings, check completeness + final memory.

        ``completed`` False (deadlock/budget abort) skips the pending
        flush and the completeness sweep: mid-run state is legitimately
        transient, and flooding the report would bury the root cause.
        """
        for diag in self._confirmed:
            self.report.add(diag)
        self._confirmed = []
        if completed:
            for (code, _key), pending in sorted(self._pending.items()):
                self.report.add(
                    make_diagnostic(
                        pending.code, pending.message,
                        location=pending.location, hint=pending.hint,
                        pass_name="sanitize-sc-oracle",
                    )
                )
            self._pending.clear()
            for key, event in sorted(self._expected.items()):
                if key[0] in self._port_rom and key not in self._retired:
                    self.report.add(
                        make_diagnostic(
                            "PV305",
                            f"program-order {event.op} "
                            f"{event.array}[{event.index}] at rom {key[0]} "
                            f"iteration {key[1]} was never retired by the "
                            "arbiter",
                            location=f"{self.fn.name}:rom{key[0]}:it{key[1]}",
                            hint="a lost or mis-tagged token bypassed "
                            "validation entirely",
                            pass_name="sanitize-sc-oracle",
                        )
                    )
        if completed and final_memory is not None:
            for array, golden_vals in self.golden.memory.items():
                got = final_memory.get(array)
                if got is None or list(got) != list(golden_vals):
                    diffs = []
                    if got is not None:
                        diffs = [
                            i for i, (a, b) in enumerate(zip(golden_vals, got))
                            if a != b
                        ]
                    self.report.add(
                        make_diagnostic(
                            "PV305",
                            f"final memory of array {array!r} diverges from "
                            f"the interpreter at indices {diffs[:8]}",
                            location=f"memory:{array}",
                            hint="an unsquashed premature value became "
                            "architectural",
                            pass_name="sanitize-sc-oracle",
                        )
                    )
        return self.report
