"""Static disambiguation prover over the ambiguous pairs (PVSan lattice).

Each ambiguous pair (Definition 1) is lifted through a three-point
lattice::

    PROVEN_INDEPENDENT  <  BOUNDED_DISTANCE  <  UNKNOWN

* ``PROVEN_INDEPENDENT`` — the two subscripts can *never* evaluate to
  the same element: disjoint value intervals (loop-bound analysis), a
  GCD test with the kernel's scalar arguments folded in, or an iteration
  distance that is not a multiple of the IV step.  The pair needs no
  arbiter entry at all; the diagnostic suggests dropping it.
* ``BOUNDED_DISTANCE`` — aliasing is possible but only between
  activations exactly ``distance`` apart (a loop-carried dependence of
  constant distance, e.g. ``t[i]``/``t[i+1]``).  The premature window
  never needs to hold more than ``group ops x distance`` entries, so the
  prover emits ``depth_bound = next_pow2(n_ops * distance)`` — usually
  far tighter than the throughput-matched Eq. 6-10 sizing.
* ``UNKNOWN`` — anything else, *including every non-affine subscript*.
  Non-affine must never be upgraded: ``f(x)`` can alias anything.

Soundness contract: a classification stronger than UNKNOWN is a claim
about **all** executions with the given scalar arguments; the
``ProverSoundnessPass`` cross-checks every claim against the
interpreter's dynamic trace on the seed kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ...ir.function import Function
from ...ir.instructions import PhiInst
from ...ir.loops import find_loops, innermost_loop_of
from ..ambiguous_pairs import AmbiguousPair, MemoryAnalysis, analyze_function
from ..polyhedral import AffineAnalyzer, AffineExpr
from ..reduction import reduce_pairs
from .intervals import derive_iv_bounds, next_pow2, range_of, resolve_syms


class PairClass(Enum):
    PROVEN_INDEPENDENT = "proven_independent"
    BOUNDED_DISTANCE = "bounded_distance"
    UNKNOWN = "unknown"


@dataclass
class PairProof:
    """Outcome of proving one ambiguous pair."""

    pair: AmbiguousPair
    classification: PairClass
    reason: str
    #: for BOUNDED_DISTANCE: max activation distance between aliasing ops
    distance: Optional[int] = None
    #: for BOUNDED_DISTANCE: sufficient premature-queue depth for the
    #: pair's whole reduced group (next_pow2(n_ops * distance))
    depth_bound: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover
        extra = ""
        if self.classification is PairClass.BOUNDED_DISTANCE:
            extra = f", d={self.distance}, depth<={self.depth_bound}"
        return f"PairProof({self.pair!r}: {self.classification.value}{extra})"


class DependenceProver:
    """Classifies every ambiguous pair of one function.

    ``args`` are the kernel's compile-time scalar arguments — the same
    values the HLS flow would specialize on — so folding them in is
    legitimate static information, not a dynamic peek.
    """

    def __init__(
        self,
        fn: Function,
        args: Dict[str, int],
        analysis: Optional[MemoryAnalysis] = None,
    ):
        self.fn = fn
        self.args = dict(args)
        self.analyzer = AffineAnalyzer(fn)
        self.loops = find_loops(fn)
        self.bounds = derive_iv_bounds(fn, self.args)
        self.analysis = analysis if analysis is not None else analyze_function(fn)
        self._group_size: Dict[int, int] = {}
        for group in reduce_pairs(self.analysis):
            for pair in group.pairs:
                self._group_size[id(pair)] = group.n_ops

    # ------------------------------------------------------------------
    def prove_all(self) -> List[PairProof]:
        return [self.prove(pair) for pair in self.analysis.pairs]

    def prove(self, pair: AmbiguousPair) -> PairProof:
        expr_l = self.analyzer.analyze(pair.load.index)
        expr_s = self.analyzer.analyze(pair.store.index)
        if expr_l is None or expr_s is None:
            return PairProof(
                pair, PairClass.UNKNOWN, "non-affine subscript"
            )

        res_l = resolve_syms(expr_l, self.args)
        res_s = resolve_syms(expr_s, self.args)
        if res_l is None or res_s is None:
            return PairProof(
                pair, PairClass.UNKNOWN, "unresolved symbolic argument"
            )

        # 1. Interval disjointness: the value ranges never intersect.
        range_l = range_of(expr_l, self.bounds, self.args)
        range_s = range_of(expr_s, self.bounds, self.args)
        if range_l is not None and range_s is not None:
            if range_l[1] < range_s[0] or range_s[1] < range_l[0]:
                return PairProof(
                    pair,
                    PairClass.PROVEN_INDEPENDENT,
                    f"disjoint index ranges {range_l} vs {range_s}",
                )

        # 2. GCD test with arguments folded to concrete constants.
        #    (The polyhedral-layer test bailed whenever symbols survived.)
        coeffs = list(res_l.iv_coeffs.values()) + list(res_s.iv_coeffs.values())
        rhs = res_s.const - res_l.const
        g = 0
        for c in coeffs:
            g = math.gcd(g, abs(c))
        if g == 0:
            if rhs != 0:
                return PairProof(
                    pair,
                    PairClass.PROVEN_INDEPENDENT,
                    f"distinct constant addresses ({res_l.const} vs {res_s.const})",
                )
        elif rhs % g != 0:
            return PairProof(
                pair,
                PairClass.PROVEN_INDEPENDENT,
                f"GCD test: {g} does not divide {rhs}",
            )

        return self._prove_bounded(pair, res_l, res_s)

    # ------------------------------------------------------------------
    def _prove_bounded(
        self, pair: AmbiguousPair, res_l: AffineExpr, res_s: AffineExpr
    ) -> PairProof:
        """Constant-distance refinement for single-IV straight strides."""
        if len(res_l.iv_coeffs) != 1 or len(res_s.iv_coeffs) != 1:
            return PairProof(pair, PairClass.UNKNOWN, "multi-dimensional subscript")
        (phi_l, c_l), = res_l.iv_coeffs.items()
        (phi_s, c_s), = res_s.iv_coeffs.items()
        if phi_l is not phi_s or c_l != c_s or c_l == 0:
            return PairProof(pair, PairClass.UNKNOWN, "unrelated strides")
        phi: PhiInst = phi_l

        # Both operations must run once per activation of the phi's own
        # loop, which must also be their innermost AND outermost loop —
        # any enclosing loop would re-touch the same addresses at
        # unbounded activation distance.
        loop_l = innermost_loop_of(self.loops, pair.load.parent)
        loop_s = innermost_loop_of(self.loops, pair.store.parent)
        if loop_l is None or loop_l is not loop_s:
            return PairProof(pair, PairClass.UNKNOWN, "ops in different loops")
        if phi not in loop_l.header.phis or loop_l.parent is not None:
            return PairProof(pair, PairClass.UNKNOWN, "IV not of the ops' own top loop")

        ivb = self.bounds.get(phi)
        if ivb is None:
            return PairProof(pair, PairClass.UNKNOWN, "loop bounds not derivable")

        delta = res_s.const - res_l.const
        if delta % c_l != 0:
            return PairProof(
                pair,
                PairClass.PROVEN_INDEPENDENT,
                f"stride {c_l} never bridges offset {delta}",
            )
        d_iv = delta // c_l
        if d_iv % ivb.step != 0:
            return PairProof(
                pair,
                PairClass.PROVEN_INDEPENDENT,
                f"IV step {ivb.step} never bridges IV offset {d_iv}",
            )
        d_act = abs(d_iv // ivb.step)
        if d_act == 0:
            # Same subscript every activation — aliases at every distance
            # an enclosing context allows; nothing bounded to claim.
            return PairProof(pair, PairClass.UNKNOWN, "identical subscripts")
        n_ops = self._group_size.get(id(pair), 2)
        return PairProof(
            pair,
            PairClass.BOUNDED_DISTANCE,
            f"constant loop-carried distance {d_act}",
            distance=d_act,
            depth_bound=next_pow2(n_ops * d_act),
        )
