"""Sanitized evaluation runs: compile, simulate under the SC oracle, report.

:func:`sanitize_run` is the dynamic-side entry point behind
``python -m repro.lint --sanitize <kernel>`` and ``python -m repro.bench
--sanitize``: build one kernel under one config, run the static sanitize
lint layer (prover + soundness + coverage), then simulate with the
:class:`~repro.analysis.sanitizer.oracle.SCOracle` attached to every
PreVV unit and the squash controller, and finalize the oracle against
the final memory state.

``mutate`` lets tests (and ``examples/sanitize_kernel.py``) deliberately
break the arbiter *after* compilation — e.g. disable the Eq. 4 index
comparison — and assert the oracle catches it with a specific PV3xx
diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ...compile import compile_function
from ...config import HardwareConfig
from ...dataflow import Simulator
from ...dataflow.tracing import OrderTrace
from ...errors import SimulationError
from ...ir import run_golden
from ..lint.diagnostics import LintReport, make_diagnostic
from ..lint.driver import run_passes
from ..lint.registry import LintContext
from .oracle import SCOracle
from .prover import PairProof


@dataclass
class SanitizeResult:
    """Outcome of one sanitized (kernel, config) run."""

    kernel: str
    config: HardwareConfig
    report: LintReport
    cycles: int = 0
    #: final memory matched the interpreter (independent of oracle verdicts)
    verified: bool = False
    #: the simulation reached quiescence (False on deadlock/abort)
    completed: bool = False
    #: arbiter decisions the oracle checked (process + retire events)
    checks: int = 0
    #: static prover classifications from the sanitize lint layer
    proofs: List[PairProof] = field(default_factory=list)
    trace: Optional[OrderTrace] = None

    @property
    def ok(self) -> bool:
        """No error-severity diagnostic, static or dynamic."""
        return self.report.ok


def sanitize_run(
    kernel,
    config: HardwareConfig,
    max_cycles: int = 2_000_000,
    mutate: Optional[Callable] = None,
    keep_trace: bool = False,
    report: Optional[LintReport] = None,
    static: bool = True,
) -> SanitizeResult:
    """Run ``kernel`` under ``config`` with the full PVSan harness.

    The same :class:`~repro.ir.function.Function` instance feeds the
    interpreter, the compiler and the oracle — trace events reference
    instructions by identity, so rebuilding the IR anywhere in between
    would silently break position matching.

    ``mutate(build)`` runs after compilation but before simulation.
    Non-PreVV configs (dynamatic/LSQ) carry no units, so the oracle's
    arbiter hooks never fire and the check reduces to the final-memory
    comparison against the interpreter.

    Passing an existing ``report`` appends the dynamic findings to it;
    ``static=False`` skips the sanitize lint layer (the CLI uses both to
    merge the oracle verdicts into a report ``lint_kernel`` already
    filled, without duplicating the prover diagnostics).
    """
    fn = kernel.build_ir()
    golden = run_golden(fn, args=kernel.args, memory=kernel.memory_init)
    if report is None:
        report = LintReport(subject=f"{kernel.name}[{config.memory_style}]")

    build = compile_function(fn, config, args=kernel.args)
    build.memory.initialize(kernel.memory_init)

    if mutate is not None:
        mutate(build)

    # Static side over the actual build (prover, soundness, coverage) —
    # after ``mutate`` so doctored builds (e.g. a merged reduction group)
    # are audited too, not just simulated.
    proofs: List[PairProof] = []
    if static:
        ctx = LintContext(
            fn=fn,
            circuit=build.circuit,
            build=build,
            config=config,
            analysis=build.analysis,
            report=report,
            kernel=kernel,
        )
        ctx._golden = golden
        run_passes(ctx, layers=("sanitize",))
        proofs = list(ctx.cache.get("pvsan_proofs", []))

    trace = OrderTrace()
    oracle = SCOracle(fn, golden, report=report, trace=trace)
    oracle.attach(build)

    sim = Simulator(build.circuit, max_cycles=max_cycles, collect_stats=False)
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    # Fail fast on findings no later squash could retract.
    sim.abort_condition = lambda: oracle.has_errors

    from ...eval.runner import make_done_condition

    done = make_done_condition(build)
    completed = True
    try:
        sim.run(done)
        completed = done() and not oracle.has_errors
    except (SimulationError, ArithmeticError) as exc:
        # DeadlockError is a SimulationError; ArithmeticError covers a
        # premature wrong value reaching e.g. a divider (a mis-arbitrated
        # run crashing downstream is itself a finding, not a harness bug).
        completed = False
        report.add(
            make_diagnostic(
                "PV305",
                f"simulation did not complete: {exc}",
                location=f"{kernel.name}[{config.memory_style}]",
                hint="the sanitizer cannot excuse a hang; debug the circuit "
                "before trusting any ordering verdicts",
                pass_name="sanitize-runner",
            )
        )

    final = build.memory.snapshot()
    oracle.finalize(final_memory=final, completed=completed)
    verified = completed and all(
        final.get(name) == values for name, values in golden.memory.items()
    )
    return SanitizeResult(
        kernel=kernel.name,
        config=config,
        report=report,
        cycles=sim.stats.cycles,
        verified=verified,
        completed=completed,
        checks=oracle.checks,
        proofs=proofs,
        trace=trace if keep_trace else None,
    )
