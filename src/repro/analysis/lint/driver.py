"""Lint driver: assemble a context, run the registered passes, report.

Entry points by granularity:

* :func:`lint_ir` — IR layer only (what ``repro.ir.verify`` now wraps);
* :func:`lint_circuit` — circuit layer over an already-built circuit;
* :func:`lint_build` — every layer over a finished
  :class:`~repro.compile.elastic.BuildResult`, auditing the analysis the
  circuit was actually built from;
* :func:`lint_kernel` — compile a registered kernel under a config and
  lint the whole stack; stops after the IR layer when the IR itself is
  broken (nothing downstream is meaningful then).

``lint_kernel`` also runs the PVSan *sanitize* layer: the kernel
descriptor gives the sanitize passes the concrete scalar arguments and
the interpreter golden run they validate prover claims against.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ...config import HardwareConfig
from ...ir.function import Function
from .diagnostics import LintReport
from .registry import LAYERS, LintContext, passes_for_layer

# Importing the pass modules populates the registry as a side effect.
from . import ir_passes  # noqa: F401
from . import circuit_passes  # noqa: F401
from . import prevv_passes  # noqa: F401
from . import sanitizer_passes  # noqa: F401
from . import perf_passes  # noqa: F401
from . import occupancy_passes  # noqa: F401


def run_passes(
    ctx: LintContext, layers: Sequence[str] = LAYERS
) -> LintReport:
    """Run every applicable registered pass for ``layers``, in order.

    Each pass's wall time accumulates into ``ctx.report.timings`` (a
    pass run over several layers via repeated calls keeps one summed
    entry), so slow analyses are visible in both output formats.
    """
    for layer in layers:
        for pass_cls in passes_for_layer(layer):
            lint_pass = pass_cls()
            if not lint_pass.applicable(ctx):
                continue
            ctx._current_pass = lint_pass.name
            started = time.perf_counter()
            try:
                lint_pass.run(ctx)
            finally:
                ctx.report.record_timing(
                    lint_pass.name, time.perf_counter() - started
                )
    ctx._current_pass = ""
    return ctx.report


def lint_ir(
    fn: Function, config: Optional[HardwareConfig] = None
) -> LintReport:
    """IR-layer lint of a function (structure, phis, def-use, memory)."""
    ctx = LintContext(fn=fn, config=config, report=LintReport(subject=fn.name))
    return run_passes(ctx, layers=("ir",))


def lint_circuit(
    circuit,
    fn: Optional[Function] = None,
    build=None,
    config: Optional[HardwareConfig] = None,
) -> LintReport:
    """Circuit-layer lint of a (possibly hand-built) component graph."""
    ctx = LintContext(
        fn=fn,
        circuit=circuit,
        build=build,
        config=config,
        report=LintReport(subject=getattr(circuit, "name", "circuit")),
    )
    return run_passes(ctx, layers=("circuit",))


def lint_build(
    build,
    fn: Optional[Function] = None,
    config: Optional[HardwareConfig] = None,
) -> LintReport:
    """Every layer over a finished build.

    The PreVV layer audits ``build.analysis`` — the pair set the circuit
    was *actually* built from — against a freshly derived dependence set,
    so a stale or hand-edited analysis is caught here.
    """
    config = config if config is not None else build.config
    ctx = LintContext(
        fn=fn,
        circuit=build.circuit,
        build=build,
        config=config,
        analysis=build.analysis,
        report=LintReport(subject=fn.name if fn is not None else "build"),
    )
    return run_passes(ctx)


def lint_kernel(
    name: str,
    config: HardwareConfig,
    measured=None,
    occupancy_measured=None,
    layers: Optional[Sequence[str]] = None,
) -> LintReport:
    """Compile a registered kernel under ``config`` and lint every layer.

    When the IR layer reports errors the kernel is not compiled — the
    report carries the IR diagnostics only.  Otherwise the circuit is
    built exactly as ``run_pipeline`` would build it and the circuit,
    PreVV, sanitize, perf and occupancy layers run over the result.
    ``measured`` (a :class:`~repro.analysis.perf.measure.
    PerfMeasurement`) arms the PV404 static-vs-measured divergence
    check; ``occupancy_measured`` (an :class:`~repro.analysis.occupancy.
    measure.OccupancyMeasurement`) arms PV504 the same way.  ``layers``
    restricts the run to a subset of :data:`LAYERS` (the IR layer still
    gates compilation — broken IR never reaches a post-build layer).
    """
    from ...compile.elastic import compile_function
    from ...errors import CompileError
    from ...kernels import get_kernel

    selected = tuple(LAYERS) if layers is None else tuple(layers)
    for layer in selected:
        if layer not in LAYERS:
            raise ValueError(
                f"unknown lint layer {layer!r}; choose from {LAYERS}"
            )
    kernel = get_kernel(name)
    fn = kernel.build_ir()
    report = LintReport(subject=f"{name}[{config.memory_style}]")
    ctx = LintContext(
        fn=fn,
        config=config,
        report=report,
        kernel=kernel,
        measured=measured,
        occupancy_measured=occupancy_measured,
    )
    run_passes(ctx, layers=("ir",) if "ir" in selected else ())
    if not report.ok:
        return report
    post_ir = tuple(l for l in selected if l != "ir")
    if not post_ir:
        return report
    try:
        build = compile_function(fn, config, args=kernel.args)
    except CompileError:
        # The builder rejected the configuration outright (e.g. ambiguous
        # pairs under memory_style='none').  The PreVV-layer passes can
        # explain *why* without a circuit; re-raise if they cannot.
        run_passes(
            ctx, layers=tuple(l for l in ("prevv", "sanitize") if l in post_ir)
        )
        if report.ok:
            raise
        return report
    ctx.circuit = build.circuit
    ctx.build = build
    ctx._analysis = build.analysis
    return run_passes(ctx, layers=post_ir)
