"""Lint pass base class, context object and the pass registry.

A :class:`LintPass` inspects one layer of the compilation pipeline and
emits diagnostics through the shared :class:`LintContext`.  Passes are
registered with :func:`register_pass` and discovered per layer by the
driver, so adding a new check is: subclass, declare ``layer``/``codes``,
decorate.  The context lazily computes the expensive shared artefacts
(loops, dominators, memory analysis) so passes never duplicate them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ...config import HardwareConfig
from ...ir.function import Function
from ...ir.loops import Loop, dominators, find_loops
from .diagnostics import Diagnostic, LintReport, Severity, make_diagnostic

#: analysis layers in the order the driver runs them.
LAYERS = ("ir", "circuit", "prevv", "sanitize", "perf", "occupancy")


class LintContext:
    """Everything a pass may inspect, plus the report it writes into.

    The attributes are optional by design: an IR-only lint run carries no
    circuit, a hand-built circuit carries no function.  Passes declare
    what they need via :attr:`LintPass.requires` and the driver skips
    passes whose requirements are absent.
    """

    def __init__(
        self,
        fn: Optional[Function] = None,
        circuit=None,
        build=None,
        config: Optional[HardwareConfig] = None,
        analysis=None,
        report: Optional[LintReport] = None,
        kernel=None,
        measured=None,
        occupancy_measured=None,
    ):
        self.fn = fn
        self.circuit = circuit
        self.build = build
        self.config = config
        #: Kernel descriptor (args + inputs + golden run) for sanitize-layer
        #: passes that validate static claims against the interpreter.
        self.kernel = kernel
        #: :class:`~repro.analysis.perf.measure.PerfMeasurement` of a
        #: simulated run, when the caller supplied one; gates the PV404
        #: static-vs-measured divergence pass.
        self.measured = measured
        #: :class:`~repro.analysis.occupancy.measure.OccupancyMeasurement`
        #: of a simulated run, when the caller supplied one; gates the
        #: PV504 occupancy-divergence pass.
        self.occupancy_measured = occupancy_measured
        #: scratch space shared across passes of one run (e.g. the prover's
        #: proofs, reused by the soundness cross-check).
        self.cache: Dict = {}
        self._golden = None
        #: MemoryAnalysis under audit.  For post-build linting this is the
        #: analysis the circuit was actually built from (``build.analysis``)
        #: so stale/doctored analyses are caught by the cross-check pass.
        self._analysis = analysis
        # Explicit None check: an empty LintReport is falsy (it has __len__).
        self.report = report if report is not None else LintReport()
        self._loops: Optional[List[Loop]] = None
        self._doms: Optional[Dict] = None
        self._current_pass = ""

    # ------------------------------------------------------------------
    # Lazy shared artefacts
    # ------------------------------------------------------------------
    @property
    def loops(self) -> List[Loop]:
        if self._loops is None:
            self._loops = find_loops(self.fn) if self.fn is not None else []
        return self._loops

    @property
    def doms(self) -> Dict:
        if self._doms is None:
            self._doms = dominators(self.fn) if self.fn is not None else {}
        return self._doms

    @property
    def analysis(self):
        if self._analysis is None and self.fn is not None:
            from ..ambiguous_pairs import analyze_function

            self._analysis = analyze_function(self.fn)
        return self._analysis

    @property
    def golden(self):
        """Interpreter run of :attr:`kernel` (lazy; None without a kernel).

        Interprets :attr:`fn` itself when present — trace events reference
        instructions by identity, so the run must use the very Function
        instance the passes inspect, not a rebuilt copy.
        """
        if self._golden is None and self.kernel is not None:
            if self.fn is not None:
                from ...ir.interpreter import run_golden

                self._golden = run_golden(
                    self.fn,
                    args=self.kernel.args,
                    memory=self.kernel.memory_init,
                )
            else:
                self._golden = self.kernel.golden()
        return self._golden

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        code: str,
        message: str,
        location: str = "",
        hint: str = "",
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        return self.report.add(
            make_diagnostic(
                code,
                message,
                location=location,
                hint=hint,
                pass_name=self._current_pass,
                severity=severity,
            )
        )

    @property
    def has_ir_errors(self) -> bool:
        """True when an IR-layer error was already reported.

        Later passes that interpret the IR semantically (dependence
        analysis, dominance-derived properties) guard on this so they
        never crash on — or mis-diagnose — structurally broken input.
        """
        return any(
            d.severity is Severity.ERROR and d.code.startswith("PV0")
            for d in self.report.diagnostics
        )


class LintPass:
    """Base class: one focused check over one layer."""

    #: unique pass name (kebab-case), shown in diagnostics and --explain.
    name: str = ""
    #: one of :data:`LAYERS`.
    layer: str = ""
    #: diagnostic codes this pass may emit (documentation + test hook).
    codes: Sequence[str] = ()
    #: context attributes that must be non-None for the pass to run.
    requires: Sequence[str] = ("fn",)

    def applicable(self, ctx: LintContext) -> bool:
        return all(getattr(ctx, attr, None) is not None for attr in self.requires)

    def run(self, ctx: LintContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


_REGISTRY: List[Type[LintPass]] = []


def register_pass(cls: Type[LintPass]) -> Type[LintPass]:
    """Class decorator: validate the declaration and add it to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__}: lint pass needs a name")
    if cls.layer not in LAYERS:
        raise ValueError(
            f"{cls.__name__}: layer {cls.layer!r} not one of {LAYERS}"
        )
    if not cls.codes:
        raise ValueError(f"{cls.__name__}: lint pass must declare its codes")
    from .diagnostics import CODES

    for code in cls.codes:
        if code not in CODES:
            raise ValueError(f"{cls.__name__}: unknown code {code!r}")
    if any(existing.name == cls.name for existing in _REGISTRY):
        raise ValueError(f"duplicate lint pass name {cls.name!r}")
    _REGISTRY.append(cls)
    return cls


def all_passes() -> List[Type[LintPass]]:
    return list(_REGISTRY)


def passes_for_layer(layer: str) -> List[Type[LintPass]]:
    if layer not in LAYERS:
        raise ValueError(f"unknown lint layer {layer!r}; choose from {LAYERS}")
    return [p for p in _REGISTRY if p.layer == layer]
