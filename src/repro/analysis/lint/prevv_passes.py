"""PreVV-configuration lint passes (PV2xx).

The configuration layer audits the *decisions* the flow made against the
paper's analytical models:

* the premature-queue depth against the matched-depth bound of
  Sec. V-A (Eqs. 6-10) — an undersized queue stalls the predecessor and
  erases the premature-execution win;
* the ambiguous-pair set against an independently derived polyhedral
  dependence set — a stale or doctored analysis silently builds an
  unsound circuit (Definition 1 must be conservative);
* the Sec. V-B dimension reduction — one PreVV unit per *reduced* group,
  never per pair (Eq. 11 complexity blow-up otherwise);
* the memory style against the kernel's hazards.
"""

from __future__ import annotations

from typing import Set, Tuple

from ...ir.instructions import LoadInst
from ..polyhedral import AffineAnalyzer, Dependence
from ..sizing import (
    DEFAULT_P_SQUASH,
    DEFAULT_T_ORG,
    DEFAULT_T_TOKEN,
    suggest_depth,
)
from .diagnostics import Severity
from .registry import LintContext, LintPass, register_pass

PairKey = Tuple[str, str, str]  # (load name, store name, array)


def _reference_pairs(ctx: LintContext) -> Set[PairKey]:
    """Independently re-derive the Definition 1 pair set from polyhedral
    primitives plus loop context (never trusting ``ctx.analysis``)."""
    from ..ambiguous_pairs import classify_with_loops

    fn = ctx.fn
    analyzer = AffineAnalyzer(fn)
    reference: Set[PairKey] = set()
    by_array = {}
    for block in fn.blocks:
        for inst in block.memory_ops():
            slot = by_array.setdefault(
                inst.array.name, {"loads": [], "stores": []}
            )
            if isinstance(inst, LoadInst):
                slot["loads"].append(inst)
            else:
                slot["stores"].append(inst)
    for array, ops in by_array.items():
        for load in ops["loads"]:
            for store in ops["stores"]:
                kind = classify_with_loops(analyzer, ctx.loops, load, store)
                if kind is Dependence.MAY_CONFLICT:
                    reference.add((load.name, store.name, array))
    return reference


@register_pass
class AmbiguousPairCrossCheckPass(LintPass):
    """PV202: the analysis' pair set must match the dependence set.

    Missing pairs (in the dependence set, absent from the analysis) are
    errors — the built circuit has no ordering hardware for a real
    hazard.  Extra pairs are warnings — sound but wasteful.
    """

    name = "prevv-pair-cross-check"
    layer = "prevv"
    codes = ("PV202",)
    requires = ("fn",)

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors or ctx.analysis is None:
            return
        reference = _reference_pairs(ctx)
        audited: Set[PairKey] = {
            (p.load.name, p.store.name, p.array) for p in ctx.analysis.pairs
        }
        for load_name, store_name, array in sorted(reference - audited):
            ctx.emit(
                "PV202",
                f"pair Am{{{load_name}, {store_name}}}@{array} is in the "
                "polyhedral dependence set but missing from the memory "
                "analysis",
                location=f"{ctx.fn.name}:{array}",
                hint="re-run analyze_function; the compiled circuit has "
                "no ordering hardware for this hazard",
            )
        for load_name, store_name, array in sorted(audited - reference):
            ctx.emit(
                "PV202",
                f"pair Am{{{load_name}, {store_name}}}@{array} is not "
                "justified by the polyhedral dependence set",
                location=f"{ctx.fn.name}:{array}",
                hint="sound but wasteful: the pair spends queue entries "
                "on a proven-independent access",
                severity=Severity.WARNING,
            )


@register_pass
class QueueDepthModelPass(LintPass):
    """PV201/PV205: premature-queue depth against the Eq. 6-10 model."""

    name = "prevv-queue-depth"
    layer = "prevv"
    codes = ("PV201", "PV205")
    requires = ("config",)

    def run(self, ctx: LintContext) -> None:
        config = ctx.config
        if config.memory_style != "prevv":
            return
        needs_queue = bool(
            (ctx.build is not None and getattr(ctx.build, "units", []))
            or (
                ctx.fn is not None
                and not ctx.has_ir_errors
                and ctx.analysis is not None
                and ctx.analysis.pairs
            )
        )
        if not needs_queue:
            return
        depth = config.prevv_depth
        if depth & (depth - 1):
            ctx.emit(
                "PV205",
                f"prevv_depth {depth} is not a power of two",
                location="config:prevv_depth",
                hint="hardware queues are sized in powers of two; round "
                f"up to {1 << depth.bit_length()}",
            )
        bound = suggest_depth(DEFAULT_T_ORG, DEFAULT_P_SQUASH, DEFAULT_T_TOKEN)
        if depth < bound:
            ctx.emit(
                "PV201",
                f"prevv_depth {depth} is below the matched-depth bound "
                f"{bound} (Eqs. 6-10): ambiguous pairs will stall their "
                "predecessors",
                location="config:prevv_depth",
                hint=f"set prevv_depth >= {bound} or justify via the "
                "depth-sweep benchmark",
            )


@register_pass
class MemoryStyleSoundnessPass(LintPass):
    """PV204: the selected memory style must order the kernel's hazards."""

    name = "prevv-style-soundness"
    layer = "prevv"
    codes = ("PV204",)
    requires = ("fn", "config")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors or ctx.analysis is None:
            return
        if not ctx.analysis.pairs:
            return
        style = ctx.config.memory_style
        if style == "none":
            ctx.emit(
                "PV204",
                f"kernel has {len(ctx.analysis.pairs)} ambiguous pair(s) "
                "but memory_style='none' provides no ordering",
                location="config:memory_style",
                hint="use 'dynamatic', 'fast' or 'prevv'",
            )
            return
        if ctx.build is None:
            return
        if style == "prevv" and not ctx.build.units:
            ctx.emit(
                "PV204",
                "memory_style='prevv' but the circuit instantiates no "
                "PreVV unit for the kernel's ambiguous pairs",
                location="config:memory_style",
                hint="the builder must emit one PreVVUnit per reduced "
                "group",
            )
        elif style in ("dynamatic", "fast") and not ctx.build.lsqs:
            ctx.emit(
                "PV204",
                f"memory_style={style!r} but the circuit instantiates no "
                "LSQ for the kernel's ambiguous pairs",
                location="config:memory_style",
                hint="the builder must emit one LoadStoreQueue per "
                "conflicted array",
            )


@register_pass
class DimensionReductionPass(LintPass):
    """PV203/PV206: Sec. V-B reduction must be applied where applicable."""

    name = "prevv-dimension-reduction"
    layer = "prevv"
    codes = ("PV203", "PV206")
    requires = ("build",)

    def run(self, ctx: LintContext) -> None:
        build = ctx.build
        units = getattr(build, "units", [])
        groups = getattr(build, "groups", [])
        if not units and not groups:
            return
        if len(units) > len(groups):
            ctx.emit(
                "PV203",
                f"{len(units)} PreVV units for {len(groups)} reduced "
                "group(s): overlapped pairs are being validated more "
                "than once (Eq. 11 complexity)",
                location=f"{ctx.circuit.name if ctx.circuit else 'build'}",
                hint="instantiate exactly one unit per reduce_pairs group",
            )
        analysis = build.analysis if build.analysis is not None else ctx.analysis
        if analysis is None or not groups:
            return
        from ..reduction import max_pairs_per_op

        overlap = max_pairs_per_op(analysis)
        if overlap > 1 and len(units) == len(groups):
            ctx.emit(
                "PV206",
                f"dimension reduction collapsed {len(analysis.pairs)} "
                f"pair(s) (max {overlap} per op) into {len(groups)} "
                "validation group(s)",
                location=f"{ctx.fn.name if ctx.fn else 'build'}",
                hint="Eq. 11 exponential duplication avoided",
            )


@register_pass
class SchedulingContractAuditPass(LintPass):
    """PV207: every component class in a PreVV build must be audited.

    The incremental cross-cycle engine trusts three per-class contract
    flags (``observes_input_valid``, ``forwards_valid``,
    ``observes_output_ready``) plus each :meth:`tick`'s changed-state
    report to decide which components it may skip.  A class whose
    contract was never checked against its ``propagate``/``tick`` bodies
    can silently corrupt results (flag too permissive) or de-optimize
    every PreVV simulation back to full sweeps (flag too conservative).
    The audit is recorded by setting ``scheduling_contract_audited=True``
    on the class; this pass refuses any PreVV-build component class that
    does not carry the marker.
    """

    name = "prevv-scheduling-contract"
    layer = "prevv"
    codes = ("PV207",)
    requires = ("circuit", "config")

    def run(self, ctx: LintContext) -> None:
        if ctx.config.memory_style != "prevv":
            return
        flagged = set()
        for comp in ctx.circuit.components:
            cls = type(comp)
            if cls in flagged:
                continue
            if not getattr(cls, "scheduling_contract_audited", False):
                flagged.add(cls)
                ctx.emit(
                    "PV207",
                    f"component class {cls.__name__} (e.g. {comp.name!r}) "
                    "does not declare an audited scheduling contract",
                    location=f"{ctx.circuit.name}:{comp.name}",
                    hint="check observes_input_valid / forwards_valid / "
                    "observes_output_ready and the tick() change report "
                    "against the class' propagate/tick bodies, then set "
                    "scheduling_contract_audited = True on the class",
                )
