"""Diagnostic model for the circuit linter.

Every finding is a :class:`Diagnostic`: a stable code (``PV001`` ...), a
severity, a human-readable message, a source location and an optional
fix-it hint.  Codes are grouped by analysis layer:

* ``PV0xx`` — IR well-formedness and memory hygiene;
* ``PV1xx`` — circuit-graph structure (connectivity, deadlock, tokens);
* ``PV2xx`` — PreVV configuration (queue sizing, pair cross-checks);
* ``PV3xx`` — PVSan: the static disambiguation prover and the dynamic
  sequential-consistency oracle (:mod:`repro.analysis.sanitizer`);
* ``PV4xx`` — PVPerf: static throughput bounds (maximum cycle ratio,
  PreVV pressure models) and their measured cross-check
  (:mod:`repro.analysis.perf`).

The full table lives in :data:`CODES`; emitting an unknown code is a
programming error and raises immediately, which keeps the table exhaustive
and the documentation in DESIGN.md honest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Severity(enum.Enum):
    """How bad a diagnostic is; orderable (ERROR > WARNING > INFO)."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{[s.value for s in cls]}"
            ) from None


#: code -> (default severity, one-line title).  The single source of truth
#: for every diagnostic the linter can emit (mirrored in DESIGN.md).
CODES: Dict[str, Tuple[Severity, str]] = {
    # --- IR layer (PV0xx) ---------------------------------------------
    "PV001": (Severity.ERROR, "function has no blocks"),
    "PV002": (Severity.ERROR, "block is missing a terminator"),
    "PV003": (Severity.ERROR, "terminator is not the last instruction"),
    "PV004": (Severity.ERROR, "branch successor is not in the function"),
    "PV005": (Severity.ERROR, "phi incomings do not match predecessors"),
    "PV006": (Severity.ERROR, "operand is not defined in the function"),
    "PV007": (Severity.ERROR, "memory access names an undeclared array"),
    "PV008": (Severity.ERROR, "block is unreachable from the entry"),
    "PV009": (Severity.WARNING, "store to a loop-invariant constant address"),
    "PV010": (Severity.ERROR, "use is not dominated by its definition"),
    "PV011": (Severity.INFO, "loop-carried may-conflict dependence"),
    # --- Circuit layer (PV1xx) ----------------------------------------
    "PV101": (Severity.ERROR, "declared port is not connected"),
    "PV102": (Severity.ERROR, "channel has a dangling end"),
    "PV103": (Severity.ERROR, "combinational cycle without opaque storage"),
    "PV104": (Severity.ERROR, "tokens cannot drain to any consumer"),
    "PV105": (Severity.ERROR, "conditional PreVV port lacks a fake-token path"),
    "PV106": (Severity.ERROR, "PreVV port lacks a done-token path"),
    "PV107": (Severity.INFO, "unconditional PreVV port has a fake-token path"),
    # --- PreVV configuration layer (PV2xx) ----------------------------
    "PV201": (Severity.WARNING, "premature-queue depth below the matched bound"),
    "PV202": (Severity.ERROR, "ambiguous-pair set disagrees with the dependence analysis"),
    "PV203": (Severity.WARNING, "overlapped-pair dimension reduction left unexploited"),
    "PV204": (Severity.ERROR, "memory style cannot order the kernel's ambiguous pairs"),
    "PV205": (Severity.WARNING, "premature-queue depth is not a power of two"),
    "PV206": (Severity.INFO, "dimension reduction collapsed overlapped pairs"),
    "PV207": (Severity.ERROR, "component class lacks an audited scheduling contract"),
    "PV208": (Severity.WARNING, "circuit is not compilable by the codegen engine"),
    "PV209": (Severity.INFO, "circuit is not vectorizable by the lockstep batch engine"),
    # --- PVSan sanitizer layer (PV3xx) --------------------------------
    "PV301": (Severity.INFO, "pair proven independent; its PreVV entry can be dropped"),
    "PV302": (Severity.INFO, "loop-carried distance bounds the premature window"),
    "PV303": (Severity.INFO, "pair stays unproven; arbiter required"),
    "PV304": (Severity.ERROR, "prover claim contradicted by the interpreter trace"),
    "PV305": (Severity.ERROR, "arbiter missed an ordering violation"),
    "PV306": (Severity.ERROR, "arbiter squashed without an observable value mismatch"),
    "PV307": (Severity.ERROR, "dimension reduction does not cover the ambiguous pairs"),
    "PV308": (Severity.ERROR, "fake/real token retirement disagrees with program order"),
    # --- PVPerf performance layer (PV4xx) ------------------------------
    "PV401": (Severity.WARNING, "undersized buffering bounds the critical cycle"),
    "PV402": (Severity.WARNING, "validation bandwidth bounds the loop II"),
    "PV403": (Severity.WARNING, "premature-queue depth below the proven distance window"),
    "PV404": (Severity.ERROR, "static II bound exceeds the measured steady state"),
    # --- PVBound occupancy layer (PV5xx) -------------------------------
    "PV501": (Severity.ERROR, "occupancy exceeds a place's structural capacity"),
    "PV502": (Severity.ERROR, "premature-queue physical-slack overflow reachable"),
    "PV503": (Severity.ERROR, "retirement-stall cycle leaves entries unretired"),
    "PV504": (Severity.ERROR, "static occupancy bound below the measured peak"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    code: str
    severity: Severity
    message: str
    #: where the problem is: ``fn:block:inst``, ``circuit:component``,
    #: ``config:field`` — whatever is most precise for the layer.
    location: str = ""
    #: actionable fix-it suggestion ("insert an OEHB on ...").
    hint: str = ""
    #: the lint pass that produced this (for --explain / debugging).
    pass_name: str = ""

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def format(self) -> str:
        loc = f" [{self.location}]" if self.location else ""
        text = f"{self.severity.value} {self.code}{loc}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
            "pass": self.pass_name,
        }


def make_diagnostic(
    code: str,
    message: str,
    location: str = "",
    hint: str = "",
    pass_name: str = "",
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic, defaulting severity from the :data:`CODES` table."""
    if code not in CODES:
        raise KeyError(f"unknown diagnostic code {code!r}; add it to CODES")
    return Diagnostic(
        code=code,
        severity=severity or CODES[code][0],
        message=message,
        location=location,
        hint=hint,
        pass_name=pass_name,
    )


@dataclass
class LintReport:
    """Ordered collection of diagnostics plus query/format helpers."""

    subject: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: accumulated wall time per pass name, in seconds (driver-recorded)
    timings: Dict[str, float] = field(default_factory=dict)

    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        for name, seconds in other.timings.items():
            self.timings[name] = self.timings.get(name, 0.0) + seconds

    def record_timing(self, pass_name: str, seconds: float) -> None:
        self.timings[pass_name] = self.timings.get(pass_name, 0.0) + seconds

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def with_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.with_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.with_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Diagnostic]:
        return self.with_severity(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was emitted."""
        return not self.errors

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def summary(self) -> str:
        return (
            f"{self.subject or 'lint'}: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info(s)"
        )

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [self.summary()]
        for diag in self.diagnostics:
            if min_severity <= diag.severity:
                lines.append("  " + diag.format())
        return "\n".join(lines)

    def format_timings(self) -> str:
        """Per-pass wall-time table, slowest first."""
        lines = [f"{self.subject or 'lint'}: pass timings"]
        for name, seconds in sorted(
            self.timings.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {name:<32s} {seconds * 1000.0:9.2f} ms")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "subject": self.subject,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "timings": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.timings.items())
            },
        }

    def __len__(self) -> int:
        return len(self.diagnostics)
