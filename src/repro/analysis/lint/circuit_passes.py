"""Circuit-graph lint passes (PV1xx).

These run over a built elastic circuit (``dataflow.circuit.Circuit``):

* arity-aware port connectivity — stricter than ``Circuit.validate``,
  which only checks *attached* ports, so a ``Fork(n=2)`` with one wired
  output slips through and crashes mid-simulation;
* the deadlock detector — every cycle in the channel graph must contain
  at least one component with *opaque* token storage (OEHB, opaque FIFO,
  pipelined operator, memory interface); a buffer-free cycle can never
  move a token and stalls silently after thousands of cycles;
* token-conservation — every component must be able to drain its tokens
  into a consumer (sink or memory interface); a region with no drain
  fills its buffers and back-pressures the whole pipeline;
* PreVV coverage — each conditional member operation needs its fake-token
  generator (Sec. V-C) and every port needs its done-token generator, or
  the arbiter waits forever on iterations that never produced a packet.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from ...dataflow.arith import Operator
from ...dataflow.buffers import Fifo, OpaqueBuffer, TransparentFifo
from ...dataflow.primitives import Constant, Entry, Fork, Join, Sink, Source
from ...dataflow.routing import Branch, ControlMerge, Merge, Mux, Select
from ...dataflow.schedule import (
    strongly_connected_components,
    token_flow_adjacency,
)
from ...ir.loops import back_edges, innermost_loop_of
from ...lsq.lsq import LoadStoreQueue
from ...memory.controller import MemoryController
from ...prevv.replay import DomainGate
from ...prevv.unit import PreVVUnit
from .registry import LintContext, LintPass, register_pass


def _cloc(ctx: LintContext, comp) -> str:
    return f"{ctx.circuit.name}:{comp.name}"


# ----------------------------------------------------------------------
# Port arity expectations
# ----------------------------------------------------------------------
def expected_ports(comp) -> Tuple[Set[str], Set[str]]:
    """(required inputs, required outputs) for ``comp``.

    Derived from constructor arity where the class declares one; falls
    back to the dynamic (attached-only) port sets otherwise.  PreVV fake
    and done ports are intentionally excluded — their presence is a
    semantic question answered by the coverage passes (PV105/PV106).
    """
    if isinstance(comp, Fork):
        return {"in"}, {comp.out_port(i) for i in range(comp.n_outputs)}
    if isinstance(comp, Join):
        return {comp.in_port(i) for i in range(comp.n_inputs)}, {"out"}
    if isinstance(comp, Mux):
        ins = {comp.in_port(i) for i in range(comp.n_inputs)}
        return ins | {"select"}, {"out"}
    if isinstance(comp, ControlMerge):
        ins = {comp.in_port(i) for i in range(comp.n_inputs)}
        return ins, {"out", "index"}
    if isinstance(comp, Merge):
        return {comp.in_port(i) for i in range(comp.n_inputs)}, {"out"}
    if isinstance(comp, Branch):
        return {"data", "cond"}, {"true", "false"}
    if isinstance(comp, Select):
        return {"cond", "a", "b"}, {"out"}
    if isinstance(comp, Operator):
        return {comp.in_port(i) for i in range(comp.n_inputs)}, {"out"}
    if isinstance(comp, Constant):
        return {"ctrl"}, {"out"}
    if isinstance(comp, (Entry, Source)):
        return set(), {"out"}
    if isinstance(comp, Sink):
        return {"in"}, set()
    if isinstance(comp, DomainGate):
        n = comp.n_channels
        return (
            {comp.in_port(i) for i in range(n)},
            {comp.out_port(i) for i in range(n)},
        )
    if isinstance(comp, PreVVUnit):
        return {comp.port_name(i) for i in range(len(comp.ports))}, set()
    if isinstance(comp, (MemoryController, LoadStoreQueue)):
        ins = {f"ld{i}_addr" for i in range(comp.n_loads)}
        ins |= {f"st{j}_addr" for j in range(comp.n_stores)}
        ins |= {f"st{j}_data" for j in range(comp.n_stores)}
        outs = {f"ld{i}_data" for i in range(comp.n_loads)}
        if isinstance(comp, LoadStoreQueue):
            ins |= {f"group{g}" for g in range(len(comp.groups))}
        return ins, outs
    return set(comp.expected_inputs()), set(comp.expected_outputs())


def cuts_token_cycle(comp) -> bool:
    """True when ``comp`` breaks the combinational valid/data path.

    A component cuts a token cycle when its output validity this cycle
    comes from internal state rather than from this cycle's inputs:
    opaque storage (OEHB, opaque FIFO), pipelined operators and the
    stateful memory interfaces.  Transparent buffers/FIFOs pass valid
    through when empty and therefore do NOT cut.
    """
    if isinstance(comp, TransparentFifo):
        return False
    if isinstance(comp, (OpaqueBuffer, Fifo)):
        return True
    if isinstance(comp, Operator):
        return comp.latency >= 1
    if isinstance(comp, (MemoryController, LoadStoreQueue, PreVVUnit)):
        return True
    return bool(getattr(comp, "cuts_token_cycles", False))


def is_token_consumer(comp) -> bool:
    """Components where tokens legitimately leave the circuit."""
    return isinstance(comp, (Sink, MemoryController, LoadStoreQueue, PreVVUnit))


@register_pass
class PortConnectivityPass(LintPass):
    """PV101/PV102: every declared port wired, every channel double-ended."""

    name = "circuit-connectivity"
    layer = "circuit"
    codes = ("PV101", "PV102")
    requires = ("circuit",)

    def run(self, ctx: LintContext) -> None:
        for comp in ctx.circuit.components:
            ins, outs = expected_ports(comp)
            for port in sorted(ins):
                if port not in comp.inputs:
                    ctx.emit(
                        "PV101",
                        f"{comp.name}: input {port!r} unconnected",
                        location=_cloc(ctx, comp),
                        hint="connect the port or reduce the component's "
                        "arity",
                    )
            for port in sorted(outs):
                if port not in comp.outputs:
                    ctx.emit(
                        "PV101",
                        f"{comp.name}: output {port!r} unconnected",
                        location=_cloc(ctx, comp),
                        hint="connect the port (route unused outputs to "
                        "a Sink)",
                    )
        for chan in ctx.circuit.channels:
            if chan.producer is None or chan.consumer is None:
                ctx.emit(
                    "PV102",
                    f"channel {chan.name}: dangling end",
                    location=f"{ctx.circuit.name}:{chan.name}",
                    hint="channels must be created via Circuit.connect",
                )


@register_pass
class DeadlockCyclePass(LintPass):
    """PV103: every channel cycle needs opaque storage or it deadlocks.

    The structural analogue of the simulator's dynamic
    :class:`~repro.errors.DeadlockError`: a cycle made only of
    combinational/transparent components cannot hold a token between
    clock edges, so no token can ever make it around (the Fig. 6 class
    of silent deadlocks).  Loop back-edges get their storage from the
    builder's OEHB+TEHB pair; hand-built circuits must do the same.
    """

    name = "circuit-deadlock"
    layer = "circuit"
    codes = ("PV103",)
    requires = ("circuit",)

    def run(self, ctx: LintContext) -> None:
        comps = {id(c): c for c in ctx.circuit.components}
        adj = token_flow_adjacency(ctx.circuit)
        # Remove cycle-cutting components; any remaining cycle is fatal.
        soft = {cid for cid, c in comps.items() if not cuts_token_cycle(c)}
        sub = {cid: {s for s in adj[cid] if s in soft} for cid in soft}
        for scc in strongly_connected_components(sub):
            cyclic = len(scc) > 1 or scc[0] in sub[scc[0]]
            if not cyclic:
                continue
            names = sorted(comps[cid].name for cid in scc)
            shown = ", ".join(names[:8]) + (" ..." if len(names) > 8 else "")
            ctx.emit(
                "PV103",
                f"combinational cycle with no opaque buffer through "
                f"{len(names)} component(s): {shown}",
                location=_cloc(ctx, comps[scc[0]]),
                hint="insert an OpaqueBuffer (OEHB) or opaque Fifo on "
                "the cycle",
            )


@register_pass
class TokenDrainPass(LintPass):
    """PV104: every component must reach a token consumer.

    A fork arm (or whole region) from which no sink or memory interface
    is reachable conserves its tokens forever: buffers fill, backpressure
    propagates, and the circuit wedges.  This is the static form of the
    fork/join token-conservation argument.
    """

    name = "circuit-token-drain"
    layer = "circuit"
    codes = ("PV104",)
    requires = ("circuit",)

    def run(self, ctx: LintContext) -> None:
        comps = {id(c): c for c in ctx.circuit.components}
        adj = token_flow_adjacency(ctx.circuit)
        reverse: Dict[int, Set[int]] = {cid: set() for cid in adj}
        for cid, succs in adj.items():
            for succ in succs:
                reverse[succ].add(cid)
        draining: Set[int] = {
            cid for cid, c in comps.items() if is_token_consumer(c)
        }
        frontier = list(draining)
        while frontier:
            node = frontier.pop()
            for pred in reverse[node]:
                if pred not in draining:
                    draining.add(pred)
                    frontier.append(pred)
        for cid, comp in sorted(comps.items(), key=lambda kv: kv[1].name):
            if cid in draining:
                continue
            ctx.emit(
                "PV104",
                f"{comp.name}: no sink or memory interface is reachable; "
                "its tokens can never drain",
                location=_cloc(ctx, comp),
                hint="route the dangling path into a Sink",
            )


@register_pass
class FakeTokenCoveragePass(LintPass):
    """PV105/PV107: fake-token generators exactly where Sec. V-C needs them.

    A member operation whose block does not dominate every back-edge of
    its loop can be skipped in some iterations; without a fake packet on
    the skip path the arbiter's ROM order wedges on the missing
    iteration.  Conversely, a fake path on an unconditional port is dead
    hardware (informational).
    """

    name = "prevv-fake-coverage"
    layer = "circuit"
    codes = ("PV105", "PV107")
    requires = ("circuit", "build", "fn")

    def run(self, ctx: LintContext) -> None:
        units = getattr(ctx.build, "units", [])
        if not units:
            return
        fn = ctx.fn
        mem_ops = list(fn.memory_ops())
        tails_by_header = {}
        for tail, header in back_edges(fn):
            tails_by_header.setdefault(id(header), []).append(tail)
        for unit in units:
            for i, port in enumerate(unit.ports):
                if port.rom_pos >= len(mem_ops):
                    continue  # stale build vs IR; cross-check pass reports
                op = mem_ops[port.rom_pos]
                block = op.parent
                loop = innermost_loop_of(ctx.loops, block)
                if loop is None:
                    continue
                tails = tails_by_header.get(id(loop.header), [])
                skippable = not all(
                    block in ctx.doms.get(t, set()) for t in tails
                )
                has_fake = unit.fake_port_name(i) in unit.inputs
                if skippable and not has_fake:
                    ctx.emit(
                        "PV105",
                        f"{unit.name} port {i} ({op.name}): block "
                        f"{block.name} is conditionally skipped but no "
                        "fake-token generator covers the skip path",
                        location=_cloc(ctx, unit),
                        hint="attach a FakeTokenGenerator on the "
                        "not-taken branch edge (Sec. V-C)",
                    )
                elif has_fake and not skippable:
                    ctx.emit(
                        "PV107",
                        f"{unit.name} port {i} ({op.name}): fake-token "
                        "path present but the operation executes every "
                        "iteration",
                        location=_cloc(ctx, unit),
                        hint="drop the generator to save area",
                    )


@register_pass
class DoneTokenCoveragePass(LintPass):
    """PV106: every PreVV port must see its nest-exit done token.

    Without a done packet the arbiter cannot retire the port's final
    iterations, so the premature queue never drains and the squash
    controller holds replay state forever.
    """

    name = "prevv-done-coverage"
    layer = "circuit"
    codes = ("PV106",)
    requires = ("circuit", "build")

    def run(self, ctx: LintContext) -> None:
        for unit in getattr(ctx.build, "units", []):
            for i in range(len(unit.ports)):
                if unit.done_port_name(i) not in unit.inputs:
                    ctx.emit(
                        "PV106",
                        f"{unit.name} port {i}: no done-token generator "
                        "attached",
                        location=_cloc(ctx, unit),
                        hint="attach a DoneTokenGenerator on the loop-nest "
                        "exit edge",
                    )


@register_pass
class CodegenCompilabilityPass(LintPass):
    """PV208: compiler fallbacks must be visible, not silent.

    Engine selection quietly falls back to the interpreted engine when
    the step-code compiler (:mod:`repro.dataflow.codegen`) declines a
    circuit — correct, but a throughput cliff the user asked to avoid by
    requesting ``engine="compiled"``.  This pass reports *why* a circuit
    would be declined: component classes outside the audited codegen set
    (or lacking the audit marker), instance-level ``propagate``/``tick``
    patches that defeat the emitted templates, and cyclic valid/ready
    residue that breaks the two-phase static schedule.
    """

    name = "circuit-codegen-compilability"
    layer = "circuit"
    codes = ("PV208",)
    requires = ("circuit",)

    def run(self, ctx: LintContext) -> None:
        from ...dataflow.codegen import class_support, why_not_compilable

        flagged_classes: Set[type] = set()
        structural = False
        for comp in ctx.circuit.components:
            cls = type(comp)
            if cls not in flagged_classes:
                if class_support(cls) is None:
                    flagged_classes.add(cls)
                    structural = True
                    ctx.emit(
                        "PV208",
                        f"component class {cls.__name__} (e.g. "
                        f"{comp.name!r}) is not in the audited codegen "
                        "set; the compiled engine will decline this "
                        "circuit",
                        location=_cloc(ctx, comp),
                        hint="audit the class' propagate/tick bodies, add "
                        "an inline template or pre-bound call entry in "
                        "repro.dataflow.codegen, and mark "
                        "scheduling_contract_audited",
                    )
                elif not getattr(cls, "scheduling_contract_audited", False):
                    flagged_classes.add(cls)
                    structural = True
                    ctx.emit(
                        "PV208",
                        f"component class {cls.__name__} (e.g. "
                        f"{comp.name!r}) is in the codegen set but its "
                        "scheduling contract is not audited",
                        location=_cloc(ctx, comp),
                        hint="set scheduling_contract_audited = True after "
                        "checking the contract flags (PV207 documents the "
                        "audit)",
                    )
            for meth in ("propagate", "tick"):
                if meth in comp.__dict__:
                    structural = True
                    ctx.emit(
                        "PV208",
                        f"{comp.name!r} carries an instance-level {meth} "
                        "override; the compiled engine will decline this "
                        "circuit",
                        location=_cloc(ctx, comp),
                        hint="instance patches defeat the emitted "
                        "templates; move the behaviour into an audited "
                        "class",
                    )
        if structural:
            return  # per-component diagnostics already explain the decline
        reason = why_not_compilable(ctx.circuit)
        if reason is not None:
            ctx.emit(
                "PV208",
                f"circuit is not compilable: {reason}",
                location=ctx.circuit.name,
                hint="the two-phase emitted schedule needs an acyclic "
                "valid network and a TEHB-cut ready network (same "
                "conditions as the incremental engine)",
            )


@register_pass
class VectorizabilityPass(LintPass):
    """PV209: batch-engine declines must be visible, not silent.

    ``run_batch(..., engine="vector")`` quietly falls back to
    sequential compiled runs when the lockstep vector engine
    (:mod:`repro.dataflow.vector`) declines a circuit — correct, but
    it forfeits the batched-throughput win the caller asked for.  This
    pass surfaces the decline reason ahead of time, mirroring PV208
    for the compiled engine.  The vector engine's restrictions are a
    strict superset of the compiled engine's, so a PV208 finding
    implies a PV209 finding; the extra conditions this pass can catch
    alone are numpy availability and inline component classes whose
    ``flush`` override the engine does not mirror in its lane planes.
    """

    name = "circuit-vectorizability"
    layer = "circuit"
    codes = ("PV209",)
    requires = ("circuit",)

    def run(self, ctx: LintContext) -> None:
        from ...dataflow.vector import why_not_vectorizable

        reason = why_not_vectorizable(ctx.circuit)
        if reason is not None:
            ctx.emit(
                "PV209",
                f"circuit is not vectorizable: {reason}",
                location=ctx.circuit.name,
                hint="batched runs of this structure fall back to "
                "sequential compiled simulation; see "
                "repro.dataflow.vector.why_not_vectorizable",
            )
