"""IR-layer lint passes (PV0xx).

These absorb the historical ``repro.ir.verify`` checks (structure, phis,
def-before-use, arrays, reachability), strengthen them with a dominance
check, and add memory-hygiene diagnostics that feed the PreVV story: a
store to a loop-invariant constant address conflicts with *every* access
of its array, and the loop-carried may-conflict summary is the linter's
view of the paper's Definition 1 pair set.
"""

from __future__ import annotations

from typing import Dict, Set

from ...ir.basicblock import BasicBlock
from ...ir.instructions import (
    Instruction,
    LoadInst,
    PhiInst,
    StoreInst,
)
from ...ir.loops import innermost_loop_of
from ...ir.values import Argument, ConstInt
from .registry import LintContext, LintPass, register_pass


def _loc(ctx: LintContext, block: BasicBlock, inst: Instruction = None) -> str:
    parts = [ctx.fn.name, block.name]
    if inst is not None:
        parts.append(inst.name)
    return ":".join(parts)


@register_pass
class CfgStructurePass(LintPass):
    """PV001-PV004: blocks exist, terminate once, and branch in-function."""

    name = "ir-cfg-structure"
    layer = "ir"
    codes = ("PV001", "PV002", "PV003", "PV004")
    requires = ("fn",)

    def run(self, ctx: LintContext) -> None:
        fn = ctx.fn
        if not fn.blocks:
            ctx.emit(
                "PV001",
                "function has no blocks",
                location=fn.name,
                hint="add an entry block before verifying or compiling",
            )
            return
        block_ids = {id(b) for b in fn.blocks}
        for block in fn.blocks:
            term = block.terminator
            if term is None:
                ctx.emit(
                    "PV002",
                    f"block {block.name}: missing terminator",
                    location=_loc(ctx, block),
                    hint="end the block with br/jmp/ret",
                )
            else:
                for succ in term.successors:
                    if id(succ) not in block_ids:
                        ctx.emit(
                            "PV004",
                            f"block {block.name}: successor {succ.name} "
                            "not in function",
                            location=_loc(ctx, block),
                            hint="add the block to the function before "
                            "branching to it",
                        )
            for i, inst in enumerate(block.instructions[:-1]):
                if inst.is_terminator:
                    ctx.emit(
                        "PV003",
                        f"block {block.name}: terminator not last "
                        f"(position {i})",
                        location=_loc(ctx, block, inst),
                        hint="move the terminator to the end of the block",
                    )


@register_pass
class PhiCoherencePass(LintPass):
    """PV005: phi incomings must match the block's predecessors exactly."""

    name = "ir-phi-coherence"
    layer = "ir"
    codes = ("PV005",)
    requires = ("fn",)

    def run(self, ctx: LintContext) -> None:
        fn = ctx.fn
        for block in fn.blocks:
            pred_ids = {id(p) for p in fn.predecessors(block)}
            for phi in block.phis:
                incoming_ids = {id(b) for b, _ in phi.incomings}
                if incoming_ids != pred_ids:
                    pred_names = sorted(
                        p.name for p in fn.predecessors(block)
                    )
                    inc_names = sorted(b.name for b, _ in phi.incomings)
                    ctx.emit(
                        "PV005",
                        f"phi {phi.name} in {block.name}: incomings "
                        f"{inc_names} != predecessors {pred_names}",
                        location=_loc(ctx, block, phi),
                        hint="add one incoming per predecessor edge",
                    )


@register_pass
class DefUsePass(LintPass):
    """PV006/PV007/PV010: operands defined, arrays declared, defs dominate uses."""

    name = "ir-def-use"
    layer = "ir"
    codes = ("PV006", "PV007", "PV010")
    requires = ("fn",)

    def run(self, ctx: LintContext) -> None:
        fn = ctx.fn
        if not fn.blocks:
            return
        defined: Set[int] = {id(a) for a in fn.args}
        position: Dict[int, int] = {}
        block_of: Dict[int, BasicBlock] = {}
        for block in fn.blocks:
            for phi in block.phis:
                defined.add(id(phi))
                block_of[id(phi)] = block
                position[id(phi)] = -1  # phis define at the block top
            for i, inst in enumerate(block.instructions):
                defined.add(id(inst))
                block_of[id(inst)] = block
                position[id(inst)] = i

        doms = ctx.doms
        reachable = {id(b) for b in fn.reachable_blocks()}

        for block in fn.blocks:
            for inst in block.all_instructions():
                for op in inst.operands:
                    if isinstance(op, ConstInt) or isinstance(op, Argument):
                        if isinstance(op, Argument) and op not in fn.args:
                            ctx.emit(
                                "PV006",
                                f"{block.name}/{inst.name}: operand "
                                f"{op.short()} is not defined in this "
                                "function",
                                location=_loc(ctx, block, inst),
                            )
                        continue
                    if id(op) not in defined:
                        ctx.emit(
                            "PV006",
                            f"{block.name}/{inst.name}: operand {op.short()} "
                            "is not defined in this function",
                            location=_loc(ctx, block, inst),
                            hint="every operand must be an argument, "
                            "constant, or instruction of this function",
                        )
                        continue
                    self._check_dominance(
                        ctx, block, inst, op, block_of, position, doms,
                        reachable,
                    )
                if isinstance(inst, (LoadInst, StoreInst)):
                    if inst.array.name not in fn.arrays:
                        ctx.emit(
                            "PV007",
                            f"{block.name}/{inst.name}: unknown array "
                            f"{inst.array.name!r}",
                            location=_loc(ctx, block, inst),
                            hint="declare the array on the function "
                            "before accessing it",
                        )

    def _check_dominance(
        self, ctx, block, inst, op, block_of, position, doms, reachable
    ) -> None:
        def_block = block_of.get(id(op))
        if def_block is None:
            return
        if id(block) not in reachable:
            return  # PV008 already covers the use site
        if isinstance(inst, PhiInst):
            # A phi reads its operand on the incoming edge: the def must
            # dominate (or live in) the matching predecessor block.
            for pred, value in inst.incomings:
                if value is not op:
                    continue
                if id(pred) not in reachable:
                    continue
                if def_block is pred or def_block in doms.get(pred, set()):
                    continue
                ctx.emit(
                    "PV010",
                    f"{block.name}/{inst.name}: incoming {op.short()} from "
                    f"{pred.name} is not dominated by its definition in "
                    f"{def_block.name}",
                    location=_loc(ctx, block, inst),
                    hint="route the value through a phi on every path",
                )
            return
        if def_block is block:
            if position[id(op)] >= position.get(id(inst), 0):
                ctx.emit(
                    "PV010",
                    f"{block.name}/{inst.name}: operand {op.short()} is "
                    "defined after its use in the same block",
                    location=_loc(ctx, block, inst),
                    hint="reorder the block so definitions precede uses",
                )
            return
        if def_block not in doms.get(block, set()):
            ctx.emit(
                "PV010",
                f"{block.name}/{inst.name}: use of {op.short()} is not "
                f"dominated by its definition in {def_block.name}",
                location=_loc(ctx, block, inst),
                hint="route the value through a phi on every path",
            )


@register_pass
class ReachabilityPass(LintPass):
    """PV008: every block must be reachable from the entry."""

    name = "ir-reachability"
    layer = "ir"
    codes = ("PV008",)
    requires = ("fn",)

    def run(self, ctx: LintContext) -> None:
        fn = ctx.fn
        if not fn.blocks:
            return
        reachable = {id(b) for b in fn.reachable_blocks()}
        for block in fn.blocks:
            if id(block) not in reachable:
                ctx.emit(
                    "PV008",
                    f"block {block.name}: unreachable from entry",
                    location=_loc(ctx, block),
                    hint="delete the block or branch to it",
                )


@register_pass
class MemoryHygienePass(LintPass):
    """PV009: a store to a constant address inside a loop.

    Every iteration rewrites the same cell, so the store forms an
    always-conflicting pair with every access of its array — the worst
    case for any ordering structure (LSQ or PreVV).
    """

    name = "ir-memory-hygiene"
    layer = "ir"
    codes = ("PV009",)
    requires = ("fn",)

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors:
            return
        from ..polyhedral import AffineAnalyzer

        fn = ctx.fn
        analyzer = AffineAnalyzer(fn)
        for block in fn.blocks:
            if innermost_loop_of(ctx.loops, block) is None:
                continue
            for inst in block.memory_ops():
                if not isinstance(inst, StoreInst):
                    continue
                expr = analyzer.analyze(inst.index)
                if expr is not None and expr.is_constant:
                    ctx.emit(
                        "PV009",
                        f"{block.name}/{inst.name}: store to constant "
                        f"address {expr.const} inside a loop",
                        location=_loc(ctx, block, inst),
                        hint="accumulate in a scalar and store once "
                        "after the loop",
                    )


@register_pass
class LoopCarriedDependencePass(LintPass):
    """PV011: summarize the may-conflict (Definition 1) pair set.

    Informational: this is what decides whether the kernel needs an LSQ
    or PreVV unit, surfaced per pair so a surprising entry can be traced
    back to its subscripts.
    """

    name = "ir-loop-carried-deps"
    layer = "ir"
    codes = ("PV011",)
    requires = ("fn",)

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors:
            return
        analysis = ctx.analysis
        if analysis is None:
            return
        for pair in analysis.pairs:
            block = pair.store.parent
            loop = innermost_loop_of(ctx.loops, block)
            where = f" in loop {loop.header.name}" if loop else ""
            ctx.emit(
                "PV011",
                f"ambiguous pair Am{{{pair.load.name}, {pair.store.name}}} "
                f"on array {pair.array!r}{where}",
                location=_loc(ctx, block, pair.store),
                hint="ordered by LSQ or PreVV depending on memory_style",
            )
