"""PVSan sanitize-layer lint passes (PV3xx, static side).

Three passes over the dependence prover of
:mod:`repro.analysis.sanitizer.prover`:

* :class:`DependenceProverPass` — runs the prover and reports each
  ambiguous pair's lattice point: PV301 (proven independent — the PreVV
  entry is wasted hardware), PV302 (bounded distance — a premature-queue
  depth tighter than the Eq. 6-10 sizing suffices), PV303 (unknown — the
  arbiter really is needed).  All advisory (INFO).
* :class:`ProverSoundnessPass` — PV304: re-derives the pair set from
  :mod:`repro.analysis.ambiguous_pairs` and checks every independence or
  distance claim against the interpreter's dynamic memory trace.  A
  contradicted claim is a prover bug and an error: acting on it would
  drop real ordering hardware.
* :class:`PairCoveragePass` — PV307: the dimension-reduced groups the
  circuit was *built* with must cover exactly the independently derived
  pair set — no pair outside any group (a missed hazard) and no group
  fusing operations that share no overlap chain (reduction applied to a
  non-overlapped pair masks per-pair validation, Sec. V-B).

The dynamic PV305/306/308 checks live in the SC oracle
(:mod:`repro.analysis.sanitizer.oracle`), not in a lint pass: they need
a cycle-level simulation run.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..ambiguous_pairs import analyze_function
from ..reduction import reduce_pairs
from ..sizing import (
    DEFAULT_P_SQUASH,
    DEFAULT_T_ORG,
    DEFAULT_T_TOKEN,
    suggest_depth,
)
from .registry import LintContext, LintPass, register_pass


def _pair_location(ctx: LintContext, pair) -> str:
    return f"{ctx.fn.name}:{pair.array}:Am{{{pair.load.name},{pair.store.name}}}"


def _proofs(ctx: LintContext):
    """Prover results, computed once per lint run and cached on the ctx."""
    if "pvsan_proofs" not in ctx.cache:
        from ..sanitizer.prover import DependenceProver

        args = dict(ctx.kernel.args) if ctx.kernel is not None else {}
        prover = DependenceProver(ctx.fn, args)
        ctx.cache["pvsan_proofs"] = prover.prove_all()
    return ctx.cache["pvsan_proofs"]


@register_pass
class DependenceProverPass(LintPass):
    """PV301/PV302/PV303: lattice classification of every ambiguous pair."""

    name = "sanitize-dependence-prover"
    layer = "sanitize"
    codes = ("PV301", "PV302", "PV303")
    requires = ("fn",)

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors:
            return
        from ..sanitizer.prover import PairClass

        eq_bound = suggest_depth(DEFAULT_T_ORG, DEFAULT_P_SQUASH, DEFAULT_T_TOKEN)
        for proof in _proofs(ctx):
            loc = _pair_location(ctx, proof.pair)
            if proof.classification is PairClass.PROVEN_INDEPENDENT:
                ctx.emit(
                    "PV301",
                    f"pair {proof.pair!r} can never alias ({proof.reason})",
                    location=loc,
                    hint="drop the pair from the PreVV group; its queue "
                    "entries and validation slots are dead hardware",
                )
            elif proof.classification is PairClass.BOUNDED_DISTANCE:
                ctx.emit(
                    "PV302",
                    f"pair {proof.pair!r} aliases only at activation "
                    f"distance {proof.distance}; depth "
                    f"{proof.depth_bound} suffices ({proof.reason})",
                    location=loc,
                    hint=f"prevv_depth={proof.depth_bound} is sufficient "
                    f"for this group (Eqs. 6-10 suggest {eq_bound})",
                )
            else:
                ctx.emit(
                    "PV303",
                    f"pair {proof.pair!r} stays unproven ({proof.reason})",
                    location=loc,
                    hint="value-based arbitration is required at runtime",
                )


@register_pass
class ProverSoundnessPass(LintPass):
    """PV304: every prover claim must survive the interpreter trace.

    The trace is a *witness generator*: one execution with the kernel's
    concrete arguments.  Any aliasing it exhibits that a claim rules out
    disproves the claim outright (the prover reasons over exactly these
    argument bindings).
    """

    name = "sanitize-prover-soundness"
    layer = "sanitize"
    codes = ("PV304",)
    requires = ("fn", "kernel")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors:
            return
        from ..sanitizer.prover import PairClass

        # Re-derive pairs independently instead of trusting the prover's
        # own analysis object.
        fresh = {
            (p.load.name, p.store.name, p.array)
            for p in analyze_function(ctx.fn).pairs
        }
        trace = ctx.golden.trace
        for proof in _proofs(ctx):
            pair = proof.pair
            key = (pair.load.name, pair.store.name, pair.array)
            if key not in fresh:
                ctx.emit(
                    "PV304",
                    f"prover examined pair {pair!r} that the dependence "
                    "analysis does not derive",
                    location=_pair_location(ctx, pair),
                    hint="stale MemoryAnalysis fed to the prover",
                )
                continue
            if proof.classification is PairClass.UNKNOWN:
                continue
            load_events = trace.for_inst(pair.load)
            store_events = trace.for_inst(pair.store)
            store_indices: Dict[int, List[int]] = {}
            for ev in store_events:
                store_indices.setdefault(ev.index, []).append(ev.iteration)
            for ev in load_events:
                hits = store_indices.get(ev.index)
                if not hits:
                    continue
                if proof.classification is PairClass.PROVEN_INDEPENDENT:
                    ctx.emit(
                        "PV304",
                        f"pair {pair!r} claimed proven-independent but the "
                        f"trace aliases at index {ev.index}",
                        location=_pair_location(ctx, pair),
                        hint=f"prover reason was: {proof.reason}",
                    )
                    break
                worst = max(abs(it - ev.iteration) for it in hits)
                if worst > proof.distance:
                    ctx.emit(
                        "PV304",
                        f"pair {pair!r} claimed distance <= "
                        f"{proof.distance} but the trace aliases at "
                        f"index {ev.index} across {worst} activations",
                        location=_pair_location(ctx, pair),
                        hint=f"prover reason was: {proof.reason}",
                    )
                    break


@register_pass
class PairCoveragePass(LintPass):
    """PV307: built groups must cover exactly the derived pair set."""

    name = "sanitize-pair-coverage"
    layer = "sanitize"
    codes = ("PV307",)
    requires = ("fn", "build", "config")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors or ctx.config.memory_style != "prevv":
            return
        reference = reduce_pairs(analyze_function(ctx.fn))
        ref_groups: Set[Tuple[str, FrozenSet[str]]] = {
            (
                g.array,
                frozenset(op.name for op in g.loads)
                | frozenset(op.name for op in g.stores),
            )
            for g in reference
        }
        built_groups: Set[Tuple[str, FrozenSet[str]]] = {
            (
                g.array,
                frozenset(op.name for op in g.loads)
                | frozenset(op.name for op in g.stores),
            )
            for g in ctx.build.groups
        }
        for array, ops in sorted(ref_groups - built_groups):
            ctx.emit(
                "PV307",
                f"reduced group {{{', '.join(sorted(ops))}}}@{array} from "
                "the dependence analysis has no matching built group",
                location=f"circuit:{array}",
                hint="a dropped member leaves its pair unvalidated; a "
                "merged non-overlapped group masks per-pair validation "
                "behind one representative (Sec. V-B)",
            )
        for array, ops in sorted(built_groups - ref_groups):
            ctx.emit(
                "PV307",
                f"built group {{{', '.join(sorted(ops))}}}@{array} does "
                "not match any group of the dependence analysis",
                location=f"circuit:{array}",
                hint="dimension reduction must collapse exactly the "
                "overlap-connected components, nothing more",
            )
