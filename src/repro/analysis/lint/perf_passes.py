"""PVPerf perf-layer lint passes (PV4xx).

Four passes over the static throughput prover of
:mod:`repro.analysis.perf`:

* :class:`CriticalCyclePass` — PV401: the ratio graph's binding cycle
  forces II > 1.  Every extra buffer slot on the cycle lowers the bound
  (``L / (C+1) < L / C``), so the finding names the cycle's channels and
  the shallowest storage on it.
* :class:`ValidationBandwidthPass` — PV402: a PreVV unit must validate
  more unconditional member operations per iteration of some loop than
  its arbiter bandwidth admits per cycle, forcing ``II > 1`` on that
  loop regardless of how the netlist is buffered.
* :class:`QueuePressurePass` — PV403: PVSan's dependence prover bounds a
  pair's aliasing distance, and the premature queue is shallower than
  the ``next_pow2(n_ops * distance)`` window known sufficient — the
  queue fills and stalls the arbiter before the window closes.
* :class:`DivergencePass` — PV404: only with a supplied measurement
  (``ctx.measured``); every static bound must stay at or below its
  measured counterpart (:func:`repro.analysis.perf.measure.compare`).
  A violation is a soundness bug in the *model*, hence an error.

All static findings are advisory (WARNING) — they rank configurations,
they do not block a build.  PV404 is the exception: an unsound bound
poisons every consumer of :func:`repro.analysis.perf.predict.predict`.
"""

from __future__ import annotations

from .registry import LintContext, LintPass, register_pass


def _prediction(ctx: LintContext):
    """PerfPrediction, computed once per lint run and cached on the ctx."""
    if "perf_prediction" not in ctx.cache:
        from ..perf import predict

        args = dict(ctx.kernel.args) if ctx.kernel is not None else {}
        ctx.cache["perf_prediction"] = predict(ctx.build, ctx.fn, args)
    return ctx.cache["perf_prediction"]


@register_pass
class CriticalCyclePass(LintPass):
    """PV401: the binding cycle's latency/capacity ratio exceeds 1."""

    name = "perf-critical-cycle"
    layer = "perf"
    codes = ("PV401",)
    requires = ("fn", "build")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors:
            return
        pred = _prediction(ctx)
        cycle = pred.cycle
        if cycle is None or cycle.is_combinational:
            return  # acyclic constraint set, or PV103's territory
        if cycle.ratio <= 1:
            return
        channels = pred.graph.cycle_channels(cycle)
        shallowest = min(
            (pred.graph.edges[i] for i in cycle.edges),
            key=lambda e: (e.capacity, e.latency),
        )
        ctx.emit(
            "PV401",
            f"critical cycle sustains at best one token every "
            f"{cycle.ratio} cycles (latency {cycle.latency}, capacity "
            f"{cycle.capacity}) through {len(channels)} channels: "
            f"{' -> '.join(ch.name for ch in channels[:4])}"
            + (" -> ..." if len(channels) > 4 else ""),
            location=f"circuit:{channels[0].name}",
            hint=f"every added slot lowers the bound; the shallowest "
            f"storage on the cycle is {shallowest.tag!r} "
            f"(capacity {shallowest.capacity})",
        )


@register_pass
class ValidationBandwidthPass(LintPass):
    """PV402: arbiter bandwidth forces II > 1 on some loop."""

    name = "perf-validation-bandwidth"
    layer = "perf"
    codes = ("PV402",)
    requires = ("fn", "build")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors or not ctx.build.units:
            return
        for vp in _prediction(ctx).validation:
            if vp.bound <= 1:
                continue
            ctx.emit(
                "PV402",
                f"unit {vp.unit} validates {vp.n_real_ops} unconditional "
                f"member op(s) per iteration of loop {vp.loop} at "
                f"{vp.validations_per_cycle}/cycle: II >= {vp.bound}",
                location=f"circuit:{vp.unit}:{vp.loop}",
                hint="raise prevv_validations_per_cycle or split the "
                "group; no buffering can recover the lost bandwidth",
            )


@register_pass
class QueuePressurePass(LintPass):
    """PV403: premature queue shallower than the proven distance window."""

    name = "perf-queue-pressure"
    layer = "perf"
    codes = ("PV403",)
    requires = ("fn", "build")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors or not ctx.build.units:
            return
        for qp in _prediction(ctx).queues:
            if not qp.undersized:
                continue
            ctx.emit(
                "PV403",
                f"unit {qp.unit} holds a depth-{qp.queue_depth} premature "
                f"queue but the prover's distance window needs "
                f"{qp.required_depth} entries",
                location=f"circuit:{qp.unit}",
                hint=f"prevv_depth={qp.required_depth} removes the "
                "full-queue stalls (and the replay pressure they cause) "
                "for this group",
            )


@register_pass
class DivergencePass(LintPass):
    """PV404: a static lower bound exceeded its measured counterpart."""

    name = "perf-divergence"
    layer = "perf"
    codes = ("PV404",)
    requires = ("fn", "build", "measured")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors:
            return
        from ..perf import compare

        for rec in compare(_prediction(ctx), ctx.measured):
            if rec.ok:
                continue
            margin = rec.static - rec.measured
            ctx.emit(
                "PV404",
                f"{rec.kind} bound claims >= {rec.static} but the run "
                f"measured {rec.measured} ({rec.note}; overshoot "
                f"{margin})",
                location=f"measured:{rec.subject}",
                hint="the static model over-stated a latency or "
                "under-stated a capacity; fix the perf_model, never "
                "the measurement",
            )
