"""PVBound occupancy-layer lint passes (PV5xx).

Three passes over the static occupancy prover of
:mod:`repro.analysis.occupancy`:

* :class:`OccupancyBoundsPass` — PV501 when a place's derived occupancy
  bound exceeds its structural capacity (the model says the hardware
  can be asked to hold more than it has room for), and PV502 when a
  premature queue's policy-model bound reaches past its physical slack
  (the :class:`~repro.errors.QueueOverflowError` crash class is
  statically reachable).
* :class:`OccupancyLivenessPass` — PV503 when the acceptance-policy
  transition model contains a retirement-stall cycle: an accepted
  premature entry that no transition can ever retire or squash.
* :class:`OccupancyDivergencePass` — PV504, only with a supplied
  :class:`~repro.analysis.occupancy.measure.OccupancyMeasurement`:
  every measured peak must stay at or below its static bound (and
  every observed physical overflow inside the predicted-overflow set).
  A violation is a soundness bug in the *transfer function*, hence an
  error — same contract as PV404.  Measured capacity violations also
  surface here as PV501: the place model claimed room the run disproved.

The static passes are errors, not warnings: an overflow-reachable or
stall-prone circuit crashes or hangs, it does not merely run slowly.
"""

from __future__ import annotations

from .registry import LintContext, LintPass, register_pass


def _prediction(ctx: LintContext):
    """OccupancyPrediction, computed once per run and cached on the ctx."""
    if "occupancy_prediction" not in ctx.cache:
        from ..occupancy import analyze_build

        args = dict(ctx.kernel.args) if ctx.kernel is not None else {}
        ctx.cache["occupancy_prediction"] = analyze_build(
            ctx.build, ctx.fn, args
        )
    return ctx.cache["occupancy_prediction"]


@register_pass
class OccupancyBoundsPass(LintPass):
    """PV501/PV502: a derived bound exceeds a capacity or the slack."""

    name = "occupancy-bounds"
    layer = "occupancy"
    codes = ("PV501", "PV502")
    requires = ("fn", "build")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors:
            return
        pred = _prediction(ctx)
        for name in sorted(pred.bounds):
            place = pred.graph.places[name]
            bound = pred.bounds[name]
            if place.kind == "queue":
                continue  # the policy model's claims speak below
            if place.capacity is None:
                continue
            if bound is None or bound > place.capacity:
                claim = "no finite bound" if bound is None else f"bound {bound}"
                ctx.emit(
                    "PV501",
                    f"{place.kind} {name} holds {place.capacity} token(s) "
                    f"but the flow model derives {claim}",
                    location=f"circuit:{place.subject}",
                    hint="the producer is not backpressured by this place "
                    "in the model; check the place graph's capacities "
                    "against perf_model",
                )
        for claim in pred.claims:
            if not claim.overflow_reachable:
                continue
            bound = (
                "no finite bound"
                if claim.bound is None
                else f"occupancy {claim.bound}"
            )
            ctx.emit(
                "PV502",
                f"unit {claim.unit}: {bound} reachable but the premature "
                f"queue holds {claim.physical_depth} physical slot(s) "
                f"(architectural depth {claim.depth}) — {claim.detail}",
                location=f"circuit:{claim.unit}",
                hint="a full-queue escape admission is not bounded by the "
                "physical slack; gate every escape on a physical-slot "
                "reservation",
            )


@register_pass
class OccupancyLivenessPass(LintPass):
    """PV503: the abstract transition graph has a retirement-stall cycle."""

    name = "occupancy-liveness"
    layer = "occupancy"
    codes = ("PV503",)
    requires = ("fn", "build")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors or not ctx.build.units:
            return
        for stall in _prediction(ctx).stalls:
            ctx.emit(
                "PV503",
                f"unit {stall.unit}: {stall.detail}",
                location=f"circuit:{stall.unit}",
                hint="retirement must make progress under every blocked "
                "head; release the version bound (or stall premature "
                "acceptance) on cross-phase handoff",
            )


@register_pass
class OccupancyDivergencePass(LintPass):
    """PV504: a measured peak escaped its static occupancy bound."""

    name = "occupancy-divergence"
    layer = "occupancy"
    codes = ("PV501", "PV504")
    requires = ("fn", "build", "occupancy_measured")

    def run(self, ctx: LintContext) -> None:
        if ctx.has_ir_errors:
            return
        from ..occupancy import compare

        for rec in compare(_prediction(ctx), ctx.occupancy_measured):
            if rec.ok:
                continue
            if rec.kind == "capacity":
                ctx.emit(
                    "PV501",
                    f"place {rec.subject} claims capacity {rec.static} but "
                    f"the run held {rec.measured} token(s) simultaneously",
                    location=f"measured:{rec.subject}",
                    hint="the hardware model under-states this place's "
                    "storage; fix the place graph, never the measurement",
                )
                continue
            claim = (
                f"bound {rec.static}"
                if rec.static is not None
                else "an overflow-free run"
            )
            measured = (
                f"peak {rec.measured}"
                if rec.kind == "bound"
                else "a physical overflow"
            )
            ctx.emit(
                "PV504",
                f"{rec.subject}: static model claims {claim} but the run "
                f"measured {measured} ({rec.note})",
                location=f"measured:{rec.subject}",
                hint="the occupancy transfer function missed a transition "
                "(phase handoff?); fix the model, never the measurement",
            )
