"""Pluggable static analyzer for the PreVV flow.

Three layers of lint passes over the compilation pipeline — IR
well-formedness (``PV0xx``), circuit-graph structure including the
deadlock detector (``PV1xx``), and PreVV configuration audits
(``PV2xx``) — sharing one :class:`Diagnostic` model and pass registry.

Run it from the command line::

    python -m repro.lint <kernel> [--config prevv] [--depth 16]

or programmatically via :func:`lint_ir` / :func:`lint_circuit` /
:func:`lint_build` / :func:`lint_kernel`.
"""

from .diagnostics import (
    CODES,
    Diagnostic,
    LintReport,
    Severity,
    make_diagnostic,
)
from .driver import lint_build, lint_circuit, lint_ir, lint_kernel, run_passes
from .registry import (
    LAYERS,
    LintContext,
    LintPass,
    all_passes,
    passes_for_layer,
    register_pass,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "Severity",
    "make_diagnostic",
    "LAYERS",
    "LintContext",
    "LintPass",
    "all_passes",
    "passes_for_layer",
    "register_pass",
    "lint_build",
    "lint_circuit",
    "lint_ir",
    "lint_kernel",
    "run_passes",
]
