"""Command-line front end: ``python -m repro.lint <kernel> [options]``.

Runs the full four-layer analysis over one registered kernel (or every
kernel with ``all``) under a chosen hardware configuration and prints
the report.  With ``--sanitize`` it additionally simulates the kernel
under the PVSan sequential-consistency oracle and merges the dynamic
findings into the same report.

Exit codes (stable; CI keys off them):

* ``0`` — clean: no diagnostic at warning severity or above;
* ``1`` — at least one error-severity diagnostic, or the invocation
  itself failed (unknown kernel, bad arguments);
* ``2`` — warnings only: something deserves a look, nothing is wrong
  enough to block.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ...config import MEMORY_STYLES, HardwareConfig
from ...kernels import kernel_names
from .diagnostics import CODES, LintReport, Severity
from .driver import lint_kernel
from .registry import all_passes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analyzer for PreVV dataflow kernels: IR "
        "well-formedness, circuit deadlock/token checks, PreVV "
        "configuration audits and the PVSan disambiguation prover. "
        "Exits 0 when clean, 1 on errors, 2 on warnings only.",
    )
    parser.add_argument(
        "kernel",
        nargs="?",
        help="registered kernel name, or 'all' for every kernel "
        f"(known: {', '.join(kernel_names())})",
    )
    parser.add_argument(
        "--config",
        dest="style",
        default="prevv",
        choices=MEMORY_STYLES,
        help="memory style to compile under (default: prevv)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        help="premature-queue depth override (default: config default)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="also simulate under the PVSan sequential-consistency "
        "oracle and merge its findings into the report",
    )
    parser.add_argument(
        "--max-cycles",
        type=int,
        default=2_000_000,
        help="simulation budget for --sanitize (default: 2000000)",
    )
    parser.add_argument(
        "--min-severity",
        default="info",
        choices=[s.value for s in Severity],
        help="hide diagnostics below this severity (default: info)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=("text", "json"),
        help="output format: human-readable text, or JSON Lines with "
        "one diagnostic object per line (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report(s) as one JSON document "
        "(legacy; prefer --format json)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print the diagnostic code table and exit",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the registered lint passes and exit",
    )
    return parser


def _list_codes() -> str:
    lines = ["code   severity  title"]
    for code, (severity, title) in sorted(CODES.items()):
        lines.append(f"{code}  {severity.value:<8}  {title}")
    return "\n".join(lines)


def _list_passes() -> str:
    lines = ["layer     pass                          codes"]
    for pass_cls in all_passes():
        codes = ", ".join(pass_cls.codes)
        lines.append(f"{pass_cls.layer:<8}  {pass_cls.name:<28}  {codes}")
    return "\n".join(lines)


def _exit_code(reports: List[LintReport]) -> int:
    """0 clean / 1 errors / 2 warnings-only, over all reports."""
    if any(report.errors for report in reports):
        return 1
    if any(report.warnings for report in reports):
        return 2
    return 0


def _emit_jsonl(
    reports: List[LintReport], min_severity: Severity
) -> None:
    """One JSON object per diagnostic — greppable, CI-artifact friendly."""
    for report in reports:
        for diag in report.diagnostics:
            if diag.severity < min_severity:
                continue
            record = {"subject": report.subject}
            record.update(diag.to_dict())
            print(json.dumps(record, sort_keys=True))


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    ns = parser.parse_args(argv)
    if ns.list_codes:
        print(_list_codes())
        return 0
    if ns.list_passes:
        print(_list_passes())
        return 0
    if ns.kernel is None:
        parser.error("a kernel name (or 'all') is required")

    overrides = {"memory_style": ns.style}
    if ns.depth is not None:
        overrides["prevv_depth"] = ns.depth
    config = HardwareConfig(**overrides)
    names = kernel_names() if ns.kernel == "all" else [ns.kernel]
    min_severity = Severity.parse(ns.min_severity)

    reports = []
    for name in names:
        try:
            report = lint_kernel(name, config)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        if ns.sanitize and report.ok:
            # lint_kernel already ran the static sanitize layer; append
            # only the dynamic oracle findings to the same report.
            from ...kernels import get_kernel
            from ..sanitizer import sanitize_run

            sanitize_run(
                get_kernel(name),
                config,
                max_cycles=ns.max_cycles,
                report=report,
                static=False,
            )
        reports.append(report)

    if ns.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    elif ns.fmt == "json":
        _emit_jsonl(reports, min_severity)
    else:
        for report in reports:
            print(report.format(min_severity=min_severity))
    return _exit_code(reports)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
