"""Command-line front end: ``python -m repro.lint <kernel> [options]``.

Runs the full three-layer analysis over one registered kernel (or every
kernel with ``all``) under a chosen hardware configuration, prints the
report and exits non-zero when any error-severity diagnostic fired — so
the linter slots directly into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ...config import MEMORY_STYLES, HardwareConfig
from ...kernels import kernel_names
from .diagnostics import CODES, Severity
from .driver import lint_kernel
from .registry import all_passes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analyzer for PreVV dataflow kernels: IR "
        "well-formedness, circuit deadlock/token checks and PreVV "
        "configuration audits.",
    )
    parser.add_argument(
        "kernel",
        nargs="?",
        help="registered kernel name, or 'all' for every kernel "
        f"(known: {', '.join(kernel_names())})",
    )
    parser.add_argument(
        "--config",
        dest="style",
        default="prevv",
        choices=MEMORY_STYLES,
        help="memory style to compile under (default: prevv)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        help="premature-queue depth override (default: config default)",
    )
    parser.add_argument(
        "--min-severity",
        default="info",
        choices=[s.value for s in Severity],
        help="hide diagnostics below this severity (default: info)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report(s) as JSON instead of text",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print the diagnostic code table and exit",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the registered lint passes and exit",
    )
    return parser


def _list_codes() -> str:
    lines = ["code   severity  title"]
    for code, (severity, title) in sorted(CODES.items()):
        lines.append(f"{code}  {severity.value:<8}  {title}")
    return "\n".join(lines)


def _list_passes() -> str:
    lines = ["layer    pass                        codes"]
    for pass_cls in all_passes():
        codes = ", ".join(pass_cls.codes)
        lines.append(f"{pass_cls.layer:<7}  {pass_cls.name:<26}  {codes}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    ns = parser.parse_args(argv)
    if ns.list_codes:
        print(_list_codes())
        return 0
    if ns.list_passes:
        print(_list_passes())
        return 0
    if ns.kernel is None:
        parser.error("a kernel name (or 'all') is required")

    overrides = {"memory_style": ns.style}
    if ns.depth is not None:
        overrides["prevv_depth"] = ns.depth
    config = HardwareConfig(**overrides)
    names = kernel_names() if ns.kernel == "all" else [ns.kernel]
    min_severity = Severity.parse(ns.min_severity)

    reports = []
    for name in names:
        try:
            reports.append(lint_kernel(name, config))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    if ns.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.format(min_severity=min_severity))
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
