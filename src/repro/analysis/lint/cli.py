"""Command-line front end: ``python -m repro.lint <kernel> [options]``.

Runs the full six-layer analysis over one registered kernel (or every
kernel with ``all``) under a chosen hardware configuration and prints
the report.  With ``--sanitize`` it additionally simulates the kernel
under the PVSan sequential-consistency oracle and merges the dynamic
findings into the same report; with ``--perf`` it simulates the kernel
once and arms the PV404 static-vs-measured divergence check of the
PVPerf layer; with ``--occupancy`` it simulates once more under the
peak-occupancy sampler and arms the PV504 divergence check of the
PVBound layer.  ``--layer`` restricts the run to named layers (for
example ``--layer occupancy``).

Exit codes (stable; CI keys off them):

* ``0`` — clean: no diagnostic at warning severity or above;
* ``1`` — at least one error-severity diagnostic, or the invocation
  itself failed (unknown kernel, bad arguments);
* ``2`` — warnings only: something deserves a look, nothing is wrong
  enough to block.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ...config import MEMORY_STYLES, HardwareConfig
from ...kernels import kernel_names
from .diagnostics import CODES, LintReport, Severity
from .driver import lint_kernel
from .registry import LAYERS, all_passes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Static analyzer for PreVV dataflow kernels: IR "
        "well-formedness, circuit deadlock/token checks, PreVV "
        "configuration audits and the PVSan disambiguation prover. "
        "Exits 0 when clean, 1 on errors, 2 on warnings only.",
    )
    parser.add_argument(
        "kernel",
        nargs="?",
        help="registered kernel name, or 'all' for every kernel "
        f"(known: {', '.join(kernel_names())})",
    )
    parser.add_argument(
        "--config",
        dest="style",
        default="prevv",
        choices=MEMORY_STYLES,
        help="memory style to compile under (default: prevv)",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=None,
        help="premature-queue depth override (default: config default)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="also simulate under the PVSan sequential-consistency "
        "oracle and merge its findings into the report",
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help="also simulate the kernel, pair the PVPerf static bounds "
        "with their measured counterparts and arm the PV404 "
        "divergence check",
    )
    parser.add_argument(
        "--occupancy",
        action="store_true",
        help="also simulate the kernel under the peak-occupancy "
        "sampler, pair the PVBound static bounds with the measured "
        "peaks and arm the PV504 divergence check",
    )
    parser.add_argument(
        "--layer",
        dest="layers",
        action="append",
        metavar="NAME",
        help="run only the named lint layer (repeatable; default: all "
        f"layers — {', '.join(LAYERS)})",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print per-pass wall times after each text report "
        "(always present in --json output)",
    )
    parser.add_argument(
        "--max-cycles",
        type=int,
        default=2_000_000,
        help="simulation budget for --sanitize (default: 2000000)",
    )
    parser.add_argument(
        "--min-severity",
        default="info",
        choices=[s.value for s in Severity],
        help="hide diagnostics below this severity (default: info)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=("text", "json"),
        help="output format: human-readable text, or JSON Lines with "
        "one diagnostic object per line (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report(s) as one JSON document "
        "(legacy; prefer --format json)",
    )
    parser.add_argument(
        "--list-codes",
        action="store_true",
        help="print the diagnostic code table and exit",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="print the registered lint passes and exit",
    )
    parser.add_argument(
        "--list",
        dest="list_all",
        action="store_true",
        help="enumerate every registered pass (name, layer, worst "
        "severity, one-line doc) and exit",
    )
    return parser


def _list_codes() -> str:
    lines = ["code   severity  title"]
    for code, (severity, title) in sorted(CODES.items()):
        lines.append(f"{code}  {severity.value:<8}  {title}")
    return "\n".join(lines)


def _list_passes() -> str:
    lines = ["layer     pass                          codes"]
    for pass_cls in all_passes():
        codes = ", ".join(pass_cls.codes)
        lines.append(f"{pass_cls.layer:<8}  {pass_cls.name:<28}  {codes}")
    return "\n".join(lines)


def _pass_doc(pass_cls) -> str:
    """First line of the pass docstring, stripped of trailing period."""
    doc = (pass_cls.__doc__ or "").strip().splitlines()
    return doc[0].rstrip(".") if doc else ""


def _pass_severity(pass_cls) -> Severity:
    """Worst default severity among the codes a pass may emit."""
    return max(CODES[code][0] for code in pass_cls.codes)


def _list_all() -> str:
    """Full pass inventory: name, layer, worst severity, one-line doc.

    Sorted by (layer order, name) so the listing is stable however the
    pass modules happened to register.
    """
    order = {layer: i for i, layer in enumerate(LAYERS)}
    lines = ["pass                            layer     severity  summary"]
    for pass_cls in sorted(
        all_passes(), key=lambda p: (order[p.layer], p.name)
    ):
        lines.append(
            f"{pass_cls.name:<30}  {pass_cls.layer:<8}  "
            f"{_pass_severity(pass_cls).value:<8}  {_pass_doc(pass_cls)}"
        )
    return "\n".join(lines)


def _exit_code(reports: List[LintReport]) -> int:
    """0 clean / 1 errors / 2 warnings-only, over all reports."""
    if any(report.errors for report in reports):
        return 1
    if any(report.warnings for report in reports):
        return 2
    return 0


def _emit_jsonl(
    reports: List[LintReport],
    min_severity: Severity,
    armed_layers: Optional[List[str]] = None,
) -> None:
    """One JSON object per diagnostic — greppable, CI-artifact friendly.

    The first line is a run-metadata object carrying the armed-layer
    set (``{"meta": "lint-run", "armed_layers": [...]}``), so a
    consumer can tell "no PV5xx findings" apart from "occupancy layer
    never ran".  Diagnostic records follow, sorted by (subject, code,
    location, message, pass) so two runs over the same kernels diff
    cleanly even if pass execution order ever changes.
    """
    if armed_layers is not None:
        print(json.dumps(
            {"meta": "lint-run", "armed_layers": list(armed_layers)},
            sort_keys=True,
        ))
    records = []
    for report in reports:
        for diag in report.diagnostics:
            if diag.severity < min_severity:
                continue
            record = {"subject": report.subject}
            record.update(diag.to_dict())
            records.append(record)
    records.sort(
        key=lambda r: (
            r["subject"], r["code"], r["location"], r["message"], r["pass"]
        )
    )
    for record in records:
        print(json.dumps(record, sort_keys=True))


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    ns = parser.parse_args(argv)
    if ns.list_codes:
        print(_list_codes())
        return 0
    if ns.list_passes:
        print(_list_passes())
        return 0
    if ns.list_all:
        print(_list_all())
        return 0
    if ns.kernel is None:
        parser.error("a kernel name (or 'all') is required")

    overrides = {"memory_style": ns.style}
    if ns.depth is not None:
        overrides["prevv_depth"] = ns.depth
    config = HardwareConfig(**overrides)
    names = kernel_names() if ns.kernel == "all" else [ns.kernel]
    min_severity = Severity.parse(ns.min_severity)
    layers = None
    if ns.layers:
        for layer in ns.layers:
            if layer not in LAYERS:
                parser.error(
                    f"unknown lint layer {layer!r}; choose from "
                    f"{', '.join(LAYERS)}"
                )
        # keep driver order, drop duplicates
        layers = [l for l in LAYERS if l in ns.layers]

    reports = []
    for name in names:
        measured = None
        if ns.perf:
            from ..perf import measure_kernel

            try:
                _, measured = measure_kernel(
                    name, config, max_cycles=ns.max_cycles
                )
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 1
        kwargs = {"measured": measured}
        if ns.occupancy:
            from ..occupancy import measure_kernel as measure_occupancy

            try:
                _, kwargs["occupancy_measured"] = measure_occupancy(
                    name, config, max_cycles=ns.max_cycles
                )
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return 1
        if layers is not None:
            kwargs["layers"] = layers
        try:
            report = lint_kernel(name, config, **kwargs)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 1
        if ns.sanitize and report.ok:
            # lint_kernel already ran the static sanitize layer; append
            # only the dynamic oracle findings to the same report.
            from ...kernels import get_kernel
            from ..sanitizer import sanitize_run

            sanitize_run(
                get_kernel(name),
                config,
                max_cycles=ns.max_cycles,
                report=report,
                static=False,
            )
        reports.append(report)

    if ns.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    elif ns.fmt == "json":
        _emit_jsonl(
            reports, min_severity,
            armed_layers=list(layers) if layers is not None else list(LAYERS),
        )
    else:
        for report in reports:
            print(report.format(min_severity=min_severity))
            if ns.timings:
                print(report.format_timings())
    return _exit_code(reports)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
