"""Memory-dependence analysis: the reproduction's polyhedral front end.

Finds the paper's *ambiguous pairs* (Definition 1), reduces overlapped
pairs to shared validation groups (Sec. V-B), and models the premature
queue depth (Sec. V-A, Eqs. 6-10).
"""

from .polyhedral import (
    AffineAnalyzer,
    AffineExpr,
    Dependence,
    classify_dependence,
)
from .ambiguous_pairs import (
    AmbiguousPair,
    MemoryAnalysis,
    analyze_function,
    classify_with_loops,
)
from .reduction import (
    PreVVGroup,
    max_pairs_per_op,
    naive_complexity,
    naive_frequency,
    reduce_pairs,
    reduced_complexity,
)
from .sizing import (
    DEFAULT_P_SQUASH,
    DEFAULT_T_ORG,
    DEFAULT_T_TOKEN,
    independent_pairs,
    is_matched,
    matched_depth,
    pair_distance,
    pair_execution_time,
    pair_span,
    suggest_depth,
    waiting_time,
)

__all__ = [
    "AffineAnalyzer",
    "AffineExpr",
    "Dependence",
    "classify_dependence",
    "AmbiguousPair",
    "MemoryAnalysis",
    "analyze_function",
    "classify_with_loops",
    "PreVVGroup",
    "max_pairs_per_op",
    "naive_complexity",
    "naive_frequency",
    "reduce_pairs",
    "reduced_complexity",
    "DEFAULT_P_SQUASH",
    "DEFAULT_T_ORG",
    "DEFAULT_T_TOKEN",
    "independent_pairs",
    "is_matched",
    "matched_depth",
    "pair_distance",
    "pair_execution_time",
    "pair_span",
    "suggest_depth",
    "waiting_time",
]
