"""Affine access analysis and dependence testing.

This is the reproduction's stand-in for the Polly polyhedral analysis the
paper invokes ("Using Polyhedral analysis, we can easily find the
ambiguous pairs", Sec. V-A).  For each load/store index expression we try
to derive an affine form over the loop induction variables::

    index = sum(coeff_k * iv_k) + sum(scoeff_j * sym_j) + const

where ``iv_k`` are loop-header phis and ``sym_j`` are function arguments
(runtime-constant unknowns).  Expressions that read memory or mix
non-linear terms — the ``f(x)``/``g(x)`` subscripts of Fig. 2(b) — are
*non-affine* and force a conservative may-conflict answer.

Dependence classification between two accesses of the same array:

* ``INDEPENDENT`` — a GCD test proves the subscript equation has no
  solution (accesses can never touch the same element);
* ``SAME_ITERATION`` — solutions exist only when both accesses are in the
  same loop iteration (intra-iteration ordering — plain dataflow data
  dependences — already serializes them, so no LSQ/PreVV is needed);
* ``MAY_CONFLICT`` — a cross-iteration conflict may exist: the pair is an
  *ambiguous pair* in the paper's Definition 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Set

from ..ir.function import Function
from ..ir.instructions import BinaryInst, LoadInst, PhiInst, SelectInst
from ..ir.loops import find_loops
from ..ir.values import Argument, ConstInt, Value


@dataclass
class AffineExpr:
    """Affine combination of induction variables and symbolic arguments."""

    iv_coeffs: Dict[PhiInst, int] = field(default_factory=dict)
    sym_coeffs: Dict[Argument, int] = field(default_factory=dict)
    const: int = 0

    def scaled(self, factor: int) -> "AffineExpr":
        return AffineExpr(
            {iv: c * factor for iv, c in self.iv_coeffs.items()},
            {s: c * factor for s, c in self.sym_coeffs.items()},
            self.const * factor,
        )

    def plus(self, other: "AffineExpr", sign: int = 1) -> "AffineExpr":
        iv = dict(self.iv_coeffs)
        for k, c in other.iv_coeffs.items():
            iv[k] = iv.get(k, 0) + sign * c
        sym = dict(self.sym_coeffs)
        for k, c in other.sym_coeffs.items():
            sym[k] = sym.get(k, 0) + sign * c
        return AffineExpr(
            {k: c for k, c in iv.items() if c != 0},
            {k: c for k, c in sym.items() if c != 0},
            self.const + sign * other.const,
        )

    @property
    def is_constant(self) -> bool:
        return not self.iv_coeffs and not self.sym_coeffs

    def __repr__(self) -> str:  # pragma: no cover
        parts = [f"{c}*{iv.name}" for iv, c in self.iv_coeffs.items()]
        parts += [f"{c}*{s.name}" for s, c in self.sym_coeffs.items()]
        parts.append(str(self.const))
        return " + ".join(parts)


class Dependence(Enum):
    INDEPENDENT = "independent"
    SAME_ITERATION = "same_iteration"
    MAY_CONFLICT = "may_conflict"


def _induction_phis(fn: Function) -> Set[PhiInst]:
    """Phis sitting in loop headers: the iteration-space variables."""
    headers = {loop.header for loop in find_loops(fn)}
    ivs: Set[PhiInst] = set()
    for block in fn.blocks:
        if block in headers:
            ivs.update(block.phis)
    return ivs


class AffineAnalyzer:
    """Derives affine forms for index expressions of one function."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.ivs = _induction_phis(fn)
        self._cache: Dict[int, Optional[AffineExpr]] = {}

    def analyze(self, value: Value) -> Optional[AffineExpr]:
        """Affine form of ``value``, or ``None`` when non-affine."""
        key = id(value)
        if key in self._cache:
            return self._cache[key]
        # Break cycles through non-IV phis conservatively.
        self._cache[key] = None
        result = self._analyze(value)
        self._cache[key] = result
        return result

    def _analyze(self, value: Value) -> Optional[AffineExpr]:
        if isinstance(value, ConstInt):
            return AffineExpr(const=value.value)
        if isinstance(value, Argument):
            return AffineExpr(sym_coeffs={value: 1})
        if isinstance(value, PhiInst):
            if value in self.ivs:
                return AffineExpr(iv_coeffs={value: 1})
            return None  # non-induction phi: data-dependent
        if isinstance(value, LoadInst):
            return None  # memory-dependent subscript (Fig. 2(b))
        if isinstance(value, SelectInst):
            return None
        if isinstance(value, BinaryInst):
            return self._analyze_binary(value)
        return None

    def _analyze_binary(self, inst: BinaryInst) -> Optional[AffineExpr]:
        lhs = self.analyze(inst.lhs)
        rhs = self.analyze(inst.rhs)
        if inst.opcode == "add" and lhs and rhs:
            return lhs.plus(rhs)
        if inst.opcode == "sub" and lhs and rhs:
            return lhs.plus(rhs, sign=-1)
        if inst.opcode == "mul" and lhs and rhs:
            if rhs.is_constant and not rhs.sym_coeffs:
                return lhs.scaled(rhs.const)
            if lhs.is_constant and not lhs.sym_coeffs:
                return rhs.scaled(lhs.const)
            return None
        if inst.opcode == "shl" and lhs and rhs and rhs.is_constant:
            return lhs.scaled(1 << rhs.const)
        return None


def classify_dependence(
    a: Optional[AffineExpr], b: Optional[AffineExpr]
) -> Dependence:
    """Dependence class between two subscripts of the same array.

    ``None`` (non-affine) forces MAY_CONFLICT.  Both expressions range over
    independent copies of the induction variables (distinct dynamic
    iterations), so the conflict equation is ``a(i) - b(i') == 0``.
    """
    if a is None or b is None:
        return Dependence.MAY_CONFLICT

    # Symbolic coefficients must cancel exactly; otherwise the difference
    # contains an unknown runtime constant and we must be conservative
    # (unless the unknown part can never vanish — which we cannot prove).
    diff_syms = a.plus(b, sign=-1).sym_coeffs
    if diff_syms:
        return Dependence.MAY_CONFLICT

    # Identical affine parts: conflicts need iv_k == iv'_k for the single
    # IV case; with >= 2 IVs (or flattened 2-D subscripts) distinct
    # iteration vectors can produce equal addresses, so be conservative.
    if a.iv_coeffs == b.iv_coeffs and a.const == b.const:
        if not a.iv_coeffs:
            return Dependence.MAY_CONFLICT  # same constant address always
        if len(a.iv_coeffs) == 1:
            return Dependence.SAME_ITERATION
        return Dependence.MAY_CONFLICT

    # GCD test over i and i' treated as independent integer unknowns:
    # sum(ca_k i_k) - sum(cb_k i'_k) = b.const - a.const
    coeffs = list(a.iv_coeffs.values()) + list(b.iv_coeffs.values())
    rhs = b.const - a.const
    if not coeffs:
        return Dependence.INDEPENDENT if rhs != 0 else Dependence.MAY_CONFLICT
    g = 0
    for c in coeffs:
        g = math.gcd(g, abs(c))
    if g == 0:
        return Dependence.INDEPENDENT if rhs != 0 else Dependence.MAY_CONFLICT
    if rhs % g != 0:
        return Dependence.INDEPENDENT
    return Dependence.MAY_CONFLICT
