"""PVBound: static occupancy & liveness model checker.

Computes sound per-place upper bounds on worst-case token occupancy for
one compiled circuit — channels, buffers, memory-controller response
queues, arbiter reorder buffers, premature queues, LSQ partitions — and
proves (or refutes) that every premature queue stays within its
physical slack and that retirement cannot stall.  Surfaced as the
``occupancy`` lint layer (PV501–PV504), the ``--occupancy`` bench
sweep, and the fuzz harness's occupancy-bound differential oracle.
"""

from .domain import Interval, TripBudgets, min_bound
from .interp import solve
from .measure import (
    OccupancyCheck,
    OccupancyMeasurement,
    compare,
    measure_build,
    measure_kernel,
)
from .model import OccupancyPrediction, analyze_build
from .places import Place, PlaceGraph, extract_places
from .queue_model import (
    PRE_FIX,
    ArbiterPolicy,
    PortModel,
    QueueClaim,
    StallFinding,
    UnitModel,
    claim_for_unit,
)

__all__ = [
    "Interval",
    "TripBudgets",
    "min_bound",
    "solve",
    "OccupancyCheck",
    "OccupancyMeasurement",
    "compare",
    "measure_build",
    "measure_kernel",
    "OccupancyPrediction",
    "analyze_build",
    "Place",
    "PlaceGraph",
    "extract_places",
    "PRE_FIX",
    "ArbiterPolicy",
    "PortModel",
    "QueueClaim",
    "StallFinding",
    "UnitModel",
    "claim_for_unit",
]
