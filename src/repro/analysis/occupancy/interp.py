"""Abstract token-flow interpreter over the place graph.

A classic worklist fixpoint on the interval domain: every place starts
at ``[0, 0]``; a source injection or an inflow from a predecessor grows
the upper bound; retreating edges (found by depth-first search over the
flow graph — token loops through loop-carried dependences and the
squash/replay paths) are widened so the fixpoint terminates, and a
per-place update budget backstops widening against graphs the DFS
classification misses.

Widening alone would leave every place on a cycle at top; soundness of
the *refinement* step is what makes the result useful:

* a place with structural capacity ``c`` and elastic backpressure can
  never hold more than ``c`` tokens — the producer's push is gated on
  ``ready`` (``Interval.clamp(capacity)``);
* a place with injection budget ``b`` can never *simultaneously* hold
  more than ``b`` tokens: the budget counts distinct loop-body
  activations of the feeding port, and a squash flush purges the
  squashed generation's tokens before replay re-issues them, so live
  tokens always belong to distinct iterations of the current
  generation (``Interval.clamp(budget)``).

Premature-queue places are *not* refined here — their capacity is
physical, not backpressured, and their sound bound comes from the
policy model (:mod:`.queue_model`); the interpreter only reports
whether tokens reach them.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .domain import Interval, min_bound
from .places import PlaceGraph

#: Per-place update budget before forcing top; a backstop, not the main
#: termination argument (that is DFS back-edge widening).
_MAX_UPDATES = 64


def _back_edges(graph: PlaceGraph) -> "set[tuple[str, str]]":
    """Retreating edges of the flow graph via iterative DFS."""
    back: set = set()
    color: Dict[str, int] = {}  # 0 absent / 1 on stack / 2 done
    for root in list(graph.places):
        if color.get(root):
            continue
        stack: List[tuple] = [(root, iter(graph.edges.get(root, ())))]
        color[root] = 1
        while stack:
            node, succs = stack[-1]
            advanced = False
            for nxt in succs:
                if color.get(nxt) == 1:
                    back.add((node, nxt))
                elif not color.get(nxt):
                    color[nxt] = 1
                    stack.append((nxt, iter(graph.edges.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                stack.pop()
    return back


def solve(graph: PlaceGraph) -> Dict[str, Interval]:
    """Fixpoint occupancy interval per place, post-refinement."""
    state: Dict[str, Interval] = {
        name: Interval(0, 0) for name in graph.places
    }
    back = _back_edges(graph)
    updates: Dict[str, int] = {name: 0 for name in graph.places}

    worklist: List[str] = []
    for src in graph.sources:
        if src in state:
            state[src] = Interval(0, None)  # control tokens re-inject
            worklist.append(src)

    while worklist:
        name = worklist.pop()
        cur = state[name]
        for succ in graph.edges.get(name, ()):  # inflow: every token
            old = state[succ]                    # resting here may move on
            new = old.join(old.grow(cur.hi))
            if (name, succ) in back:
                new = old.widen(new)
            updates[succ] += 1
            if updates[succ] > _MAX_UPDATES:
                new = Interval(new.lo, None)
            if new != old:
                state[succ] = new
                worklist.append(succ)

    refined: Dict[str, Interval] = {}
    for name, interval in state.items():
        place = graph.places[name]
        if place.kind == "queue":
            refined[name] = interval  # bounded by the policy model instead
            continue
        cap = min_bound(place.capacity, place.budget)
        refined[name] = interval.clamp(cap)
    return refined


def static_bound(
    graph: PlaceGraph, state: Dict[str, Interval], name: str
) -> Optional[int]:
    """The claimed occupancy bound for one place (None = unbounded)."""
    interval = state.get(name)
    if interval is None:
        return None
    return interval.hi
