"""Premature-queue occupancy claims under an explicit acceptance policy.

The premature queue is the one place the generic interpreter cannot
bound from structure alone: its architectural backpressure
(``is_full``) has *liveness escapes* that deliberately admit records
past the architectural depth, and whether those escapes can reach the
physical slack is a property of the acceptance **policy**, not of the
graph.  This module models that policy as a small transition system and
derives, per unit:

* a sound upper bound on queue occupancy (``QueueClaim.bound``,
  ``None`` = no finite bound derivable);
* whether a physical-slack overflow is reachable (PV502);
* whether a retirement-stall cycle exists in the abstract transition
  graph — an accepted entry that no transition can ever retire (PV503).

The policy is read off the implemented arbiter
(:class:`repro.prevv.unit.PreVVUnit` class flags) so the model tracks
the code; the PV502 regression test re-runs the model with
:data:`PRE_FIX` to prove the checker flags the pre-fix circuit, and the
mutation tests drop ``phase_handoff`` to prove PV504 catches a wrong
transfer function.

Phase-handoff hazard, concretely: with two loop nests mapped to phases
``0`` and ``1`` of one unit, the memory controller grants phase-1
premature loads as soon as their address tokens arrive — before the
arbiter has seen any phase-1 *real* op — so ``_port_version_bound``
pins the conservative last-known version and the queue head (a phase-0
store awaiting validation) becomes version-blocked.  Pre-fix, the only
full-queue escape admitted the position-watermark port; every earlier-
phase record admitted while the head stayed blocked burned physical
slack, so the reachable occupancy is ``depth`` plus the reorder-buffer
reserve plus *all* earlier-phase records.  Post-fix the version-release
escape drains the blockage and the physical reservation guard caps any
admission at ``physical_depth``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ...prevv.unit import PreVVUnit


@dataclass(frozen=True)
class ArbiterPolicy:
    """Acceptance-policy features of the full-queue path.

    ``phase_handoff``: the transfer function models the cross-phase
    handoff transition at all (dropping it is the sanctioned sabotage
    for the PV504 mutation test — the model then believes only the
    architectural depth plus one in-flight record per real port is
    reachable).
    """

    version_release: bool = True
    physical_guard: bool = True
    phase_handoff: bool = True

    @classmethod
    def implemented(cls) -> "ArbiterPolicy":
        """The policy the simulator actually implements, read off the
        arbiter's class flags so model and code cannot drift silently."""
        return cls(
            version_release=PreVVUnit.FULL_QUEUE_VERSION_RELEASE,
            physical_guard=PreVVUnit.FULL_QUEUE_PHYSICAL_GUARD,
            phase_handoff=True,
        )


#: The acceptance policy before the cross-phase backpressure fix:
#: watermark-only escape, no physical reservation guard.
PRE_FIX = ArbiterPolicy(version_release=False, physical_guard=False)


@dataclass(frozen=True)
class PortModel:
    kind: str                    # "load" | "store"
    phase: int
    domain: int
    activations: Optional[int]   # static record budget (None = unbounded)


@dataclass(frozen=True)
class UnitModel:
    name: str
    depth: int
    physical_depth: int
    window: int
    validations_per_cycle: int
    ports: List[PortModel] = field(default_factory=list)

    @property
    def pending_reserve(self) -> int:
        """Records that can sit pulled-but-unaccepted in reorder buffers."""
        return sum(
            min(self.window, p.activations)
            if p.activations is not None
            else self.window
            for p in self.ports
        )


@dataclass(frozen=True)
class StallFinding:
    """A retirement-stall cycle in the abstract transition graph."""

    unit: str
    detail: str


@dataclass(frozen=True)
class QueueClaim:
    unit: str
    depth: int
    physical_depth: int
    bound: Optional[int]         # sound occupancy upper bound (None = top)
    overflow_reachable: bool     # PV502: bound exceeds physical slack
    detail: str


def _handoff_hazard(unit: UnitModel) -> Optional[int]:
    """Earlier-phase record mass if a cross-phase handoff can block
    retirement, else ``None`` (no hazard).

    The hazard needs (a) at least two distinct phases on one unit, so a
    later-phase premature grant can pin ``_port_version_bound`` while
    the head belongs to an earlier phase, and (b) enough earlier-phase
    records to fill the architectural depth while the head is blocked.
    Returns the total earlier-phase record budget (the slack burn), with
    ``-1`` encoding "unbounded".
    """
    phases = sorted({p.phase for p in unit.ports})
    if len(phases) < 2:
        return None
    last_phase = phases[-1]
    burn = 0
    for p in unit.ports:
        if p.phase >= last_phase:
            continue
        if p.activations is None:
            return -1
        burn += p.activations
    if not burn:
        return None
    if burn < unit.depth:
        return None  # cannot even fill the architectural depth
    return burn


def claim_for_unit(
    unit: UnitModel, policy: Optional[ArbiterPolicy] = None
) -> "tuple[QueueClaim, Optional[StallFinding]]":
    """Derive the occupancy claim and any liveness finding for one unit."""
    policy = policy or ArbiterPolicy.implemented()

    if not policy.phase_handoff:
        # Sabotaged transfer function: pretends the queue never admits
        # past depth except one in-flight record per real port.  Unsound
        # on any cross-phase kernel — exactly what PV504 must catch.
        bound = unit.depth + len(unit.ports)
        return (
            QueueClaim(
                unit.name, unit.depth, unit.physical_depth, bound,
                bound > unit.physical_depth,
                "no phase-handoff transition modeled",
            ),
            None,
        )

    if policy.version_release and policy.physical_guard:
        # Implemented policy.  The reservation guard is an inductive
        # invariant: an escape admission requires
        #   occupancy + pending_real + n_ports <= physical_depth
        # and at most one record per port is accepted per cycle, so no
        # admission sequence can push occupancy past physical_depth.
        # The version-release escape drains version-blocked heads, so
        # no retirement-stall cycle exists.
        return (
            QueueClaim(
                unit.name, unit.depth, unit.physical_depth,
                unit.physical_depth, False,
                "physical reservation guard bounds escape admissions",
            ),
            None,
        )

    # Pre-fix policy: watermark-only escape, no reservation guard.
    burn = _handoff_hazard(unit)
    if burn is None:
        bound = unit.depth + unit.pending_reserve + len(unit.ports)
        return (
            QueueClaim(
                unit.name, unit.depth, unit.physical_depth, bound,
                bound > unit.physical_depth,
                "single-phase unit: watermark escape suffices",
            ),
            None,
        )

    stall = StallFinding(
        unit.name,
        "cross-phase handoff: later-phase premature grants pin "
        "_port_version_bound while the head awaits validation; the "
        "watermark-only escape cannot release the version block, so "
        "retirement stalls with entries in the queue",
    )
    if burn < 0:
        bound: Optional[int] = None
    else:
        bound = unit.depth + unit.pending_reserve + burn
    overflow = bound is None or bound > unit.physical_depth
    return (
        QueueClaim(
            unit.name, unit.depth, unit.physical_depth, bound, overflow,
            "earlier-phase records admitted past a version-blocked head "
            "burn physical slack",
        ),
        stall,
    )
