"""PVBound's front door: one compiled circuit in, one prediction out.

:func:`analyze_build` composes the pipeline —

1. abstract the circuit into a :class:`~.places.PlaceGraph`;
2. run the interval fixpoint (:func:`~.interp.solve`) to bound every
   backpressured / budgeted place;
3. bound each premature queue with the acceptance-policy transition
   model (:func:`~.queue_model.claim_for_unit`), which also yields the
   liveness verdict —

and packages the result as an :class:`OccupancyPrediction` the lint
passes, the bench sweep and the fuzz oracle all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .domain import Interval
from .interp import solve
from .places import PlaceGraph, extract_places
from .queue_model import (
    ArbiterPolicy,
    QueueClaim,
    StallFinding,
    claim_for_unit,
)


@dataclass
class OccupancyPrediction:
    """Static occupancy bounds for one compiled (kernel, config)."""

    subject: str
    policy: ArbiterPolicy
    graph: PlaceGraph
    #: fixpoint interval per place name
    intervals: Dict[str, Interval] = field(default_factory=dict)
    #: derived upper bound per place name (None = no finite bound)
    bounds: Dict[str, Optional[int]] = field(default_factory=dict)
    claims: List[QueueClaim] = field(default_factory=list)
    stalls: List[StallFinding] = field(default_factory=list)

    @property
    def overflow_units(self) -> List[str]:
        """Units whose premature queue can overflow physically (PV502)."""
        return [c.unit for c in self.claims if c.overflow_reachable]

    @property
    def all_bounded(self) -> bool:
        return all(b is not None for b in self.bounds.values())


def analyze_build(
    build,
    fn,
    args: Optional[Dict[str, int]] = None,
    policy: Optional[ArbiterPolicy] = None,
) -> OccupancyPrediction:
    """Prove occupancy bounds for one :class:`BuildResult`."""
    policy = policy or ArbiterPolicy.implemented()
    graph = extract_places(build, fn, args)
    intervals = solve(graph)

    claims: List[QueueClaim] = []
    stalls: List[StallFinding] = []
    queue_bounds: Dict[str, Optional[int]] = {}
    for unit in graph.units:
        claim, stall = claim_for_unit(unit, policy)
        claims.append(claim)
        if stall is not None:
            stalls.append(stall)
        queue_bounds[f"queue:{unit.name}"] = claim.bound

    bounds: Dict[str, Optional[int]] = {}
    for name, interval in intervals.items():
        if name in queue_bounds:
            bounds[name] = queue_bounds[name]
        else:
            bounds[name] = interval.hi

    return OccupancyPrediction(
        subject=build.circuit.name,
        policy=policy,
        graph=graph,
        intervals=intervals,
        bounds=bounds,
        claims=claims,
        stalls=stalls,
    )
