"""Measured peak occupancies, and the static-vs-measured comparison.

The measured side samples every modeled place at every end-of-cycle
hook of the **levelized** engine — pinned, because the compiled engine
may inline buffer state into locals and leave the component objects'
``occupancy`` stale.  End-of-cycle sampling is exact, not an
approximation: every component's ``tick`` pops its outgoing token
before pushing the incoming one, so the end-of-tick occupancy *is* the
cycle's peak.  The premature queue and the LSQ keep their own running
peaks (``max_occupancy`` counters), which the hook does not need to
duplicate.

:func:`compare` pairs each static claim with the quantity it bounds:

* **capacity** — a place's measured peak against its structural
  capacity; a violation means the *hardware model* (``perf_model``,
  queue depths) mis-states the implementation → PV501;
* **bound** — a place's measured peak against PVBound's derived upper
  bound; a violation means the transfer function is unsound → PV504;
* **overflow** — per unit, observed physical overflow against the
  predicted reachable set; prediction must be a superset → PV504 (and
  the fuzz oracle's invariant).

A failed record always indicts the static analysis, never the
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...compile import compile_function
from ...dataflow import make_simulator
from ...errors import QueueOverflowError
from ...eval.runner import make_done_condition
from ...kernels import get_kernel
from ...lsq.lsq import LoadStoreQueue
from ...memory.controller import MemoryController
from ...prevv.unit import PreVVUnit
from .model import OccupancyPrediction, analyze_build
from .queue_model import ArbiterPolicy


@dataclass
class OccupancyMeasurement:
    """Peak occupancies of one simulated kernel run."""

    subject: str
    cycles: int
    #: peak simultaneous occupancy per place name (same names as the
    #: prediction's place graph; channels are not sampled — their
    #: capacity-1 bound is structural)
    peaks: Dict[str, int] = field(default_factory=dict)
    #: units whose premature queue physically overflowed during the run
    overflowed_units: List[str] = field(default_factory=list)

    @property
    def overflowed(self) -> bool:
        return bool(self.overflowed_units)


class _PeakSampler:
    """End-of-cycle probe reading every modeled place's live occupancy."""

    def __init__(self, circuit):
        self.peaks: Dict[str, int] = {}
        #: (name prefix, component, attribute yielding a list of ints)
        self._vector_probes = []
        self._scalar_probes = []
        for comp in circuit.components:
            if isinstance(comp, MemoryController):
                self._vector_probes.append(
                    (f"mcresp:{comp.name}", comp, "response_occupancies"))
                for i in range(comp.n_loads):
                    self.peaks[f"mcresp:{comp.name}:{i}"] = 0
            elif isinstance(comp, PreVVUnit):
                self._vector_probes.append(
                    (f"pending:{comp.name}", comp, "pending_occupancies"))
                for i in range(len(comp.ports)):
                    self.peaks[f"pending:{comp.name}:{i}"] = 0
            elif isinstance(comp, LoadStoreQueue):
                pass  # keeps its own max_* counters
            elif getattr(type(comp), "occupancy", None) is not None:
                if comp.perf_model()[1] is not None:
                    self._scalar_probes.append((f"buf:{comp.name}", comp))
                    self.peaks[f"buf:{comp.name}"] = 0

    def __call__(self) -> None:
        peaks = self.peaks
        for prefix, comp, attr in self._vector_probes:
            for i, value in enumerate(getattr(comp, attr)):
                key = f"{prefix}:{i}"
                if value > peaks[key]:
                    peaks[key] = value
        for key, comp in self._scalar_probes:
            value = comp.occupancy
            if value > peaks[key]:
                peaks[key] = value


def measure_build(build, max_cycles: int = 2_000_000) -> OccupancyMeasurement:
    """Simulate one already-initialized build and collect peaks."""
    sim = make_simulator(build.circuit, engine="levelized",
                         max_cycles=max_cycles)
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    sampler = _PeakSampler(build.circuit)
    sim.end_of_cycle_hooks.append(sampler)

    overflowed: List[str] = []
    try:
        sim.run(make_done_condition(build))
    except QueueOverflowError:
        overflowed = [
            u.name for u in build.units
            if u.queue.occupancy >= u.queue.physical_depth
        ] or [u.name for u in build.units]

    peaks = dict(sampler.peaks)
    for unit in build.units:
        peaks[f"queue:{unit.name}"] = unit.queue.max_occupancy
    for lsq in build.lsqs:
        peaks[f"lsq:{lsq.name}:loads"] = lsq.max_load_occupancy
        peaks[f"lsq:{lsq.name}:stores"] = lsq.max_store_occupancy

    return OccupancyMeasurement(
        subject=build.circuit.name,
        cycles=sim.stats.cycles,
        peaks=peaks,
        overflowed_units=overflowed,
    )


def measure_kernel(
    kernel_name: str,
    config,
    sizes: Optional[Dict[str, int]] = None,
    max_cycles: int = 2_000_000,
    policy: Optional[ArbiterPolicy] = None,
):
    """Compile, prove and simulate one (kernel, config).

    Returns ``(prediction, measurement)`` ready for :func:`compare`.
    """
    kernel = get_kernel(kernel_name, **(sizes or {}))
    fn = kernel.build_ir()
    build = compile_function(fn, config, args=kernel.args)
    prediction = analyze_build(build, fn, kernel.args, policy=policy)

    build.memory.initialize(kernel.memory_init)
    measurement = measure_build(build, max_cycles=max_cycles)
    return prediction, measurement


@dataclass(frozen=True)
class OccupancyCheck:
    """One static-vs-measured occupancy comparison."""

    kind: str        # "capacity" | "bound" | "overflow"
    subject: str     # place or unit name
    static: Optional[int]
    measured: int
    ok: bool
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "subject": self.subject,
            "static": self.static,
            "measured": self.measured,
            "ok": self.ok,
            "note": self.note,
        }


def compare(
    prediction: OccupancyPrediction, measurement: OccupancyMeasurement
) -> List[OccupancyCheck]:
    """All applicable occupancy soundness checks, sorted by place."""
    records: List[OccupancyCheck] = []
    for name in sorted(measurement.peaks):
        peak = measurement.peaks[name]
        place = prediction.graph.places.get(name)
        if place is None:
            continue
        if place.capacity is not None:
            records.append(OccupancyCheck(
                kind="capacity", subject=name,
                static=place.capacity, measured=peak,
                ok=peak <= place.capacity,
                note=f"{place.kind} structural capacity",
            ))
        bound = prediction.bounds.get(name)
        records.append(OccupancyCheck(
            kind="bound", subject=name,
            static=bound, measured=peak,
            ok=bound is None or peak <= bound,
            note="derived occupancy bound"
            if bound is not None else "no finite bound derived",
        ))

    predicted = set(prediction.overflow_units)
    for claim in prediction.claims:
        observed = claim.unit in measurement.overflowed_units
        records.append(OccupancyCheck(
            kind="overflow", subject=claim.unit,
            static=claim.bound,
            measured=1 if observed else 0,
            ok=(not observed) or claim.unit in predicted,
            note="predicted-overflow set must cover observed overflow",
        ))
    return records
