"""Place-graph extraction: where can a token rest, and how do they flow.

PVBound abstracts the elastic circuit into *places* — discrete token
stores — connected by flow edges:

* every **channel** is a place of capacity 1 (one offered token);
* every **buffer** (OEHB/TEHB/Fifo/TransparentFifo) is a place with the
  capacity its ``perf_model`` declares, elastically backpressured;
* every **memory-controller load port** owns a response-queue place
  with *no* structural capacity — the controller keeps granting while
  the consumer stalls, which is exactly why it needs a derived bound;
* every **PreVV unit port** owns a reorder-buffer place capped at the
  acceptance window, and the unit's **premature queue** is a place whose
  physical capacity is real (pushing past it is the
  :class:`~repro.errors.QueueOverflowError` crash class) but whose
  architectural backpressure has liveness escapes — its bound comes from
  the policy transition model in :mod:`.queue_model`, not from the
  generic interpreter;
* every **LSQ** contributes its load and store queue places (allocation
  is backpressured at group granularity).

Components that merely transform tokens (arithmetic, forks, merges,
gates) hold nothing across cycles beyond their output channel, so they
contribute edges but no places.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...ir.instructions import LoadInst, StoreInst
from ...lsq.lsq import LoadStoreQueue
from ...memory.controller import MemoryController
from ...prevv.unit import PreVVUnit
from .domain import TripBudgets, min_bound
from .queue_model import PortModel, UnitModel


@dataclass
class Place:
    """One token store.  Mutable on purpose: the mutation tests sabotage
    capacities to prove the measured cross-check has teeth."""

    name: str
    kind: str               # channel | buffer | mc_response | unit_pending
    #                       # | queue | lsq
    subject: str            # owning component / channel
    capacity: Optional[int]  # structural cap (None = structurally unbounded)
    budget: Optional[int]    # injection budget (None = no static budget)


@dataclass
class PlaceGraph:
    places: Dict[str, Place] = field(default_factory=dict)
    #: token-flow successors, place name -> place names
    edges: Dict[str, List[str]] = field(default_factory=dict)
    #: places injected by source components (token creators)
    sources: List[str] = field(default_factory=list)
    #: per-unit detail for the premature-queue policy model
    units: List[UnitModel] = field(default_factory=list)

    def add(self, place: Place) -> Place:
        self.places[place.name] = place
        self.edges.setdefault(place.name, [])
        return place

    def connect(self, src: str, dst: str) -> None:
        if src in self.places and dst in self.places:
            succ = self.edges.setdefault(src, [])
            if dst not in succ:
                succ.append(dst)


def _ch_place(ch) -> Optional[str]:
    """Place name of a channel, or None for a stand-in object.

    Hand-built lint-test circuits wire ports to bare sentinels; those
    carry no tokens the model could bound, so they contribute nothing.
    """
    name = getattr(ch, "name", None)
    return f"ch:{name}" if isinstance(name, str) else None


def _lsq_budgets(fn, budgets: TripBudgets):
    """Per-array (loads, stores) injection budgets, op-weighted.

    Summed over *instructions*, not loop bodies: a body with two loads
    of one array injects two LSQ entries per activation.
    """
    per_array: Dict[str, List[Optional[int]]] = {}
    for block in fn.blocks:
        acts = budgets.for_block(block)
        for op in block.memory_ops():
            if isinstance(op, LoadInst):
                kind = 0
            elif isinstance(op, StoreInst):
                kind = 1
            else:  # pragma: no cover - memory_ops yields only loads/stores
                continue
            sides = per_array.setdefault(op.array.name, [0, 0])
            if sides[kind] is not None:
                sides[kind] = None if acts is None else sides[kind] + acts
    return per_array


def _is_buffer(comp) -> bool:
    """A component holding tokens across cycles with a bounded capacity."""
    if isinstance(comp, (MemoryController, PreVVUnit, LoadStoreQueue)):
        return False
    if getattr(type(comp), "occupancy", None) is None:
        return False
    _, capacity = comp.perf_model()
    return capacity is not None


def _port_activations(build, fn, budgets: TripBudgets):
    """Per (unit, port index) activation budget, and per MC load port.

    ``build.units[i]`` serves ``build.groups[i]`` and the unit's ports
    are the group's operations in program order — the same construction
    order the builder used — so port ``k`` maps back to the IR
    instruction whose block gives the trip budget.
    """
    order = {id(op): k for k, op in enumerate(fn.memory_ops())}
    per_unit: Dict[Tuple[str, int], Optional[int]] = {}
    per_mc_port: Dict[Tuple[str, str, int], Optional[int]] = {}
    for unit, group in zip(build.units, build.groups):
        ops = sorted(group.loads + group.stores, key=lambda o: order[id(o)])
        for k, op in enumerate(ops):
            block = next(b for b in fn.blocks if op in b.instructions)
            acts = budgets.for_block(block)
            per_unit[(unit.name, k)] = acts
            link = unit._mc_link[k]
            if link is not None:
                mc, kind, mc_port = link
                per_mc_port[(mc.name, kind, mc_port)] = acts
    return per_unit, per_mc_port


def extract_places(build, fn, args: Optional[Dict[str, int]] = None) -> PlaceGraph:
    """Abstract ``build``'s circuit into a :class:`PlaceGraph`."""
    budgets = TripBudgets(fn, args or {})
    graph = PlaceGraph()
    circuit = build.circuit

    for ch in circuit.channels:
        graph.add(Place(f"ch:{ch.name}", "channel", ch.name, 1, None))

    per_unit_acts, per_mc_acts = _port_activations(build, fn, budgets)
    lsq_budgets = _lsq_budgets(fn, budgets)
    total = budgets.total

    for comp in circuit.components:
        in_chs = [(port, ch) for port, ch in comp.inputs.items()]
        out_chs = [(port, ch) for port, ch in comp.outputs.items()]

        if isinstance(comp, MemoryController):
            for i in range(comp.n_loads):
                acts = per_mc_acts.get((comp.name, "load", i), total)
                place = graph.add(Place(
                    f"mcresp:{comp.name}:{i}", "mc_response", comp.name,
                    None, acts,
                ))
                addr = _ch_place(comp.inputs.get(f"ld{i}_addr"))
                data = _ch_place(comp.outputs.get(f"ld{i}_data"))
                if addr is not None:
                    graph.connect(addr, place.name)
                if data is not None:
                    graph.connect(place.name, data)
            continue  # store tokens die in the RAM

        if isinstance(comp, PreVVUnit):
            queue = graph.add(Place(
                f"queue:{comp.name}", "queue", comp.name,
                comp.queue.physical_depth, None,
            ))
            for i in range(len(comp.ports)):
                acts = per_unit_acts.get((comp.name, i))
                place = graph.add(Place(
                    f"pending:{comp.name}:{i}", "unit_pending", comp.name,
                    comp.reorder_window,
                    min_bound(comp.reorder_window, acts),
                ))
                for port in (comp.port_name(i), comp.fake_port_name(i),
                             comp.done_port_name(i)):
                    src = _ch_place(comp.inputs.get(port))
                    if src is not None:
                        graph.connect(src, place.name)
                graph.connect(place.name, queue.name)
            graph.units.append(UnitModel(
                name=comp.name,
                depth=comp.queue.depth,
                physical_depth=comp.queue.physical_depth,
                window=comp.reorder_window,
                validations_per_cycle=comp.validations_per_cycle,
                ports=[
                    PortModel(
                        kind=cfg.kind, phase=cfg.phase, domain=cfg.domain,
                        activations=per_unit_acts.get((comp.name, i)),
                    )
                    for i, cfg in enumerate(comp.ports)
                ],
            ))
            continue

        if isinstance(comp, LoadStoreQueue):
            # Group allocation over-subscribes transiently: each group's
            # acceptance is checked against one start-of-cycle reserved
            # count, so k groups firing in one cycle can land
            # sum(n) - max(n) entries past the depth before backpressure
            # re-engages.  That slack is part of the structural capacity.
            load_counts = [g.n_loads for g in comp.groups] or [0]
            store_counts = [g.n_stores for g in comp.groups] or [0]
            ld_budget, st_budget = lsq_budgets.get(
                getattr(comp, "array", ""), (total, total)
            )
            loads = graph.add(Place(
                f"lsq:{comp.name}:loads", "lsq", comp.name,
                comp.depth_loads + sum(load_counts) - max(load_counts),
                ld_budget,
            ))
            stores = graph.add(Place(
                f"lsq:{comp.name}:stores", "lsq", comp.name,
                comp.depth_stores + sum(store_counts) - max(store_counts),
                st_budget,
            ))
            for port, ch in in_chs:
                src = _ch_place(ch)
                if src is not None:
                    dst = stores.name if port.startswith("st") else loads.name
                    graph.connect(src, dst)
            for port, ch in out_chs:
                dst = _ch_place(ch)
                if dst is not None:
                    graph.connect(loads.name, dst)
            continue

        if _is_buffer(comp):
            _, capacity = comp.perf_model()
            place = graph.add(Place(
                f"buf:{comp.name}", "buffer", comp.name, capacity, None,
            ))
            for _, ch in in_chs:
                src = _ch_place(ch)
                if src is not None:
                    graph.connect(src, place.name)
            for _, ch in out_chs:
                dst = _ch_place(ch)
                if dst is not None:
                    graph.connect(place.name, dst)
            continue

        # Transform-only component: tokens pass straight through.
        for _, in_ch in in_chs:
            for _, out_ch in out_chs:
                src, dst = _ch_place(in_ch), _ch_place(out_ch)
                if src is not None and dst is not None:
                    graph.connect(src, dst)
        if not in_chs and out_chs:
            # Source component (entry control, constant generator):
            # its output channels are where tokens enter the graph.
            for _, out_ch in out_chs:
                src = _ch_place(out_ch)
                if src is not None and src in graph.places:
                    graph.sources.append(src)

    return graph
