"""Interval domain over token counts, plus static trip budgets.

PVBound's abstract state maps every *place* (somewhere a token can rest:
a channel, a buffer slot, a controller response queue, an arbiter
reorder buffer, the premature queue) to an :class:`Interval` ``[lo, hi]``
of simultaneous occupancies.  ``hi=None`` is the domain's top element —
"no finite bound derived" — which the interpreter reaches through
widening on back-edges and then tries to refine away with a structural
capacity or an injection budget.

:class:`TripBudgets` supplies those injection budgets: the loop-bound
interval analysis of the sanitizer (:mod:`repro.analysis.sanitizer.
intervals`) recovers per-loop trip counts for the canonical counted-loop
shape, and the product over a loop's ancestor chain bounds how many
times the loop body — hence any memory port fed from it — can ever
fire.  Squash/replay cannot inflate a *simultaneous* occupancy past the
budget: a flush purges the squashed generation's tokens before the
replay re-issues them, so live tokens always belong to distinct
iterations of the current generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...ir.function import Function
from ...ir.loops import Loop, find_loops, innermost_loop_of
from ..sanitizer.intervals import derive_iv_bounds


@dataclass(frozen=True)
class Interval:
    """Occupancy interval ``[lo, hi]``; ``hi=None`` means unbounded (top)."""

    lo: int = 0
    hi: Optional[int] = 0

    @property
    def is_bounded(self) -> bool:
        return self.hi is not None

    def join(self, other: "Interval") -> "Interval":
        hi = (
            None
            if self.hi is None or other.hi is None
            else max(self.hi, other.hi)
        )
        return Interval(min(self.lo, other.lo), hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard interval widening: a growing upper bound jumps to top."""
        lo = self.lo if newer.lo >= self.lo else min(self.lo, newer.lo)
        if self.hi is None or newer.hi is None:
            return Interval(lo, None)
        return Interval(lo, self.hi if newer.hi <= self.hi else None)

    def grow(self, amount: Optional[int]) -> "Interval":
        """Upper bound after up to ``amount`` more tokens arrive."""
        if self.hi is None or amount is None:
            return Interval(self.lo, None)
        return Interval(self.lo, self.hi + amount)

    def clamp(self, cap: Optional[int]) -> "Interval":
        """Refine top (or an over-estimate) with a sound external bound."""
        if cap is None:
            return self
        if self.hi is None or self.hi > cap:
            return Interval(self.lo, cap)
        return self

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        top = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {top}]"


def min_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    """Minimum of two upper bounds where ``None`` is +infinity."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


class TripBudgets:
    """Static per-loop body-activation budgets of one compiled kernel.

    ``for_block`` answers "how many times can an instruction in this
    block execute (per squash generation)" — the product of the trip
    counts along the innermost loop's ancestor chain.  Loops whose
    bounds do not fold to integers yield ``None`` (unbounded), never a
    guess.
    """

    def __init__(self, fn: Function, args: Dict[str, int]):
        self.fn = fn
        self._loops = find_loops(fn)
        self._iv = derive_iv_bounds(fn, args or {})
        self._loop_trips: Dict[int, Optional[int]] = {}
        for loop in self._loops:
            counts = [
                b.count
                for phi, b in self._iv.items()
                if phi in loop.header.phis
            ]
            # Every bounded phi of one header describes the same counted
            # loop; the max keeps the budget an upper bound if they ever
            # disagree.
            self._loop_trips[id(loop)] = max(counts) if counts else None

    def trips(self, loop: Loop) -> Optional[int]:
        """Trip count of one loop level, ``None`` when unresolvable."""
        return self._loop_trips.get(id(loop))

    def activations(self, loop: Optional[Loop]) -> Optional[int]:
        """Body activations of ``loop``: product over its ancestor chain."""
        if loop is None:
            return 1  # straight-line code: executes once
        total = 1
        cur: Optional[Loop] = loop
        while cur is not None:
            trips = self.trips(cur)
            if trips is None:
                return None
            total *= trips
            cur = cur.parent
        return total

    def for_block(self, block) -> Optional[int]:
        return self.activations(innermost_loop_of(self._loops, block))

    @property
    def total(self) -> Optional[int]:
        """Whole-program activation budget (sum over innermost bodies)."""
        total = 0
        for loop in self._loops:
            if loop.children:
                continue  # counted through the innermost level
            acts = self.activations(loop)
            if acts is None:
                return None
            total += acts
        return total
