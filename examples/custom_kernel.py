#!/usr/bin/env python3
"""Bring your own kernel: write IR, analyze it, pick a queue depth, run it.

Walks the full public API surface on a fresh kernel (sparse gather-update,
``acc[col[i]] += val[i] * x[row[i]]`` — the inner loop of a sparse
matrix-vector product with output accumulation):

  1. build the IR with :class:`~repro.ir.IRBuilder` / NestBuilder;
  2. verify it and run the golden interpreter;
  3. inspect the memory-dependence analysis (ambiguous pairs, groups);
  4. size the premature queue with the Sec. V-A matched-depth model;
  5. compile + simulate under PreVV and check the result.

    python examples/custom_kernel.py
"""

from repro.analysis import analyze_function, matched_depth, reduce_pairs
from repro.config import HardwareConfig
from repro.eval import run_kernel
from repro.ir import Function, IRBuilder, run_golden, verify_function
from repro.kernels import Kernel, NestBuilder, lcg_values


def build_sparse_update(kernel: Kernel) -> Function:
    n = kernel.args["n"]
    rows = kernel.args["rows"]
    fn = Function("sparse_update")
    b = IRBuilder(fn)
    n_arg = b.arg("n")
    col = b.array("col", n)
    row = b.array("row", n)
    val = b.array("val", n)
    x = b.array("x", rows)
    acc = b.array("acc", rows)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n_arg).iv
    contrib = b.mul(b.load(val, i), b.load(x, b.load(row, i)), name="contrib")
    c = b.load(col, i, name="c")
    b.store(acc, c, b.add(b.load(acc, c), contrib))
    nest.close_loop()
    b.ret()
    return fn


def main() -> None:
    n, rows = 48, 12
    kernel = Kernel(
        name="sparse_update",
        description="acc[col[i]] += val[i] * x[row[i]]",
        builder=build_sparse_update,
        args={"n": n, "rows": rows},
        memory_init={
            "col": lcg_values(n, seed=101, lo=0, hi=rows - 1),
            "row": lcg_values(n, seed=103, lo=0, hi=rows - 1),
            "val": lcg_values(n, seed=107, lo=1, hi=9),
            "x": lcg_values(rows, seed=109, lo=1, hi=9),
        },
    )

    fn = kernel.build_ir()
    verify_function(fn)
    golden = run_golden(fn, args=kernel.args, memory=kernel.memory_init)
    print("golden acc:", golden.memory["acc"])

    analysis = analyze_function(fn)
    groups = reduce_pairs(analysis)
    print(f"\nambiguous pairs: {len(analysis.pairs)} "
          f"(indirect subscripts are non-affine -> may-conflict)")
    print(f"conflicted arrays: {sorted(analysis.conflicted_arrays)}")
    print(f"validation groups: {len(groups)}")

    # Size the queue: short pipeline (t_org ~3 cycles), rare collisions.
    depth = matched_depth(t_org=3.0, p_squash=0.05, t_token=40.0)
    print(f"matched queue depth (Eqs. 6-7): {depth}")

    config = HardwareConfig(
        name=f"prevv{depth}", memory_style="prevv", prevv_depth=depth
    )
    result = run_kernel(kernel, config)
    print(
        f"\nsimulated: {result.cycles} cycles, verified={result.verified}, "
        f"squashes={result.squashes}, benign reorders={result.benign_reorders}"
    )
    assert result.verified


if __name__ == "__main__":
    main()
