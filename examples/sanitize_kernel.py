#!/usr/bin/env python3
"""PVSan walkthrough: prove pairs independent, then catch a broken arbiter.

Two demonstrations on seed kernels:

  1. **Static side** — run the dependence prover over ``fig2b`` and
     ``recurrence`` and show each ambiguous pair's classification:
     proven-independent pairs need no arbiter at all, bounded-distance
     pairs need a far shallower premature queue than the Sec. V-A
     matched-depth model suggests, unknown pairs keep the full runtime
     machinery.

  2. **Dynamic side** — deliberately mis-configure the PreVV arbiter
     (disable the Eq. 4 same-index comparison, so conflicting premature
     values are never detected) and run the sequential-consistency
     oracle alongside the simulation.  The oracle replays the
     interpreter's program order and reports the missed ordering
     violations as PV305 diagnostics.

    python examples/sanitize_kernel.py
"""

from repro.analysis.sanitizer import DependenceProver, sanitize_run
from repro.config import HardwareConfig
from repro.kernels import get_kernel


def classify_pairs(kernel_name: str) -> None:
    kernel = get_kernel(kernel_name)
    fn = kernel.build_ir()
    prover = DependenceProver(fn, args=kernel.args)
    print(f"\n--- {kernel_name}: prover classification ---")
    for proof in prover.prove_all():
        line = f"  {proof.pair!s:<24} -> {proof.classification.value}"
        if proof.depth_bound is not None:
            line += (
                f" (distance {proof.distance}, "
                f"depth {proof.depth_bound} suffices)"
            )
        print(line)
        print(f"      {proof.reason}")


def break_the_arbiter(build) -> None:
    """Disable the Eq. 4 index comparison on every PreVV unit.

    With ``_same_index`` returning no candidates the arbiter never sees
    a conflicting queue entry, so every reordering — benign or not — is
    silently declared valid.  The circuit still runs to completion; only
    the oracle (or the final memory state) can tell something is wrong.
    """
    for unit in build.units:
        unit._same_index = lambda record: []


def main() -> None:
    # 1. Static side: what can be proven without simulating?
    for name in ("fig2b", "recurrence"):
        classify_pairs(name)

    # 2. Dynamic side: a healthy run is clean...
    config = HardwareConfig(memory_style="prevv", prevv_depth=16)
    kernel = get_kernel("recurrence")
    good = sanitize_run(kernel, config)
    print(
        f"\n--- recurrence[prevv16], healthy arbiter ---\n"
        f"  {good.checks} arbiter decisions checked, "
        f"{len(good.report.errors)} error(s), verified={good.verified}"
    )

    # ... and the mutated one is caught with specific diagnostics.
    bad = sanitize_run(kernel, config, mutate=break_the_arbiter)
    print(
        f"\n--- recurrence[prevv16], Eq. 4 index check disabled ---\n"
        f"  {bad.checks} arbiter decisions checked, "
        f"{len(bad.report.errors)} error(s), verified={bad.verified}"
    )
    for diag in bad.report.errors[:5]:
        print(f"  {diag.format()}")
    remaining = len(bad.report.errors) - 5
    if remaining > 0:
        print(f"  ... ({remaining} more)")
    assert not good.report.errors, "healthy run must be clean"
    assert bad.report.errors, "oracle must catch the broken arbiter"
    assert any(d.code == "PV305" for d in bad.report.errors)
    print("\nPVSan: healthy run clean, sabotaged arbiter caught (PV305).")


if __name__ == "__main__":
    main()
