#!/usr/bin/env python3
"""Fig. 6 live demo: conditional pairs deadlock without fake tokens.

The triangular solver's PreVV member operations all sit inside if-blocks
(``j < i`` guards the x-load, ``j == n-1`` guards the x-store).  On
not-taken iterations the arbiter would wait forever for the missing side;
the paper's fix sends a 'fake' token down the skip path.  This script
runs the kernel twice — fakes enabled and surgically disabled — and shows
the deadlock diagnosis the simulator produces for the latter.

    python examples/deadlock_fake_tokens.py
"""

from repro.compile import compile_function
from repro.config import HardwareConfig
from repro.dataflow import Simulator
from repro.errors import DeadlockError, SimulationError
from repro.eval import make_done_condition
from repro.kernels import get_kernel
from repro.prevv import FakeTokenGenerator

PREVV = HardwareConfig(name="prevv8", memory_style="prevv", prevv_depth=8)


def run(disable_fakes: bool):
    kernel = get_kernel("triangular", n=16)
    build = compile_function(kernel.build_ir(), PREVV, args=kernel.args)
    build.memory.initialize(kernel.memory_init)
    if disable_fakes:
        for comp in build.circuit.components:
            if isinstance(comp, FakeTokenGenerator):
                comp.propagate = lambda: None
    sim = Simulator(build.circuit, max_cycles=30_000, deadlock_window=256)
    sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    sim.run(make_done_condition(build))
    return build, sim


def main() -> None:
    print("1) fake tokens ENABLED (the paper's Sec. V-C design)")
    build, sim = run(disable_fakes=False)
    fakes = sum(u.fake_tokens for u in build.units)
    golden = get_kernel("triangular", n=16).golden()
    ok = build.memory.snapshot()["x"] == golden.memory["x"]
    print(
        f"   completed in {sim.stats.cycles} cycles, verified={ok}, "
        f"{fakes} fake tokens retired skipped iterations\n"
    )

    print("2) fake tokens DISABLED (the Fig. 6 failure mode)")
    try:
        run(disable_fakes=True)
        print("   unexpectedly completed?!")
    except (DeadlockError, SimulationError) as exc:
        message = str(exc)
        print(f"   {type(exc).__name__}: {message[:180]}...")
        print(
            "\n   The premature queue filled with one side of the pair and "
            "the arbiter\n   starved waiting for the other — exactly the "
            "deadlock Fig. 6 describes."
        )


if __name__ == "__main__":
    main()
