#!/usr/bin/env python3
"""The paper's Fig. 2 hazard examples, end to end.

Builds both RAW-hazard shapes from Fig. 2 — the sequential-update form
(a) and the function-dependent form (b) whose subscripts are only known
at runtime — shows what the dependence analysis concludes about them,
and simulates each under PreVV, printing the validation traffic.

    python examples/hazards_fig2.py
"""

from repro.analysis import analyze_function, reduce_pairs
from repro.config import HardwareConfig
from repro.eval import run_kernel
from repro.ir import print_function
from repro.kernels import get_kernel

PREVV = HardwareConfig(name="prevv16", memory_style="prevv", prevv_depth=16)


def show(kernel_name: str) -> None:
    kernel = get_kernel(kernel_name)
    fn = kernel.build_ir()
    print("=" * 70)
    print(f"{kernel.name}: {kernel.description}\n")
    print(print_function(fn))

    analysis = analyze_function(fn)
    groups = reduce_pairs(analysis)
    print(f"\nambiguous pairs (Definition 1): {len(analysis.pairs)}")
    for pair in analysis.pairs:
        print(f"  Am{{{pair.load.name}, {pair.store.name}}} on @{pair.array}")
    print(f"validation groups after Sec. V-B reduction: {len(groups)}")
    for group in groups:
        print(
            f"  @{group.array}: {len(group.loads)} loads + "
            f"{len(group.stores)} stores share one premature queue"
        )

    result = run_kernel(kernel, PREVV)
    print(
        f"\nsimulated under PreVV16: {result.cycles} cycles, "
        f"verified={result.verified}, squashes={result.squashes}, "
        f"benign value-equal reorders={result.benign_reorders}"
    )
    print()


def main() -> None:
    show("fig2a")
    show("fig2b")


if __name__ == "__main__":
    main()
