#!/usr/bin/env python3
"""Quickstart: compile a kernel with PreVV, simulate it, inspect results.

Runs the histogram kernel (a data-dependent scatter-accumulate with RAW
hazards on ``hist``) under plain Dynamatic, the fast LSQ and PreVV, and
prints cycle counts, resource estimates and validation statistics.

    python examples/quickstart.py
"""

from repro.area import circuit_report, clock_period, execution_time_us
from repro.config import HardwareConfig
from repro.eval import run_kernel
from repro.kernels import get_kernel


def main() -> None:
    kernel = get_kernel("histogram", n=64, buckets=16)
    print(f"kernel: {kernel.name} — {kernel.description}")
    print(f"args:   {kernel.args}\n")

    header = (
        f"{'config':<12}{'cycles':>8}{'CP(ns)':>8}{'time(us)':>10}"
        f"{'LUT':>8}{'FF':>8}{'squash':>8}{'ok':>4}"
    )
    print(header)
    print("-" * len(header))
    for style, depth in [("dynamatic", 16), ("fast", 16), ("prevv", 16)]:
        config = HardwareConfig(
            name=f"{style}{depth}", memory_style=style, prevv_depth=depth
        )
        result = run_kernel(kernel, config, keep_build=True)
        report = circuit_report(result.build.circuit)
        period = clock_period(result.build.circuit)
        print(
            f"{config.name:<12}{result.cycles:>8}{period:>8.2f}"
            f"{execution_time_us(result.cycles, period):>10.2f}"
            f"{report.total.luts:>8.0f}{report.total.ffs:>8.0f}"
            f"{result.squashes:>8}{'y' if result.verified else 'N':>4}"
        )

    print("\nFinal histogram matches the golden (sequential) model:")
    print(" ", result.memory["hist"])


if __name__ == "__main__":
    main()
