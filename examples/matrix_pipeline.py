#!/usr/bin/env python3
"""Domain scenario: a chained matrix-multiply accelerator (the 2mm kernel).

Demonstrates the cross-nest disambiguation problem the paper's 2mm/3mm
rows exercise: the circuit computing ``D = (A x B) x C`` overlaps its two
loop nests, so the second nest's loads of ``tmp`` can race the first
nest's stores.  The script compares all four hardware configurations and
prints the area/latency tradeoff plus PreVV's internal statistics.

    python examples/matrix_pipeline.py [n]
"""

import sys

from repro.area import circuit_report, clock_period, execution_time_us
from repro.eval import ALL_CONFIGS, run_kernel
from repro.kernels import get_kernel


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    kernel = get_kernel("2mm", n=n)
    print(f"2mm with {n}x{n} matrices: D = (A x B) x C")
    print("cross-nest RAW hazards on the intermediate array 'tmp'\n")

    header = (
        f"{'config':<11}{'cycles':>8}{'CP(ns)':>8}{'time(us)':>10}"
        f"{'LUT':>8}{'FF':>8}{'LUT vs [15]':>13}"
    )
    print(header)
    print("-" * len(header))
    base_luts = None
    for config in ALL_CONFIGS:
        result = run_kernel(kernel, config, keep_build=True)
        assert result.verified, config.name
        report = circuit_report(result.build.circuit)
        period = clock_period(result.build.circuit)
        if base_luts is None:
            base_luts = report.total.luts
        print(
            f"{config.name:<11}{result.cycles:>8}{period:>8.2f}"
            f"{execution_time_us(result.cycles, period):>10.2f}"
            f"{report.total.luts:>8.0f}{report.total.ffs:>8.0f}"
            f"{report.total.luts / base_luts - 1:>+12.1%}"
        )
        if config.memory_style == "prevv":
            for unit in result.build.units:
                print(
                    f"    {unit.name}: processed={unit.processed_ops} "
                    f"benign-reorders={unit.benign_reorders} "
                    f"fakes={unit.fake_tokens} "
                    f"queue-peak={unit.queue.max_occupancy}/{unit.queue.depth}"
                )

    golden = kernel.golden()
    print("\nD (first row):", golden.memory["D"][:n])


if __name__ == "__main__":
    main()
