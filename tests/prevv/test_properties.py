"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow import Token, combine, merge_tags
from repro.memory import Memory
from repro.prevv import PrematureQueue, PTuple


def make_p(iteration, op="load", index=0, value=0):
    return PTuple(
        op=op, index=index, value=value, phase=0, iteration=iteration,
        rom_pos=0, domain=0, port=0,
    )


# ----------------------------------------------------------------------
# Premature queue: FIFO semantics under arbitrary push/pop interleavings
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(st.sampled_from(["push", "pop"]), max_size=60),
    depth=st.integers(min_value=1, max_value=8),
)
def test_queue_behaves_like_bounded_fifo(ops, depth):
    queue = PrematureQueue(depth)
    model = []
    counter = 0
    for op in ops:
        if op == "push" and not queue.is_full:
            queue.push(make_p(counter))
            model.append(counter)
            counter += 1
        elif op == "pop" and not queue.is_empty:
            popped = queue.pop_head()
            assert popped.iteration == model.pop(0)
        assert queue.occupancy == len(model)
        assert [e.iteration for e in queue.entries()] == model
        assert queue.is_full == (len(model) >= depth)
        assert queue.is_empty == (len(model) == 0)


@settings(max_examples=100, deadline=None)
@given(
    iterations=st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=16,
        unique=True,
    ),
    cutoff=st.integers(min_value=0, max_value=30),
)
def test_queue_remove_if_is_a_filter(iterations, cutoff):
    queue = PrematureQueue(32)
    for it in iterations:
        queue.push(make_p(it))
    removed = queue.remove_if(lambda e: e.iteration >= cutoff)
    kept = [it for it in iterations if it < cutoff]
    assert removed == len(iterations) - len(kept)
    assert [e.iteration for e in queue.entries()] == kept


# ----------------------------------------------------------------------
# Token tags: merge is max-per-domain and propagation-safe
# ----------------------------------------------------------------------
tag_dicts = st.dictionaries(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=100),
    max_size=4,
)


@settings(max_examples=200, deadline=None)
@given(tags=st.lists(tag_dicts, min_size=1, max_size=5))
def test_merge_tags_takes_per_domain_max(tags):
    tokens = [Token(0, dict(t)) for t in tags]
    merged = merge_tags(tokens)
    for dom in merged:
        assert merged[dom] == max(t.get(dom, -1) for t in tags)
    for t in tags:
        for dom, it in t.items():
            assert merged[dom] >= it


@settings(max_examples=100, deadline=None)
@given(tags=tag_dicts, domain=st.integers(0, 4), e=st.integers(0, 100))
def test_squash_check_matches_definition(tags, domain, e):
    token = Token(1, dict(tags))
    assert token.is_squashed_by(domain, e) == (tags.get(domain, -1) >= e)


@settings(max_examples=100, deadline=None)
@given(a=tag_dicts, b=tag_dicts)
def test_combine_is_squash_monotone(a, b):
    """A combined token is squashed whenever either source would be —
    derived values never escape their sources' speculation."""
    ta, tb = Token(1, dict(a)), Token(2, dict(b))
    combined = combine(3, ta, tb)
    for domain in set(a) | set(b):
        for e in range(0, 101, 25):
            if ta.is_squashed_by(domain, e) or tb.is_squashed_by(domain, e):
                assert combined.is_squashed_by(domain, e)


# ----------------------------------------------------------------------
# Memory write log: rollback/retire leave a consistent story
# ----------------------------------------------------------------------
write_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),    # address
        st.integers(min_value=-50, max_value=50),  # value
        st.integers(min_value=0, max_value=9),     # iteration tag
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=200, deadline=None)
@given(writes=write_ops, cut=st.integers(min_value=0, max_value=9))
def test_rollback_equals_replaying_survivors(writes, cut):
    """Rolling back iterations >= cut must leave memory exactly as if only
    the surviving writes had ever executed."""
    mem = Memory({"a": 4})
    for addr, value, it in writes:
        mem.store("a", addr, value, tags={0: it})
    mem.rollback(domain=0, min_iter=cut)

    reference = Memory({"a": 4})
    for addr, value, it in writes:
        if it < cut:
            reference.store("a", addr, value, tags={0: it})
    assert mem.snapshot() == reference.snapshot()


@settings(max_examples=200, deadline=None)
@given(
    writes=write_ops,
    retire_to=st.integers(min_value=0, max_value=9),
    cut=st.integers(min_value=0, max_value=9),
)
def test_retire_then_rollback_is_consistent(writes, retire_to, cut):
    """Retiring a prefix never changes what a later rollback reconstructs
    (rollback can only target iterations >= the retirement watermark)."""
    cut = max(cut, retire_to)
    mem = Memory({"a": 4})
    for addr, value, it in writes:
        mem.store("a", addr, value, tags={0: it})
    mem.set_retired(domain=0, upto_iter=retire_to)
    mem.rollback(domain=0, min_iter=cut)

    reference = Memory({"a": 4})
    for addr, value, it in writes:
        if it < cut:
            reference.store("a", addr, value, tags={0: it})
    assert mem.snapshot() == reference.snapshot()


@settings(max_examples=100, deadline=None)
@given(writes=write_ops)
def test_full_retirement_empties_the_log(writes):
    mem = Memory({"a": 4})
    for addr, value, it in writes:
        mem.store("a", addr, value, tags={0: it})
    mem.set_retired(domain=0, upto_iter=10)
    assert mem.log_length == 0
