"""Fig. 4 premature-queue state machine tests."""

import pytest

from repro.errors import QueueOverflowError
from repro.prevv import PrematureQueue, PTuple


def make_p(iteration, op="load", index=0, value=0, rom=0):
    return PTuple(
        op=op, index=index, value=value, phase=0, iteration=iteration,
        rom_pos=rom, domain=0, port=0,
    )


class TestStates:
    def test_normal_state(self):
        q = PrematureQueue(4)
        q.push(make_p(0))
        q.push(make_p(1))
        assert not q.is_full and not q.is_empty and not q.is_wrapped
        assert q.occupancy == 2
        assert q.head == 0 and q.tail == 2

    def test_wraparound_state(self):
        """Fig. 4(b): pointers wrap past the end of the storage array."""
        q = PrematureQueue(4)
        for i in range(4):
            q.push(make_p(i))
        q.pop_head()
        q.pop_head()
        q.push(make_p(4))  # tail wraps to slot 0
        assert q.is_wrapped
        assert [e.iteration for e in q.entries()] == [2, 3, 4]

    def test_full_state_head_equals_tail(self):
        """Fig. 4(c): full queue has head == tail and must stall."""
        q = PrematureQueue(3)
        for i in range(3):
            q.push(make_p(i))
        assert q.is_full
        assert q.head == q.tail

    def test_overflow_raises(self):
        q = PrematureQueue(1)
        q.push(make_p(0))
        with pytest.raises(QueueOverflowError):
            q.push(make_p(1))

    def test_pop_empty_raises(self):
        with pytest.raises(QueueOverflowError):
            PrematureQueue(1).pop_head()

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PrematureQueue(0)


class TestOperations:
    def test_fifo_order_preserved(self):
        q = PrematureQueue(8)
        for i in range(5):
            q.push(make_p(i))
        assert q.pop_head().iteration == 0
        assert [e.iteration for e in q.entries()] == [1, 2, 3, 4]

    def test_remove_if_compacts(self):
        q = PrematureQueue(4)
        for i in range(4):
            q.push(make_p(i))
        removed = q.remove_if(lambda e: e.iteration >= 2)
        assert removed == 2
        assert q.occupancy == 2
        q.push(make_p(9))  # room reclaimed
        assert [e.iteration for e in q.entries()] == [0, 1, 9]

    def test_remove_if_preserves_wrapped_state(self):
        """Regression: a squash must not re-home a wrapped queue.

        The head pointer never moves on a squash; survivors compact
        toward the head *within the ring*, so the Fig. 4(b) wrap-around
        layout — and every observable property of the pointer state
        machine — survives exactly as the hardware's pointers would.
        """
        q = PrematureQueue(4)
        for i in range(4):
            q.push(make_p(i, index=i % 2))
        q.pop_head()
        q.pop_head()
        q.push(make_p(4, index=0))  # tail wraps to slot 0
        q.push(make_p(5, index=1))  # tail back at head: full + wrapped
        assert q.is_wrapped and q.is_full
        head_before = q.head
        removed = q.remove_if(lambda e: e.iteration == 3)
        assert removed == 1
        # Pointer state machine: head pinned, tail walked back, layout
        # still wrapped (survivor 5 compacts into the wrapped region).
        assert q.head == head_before
        assert q.is_wrapped
        assert not q.is_full
        assert [e.iteration for e in q.entries()] == [2, 4, 5]
        # Index map stayed consistent with the compacted ring.
        assert [e.iteration for e in q.entries_for(0)] == [2, 4]
        assert [e.iteration for e in q.entries_for(1)] == [5]
        # The freed slot is genuinely reusable and order is preserved.
        q.push(make_p(6, index=0))
        assert q.is_full
        assert [e.iteration for e in q.entries()] == [2, 4, 5, 6]
        assert q.pop_head().iteration == 2
        assert [e.iteration for e in q.entries_for(0)] == [4, 6]

    def test_remove_if_throwing_predicate_leaves_state_intact(self):
        q = PrematureQueue(4)
        for i in range(3):
            q.push(make_p(i))

        def boom(e):
            raise RuntimeError("doctored predicate")

        with pytest.raises(RuntimeError):
            q.remove_if(boom)
        assert q.occupancy == 3
        assert [e.iteration for e in q.entries()] == [0, 1, 2]

    def test_index_map_tracks_push_pop(self):
        q = PrematureQueue(8)
        for i in range(5):
            q.push(make_p(i, index=i % 2))
        assert [e.iteration for e in q.entries_for(0)] == [0, 2, 4]
        assert [e.iteration for e in q.entries_for(1)] == [1, 3]
        assert q.entries_for(7) == []
        q.pop_head()
        assert [e.iteration for e in q.entries_for(0)] == [2, 4]

    def test_statistics(self):
        q = PrematureQueue(2)
        q.push(make_p(0))
        q.push(make_p(1))
        q.record_full_stall()
        assert q.total_pushes == 2
        assert q.max_occupancy == 2
        assert q.full_stalls == 1

    def test_search_order_head_to_tail(self):
        """The arbiter searches 'from head to tail' (Sec. IV-A)."""
        q = PrematureQueue(3)
        q.push(make_p(5))
        q.push(make_p(6))
        q.pop_head()
        q.push(make_p(7))
        assert [e.iteration for e in q.entries()] == [6, 7]
