"""Fig. 4 premature-queue state machine tests."""

import pytest

from repro.errors import QueueOverflowError
from repro.prevv import PrematureQueue, PTuple


def make_p(iteration, op="load", index=0, value=0, rom=0):
    return PTuple(
        op=op, index=index, value=value, phase=0, iteration=iteration,
        rom_pos=rom, domain=0, port=0,
    )


class TestStates:
    def test_normal_state(self):
        q = PrematureQueue(4)
        q.push(make_p(0))
        q.push(make_p(1))
        assert not q.is_full and not q.is_empty and not q.is_wrapped
        assert q.occupancy == 2
        assert q.head == 0 and q.tail == 2

    def test_wraparound_state(self):
        """Fig. 4(b): pointers wrap past the end of the storage array."""
        q = PrematureQueue(4)
        for i in range(4):
            q.push(make_p(i))
        q.pop_head()
        q.pop_head()
        q.push(make_p(4))  # tail wraps to slot 0
        assert q.is_wrapped
        assert [e.iteration for e in q.entries()] == [2, 3, 4]

    def test_full_state_head_equals_tail(self):
        """Fig. 4(c): full queue has head == tail and must stall."""
        q = PrematureQueue(3)
        for i in range(3):
            q.push(make_p(i))
        assert q.is_full
        assert q.head == q.tail

    def test_overflow_raises(self):
        q = PrematureQueue(1)
        q.push(make_p(0))
        with pytest.raises(QueueOverflowError):
            q.push(make_p(1))

    def test_pop_empty_raises(self):
        with pytest.raises(QueueOverflowError):
            PrematureQueue(1).pop_head()

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            PrematureQueue(0)


class TestOperations:
    def test_fifo_order_preserved(self):
        q = PrematureQueue(8)
        for i in range(5):
            q.push(make_p(i))
        assert q.pop_head().iteration == 0
        assert [e.iteration for e in q.entries()] == [1, 2, 3, 4]

    def test_remove_if_compacts(self):
        q = PrematureQueue(4)
        for i in range(4):
            q.push(make_p(i))
        removed = q.remove_if(lambda e: e.iteration >= 2)
        assert removed == 2
        assert q.occupancy == 2
        q.push(make_p(9))  # room reclaimed
        assert [e.iteration for e in q.entries()] == [0, 1, 9]

    def test_statistics(self):
        q = PrematureQueue(2)
        q.push(make_p(0))
        q.push(make_p(1))
        q.record_full_stall()
        assert q.total_pushes == 2
        assert q.max_occupancy == 2
        assert q.full_stalls == 1

    def test_search_order_head_to_tail(self):
        """The arbiter searches 'from head to tail' (Sec. IV-A)."""
        q = PrematureQueue(3)
        q.push(make_p(5))
        q.push(make_p(6))
        q.pop_head()
        q.push(make_p(7))
        assert [e.iteration for e in q.entries()] == [6, 7]
