"""Unit tests for the DomainGate (tagging, replay, pruning, cascades)."""

import pytest

from repro.dataflow import Circuit, Simulator, Sink, Source, Token
from repro.errors import ValidationError
from repro.memory import Memory
from repro.prevv import DomainGate, SquashController


def gate_harness(n_lanes=2, domain=0):
    circuit = Circuit("g")
    gate = circuit.add(DomainGate("gate", domain))
    feeds = []
    sinks = []
    for lane in range(n_lanes):
        idx = gate.add_channel()
        src = circuit.add(Source(f"s{lane}", limit=0))
        queue = []
        feeds.append(queue)

        def make(src=src, queue=queue):
            def prop():
                if queue:
                    src.drive_out("out", queue[0])

            def tick():
                if queue and src.outputs["out"].fires:
                    queue.pop(0)

            return prop, tick

        src.propagate, src.tick = make()
        circuit.connect(src, "out", gate, gate.in_port(idx))
        sink = circuit.add(Sink(f"k{lane}"))
        sinks.append(sink)
        circuit.connect(gate, gate.out_port(idx), sink, "in")
    sim = Simulator(circuit, max_cycles=500)
    return gate, feeds, sinks, sim


class TestTaggingAndStorage:
    def test_tags_tokens_with_iteration(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=1)
        feeds[0].extend([Token(10), Token(11), Token(12)])
        sim.run(lambda: sinks[0].count >= 3)
        assert [t.tag(0) for t in sinks[0].received] == [0, 1, 2]
        assert gate.iterations_seen == 3
        assert gate.stored_count == 3

    def test_lanes_progress_independently(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=2)
        feeds[0].extend([Token(1), Token(2), Token(3)])
        feeds[1].extend([Token(9)])  # lane 1 lags
        sim.run(lambda: sinks[0].count >= 3)
        assert sinks[0].count == 3 and sinks[1].count == 1
        assert gate._next_iter == [3, 1]

    def test_foreign_tags_preserved(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=1)
        feeds[0].append(Token(5, {7: 42}))
        sim.run(lambda: sinks[0].count >= 1)
        token = sinks[0].received[0]
        assert token.tag(7) == 42 and token.tag(0) == 0


class TestReplay:
    def test_rewind_replays_stored_iterations(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=1)
        feeds[0].extend([Token(10), Token(11), Token(12)])
        sim.run(lambda: sinks[0].count >= 3)
        gate.rewind(1)
        sim.run(lambda: sinks[0].count >= 5)
        values = [(t.value, t.tag(0)) for t in sinks[0].received]
        assert values == [(10, 0), (11, 1), (12, 2), (11, 1), (12, 2)]
        assert gate.replayed_tokens == 2

    def test_flush_drops_derived_entries_before_rewind(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=1)
        # Entries for iterations 1 and 2 were derived from iterations 0/1.
        feeds[0].extend([Token(10), Token(11, {0: 0}), Token(12, {0: 1})])
        sim.run(lambda: sinks[0].count >= 3)
        gate.flush(0, 1)     # squash iterations >= 1
        gate.rewind(1)
        # Stored entry for iteration 1 carried tag 0 -> survives & replays;
        # iteration 2's entry carried tag 1 -> dropped (regenerates live).
        sim.run(lambda: sinks[0].count >= 4)
        assert sinks[0].received[-1].value == 11
        assert len(gate._replay[0]) == 0
        assert gate._next_iter == [2]

    def test_rewind_never_advances_a_lagging_lane(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=1)
        feeds[0].append(Token(10))
        sim.run(lambda: sinks[0].count >= 1)   # lane at iteration 1
        gate.rewind(5)                          # squash point beyond lane
        assert gate._next_iter == [1]

    def test_replay_gap_detected(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=1)
        feeds[0].extend([Token(1), Token(2), Token(3)])
        sim.run(lambda: sinks[0].count >= 3)
        # Corrupt storage: drop iteration 1 only (cannot happen via tags,
        # but the integrity check must catch it).
        gate._stored[0] = [(it, b) for it, b in gate._stored[0] if it != 1]
        with pytest.raises(ValidationError, match="replay gap"):
            gate.rewind(0)


class TestPruningAndCascades:
    def test_prune_by_watermarks(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=1)
        feeds[0].extend([Token(1), Token(2, {1: 5}), Token(3, {1: 9})])
        sim.run(lambda: sinks[0].count >= 3)
        # Own watermark passes everything; domain 1 retired below 6:
        # entry tagged {1: 9} must survive (a cascade could still flush it).
        gate.prune_by_watermarks({0: 10, 1: 6}, own_watermark=10)
        kept = [it for it, _ in gate._stored[0]]
        assert kept == [2]

    def test_contamination_reports_min_iteration(self):
        gate, feeds, sinks, sim = gate_harness(n_lanes=1)
        feeds[0].extend([Token(1), Token(2, {1: 4}), Token(3, {1: 8})])
        sim.run(lambda: sinks[0].count >= 3)
        assert gate.contamination(1, 5) == 2  # iteration 2 carries {1: 8}
        assert gate.contamination(1, 9) is None
        assert gate.contamination(3, 0) is None


class TestSquashControllerCoordination:
    def test_cascade_expands_targets(self):
        circuit = Circuit("c")
        memory = Memory({"a": 4})
        ctrl = SquashController(circuit, memory)
        inner = circuit.add(DomainGate("gi", 0))
        outer = circuit.add(DomainGate("go", 1))
        ctrl.register_gate(inner)
        ctrl.register_gate(outer)
        # Outer iteration 3's bundle derives from inner iteration 17.
        outer.add_channel()
        outer._stored[0] = [(2, Token(0, {0: 11})), (3, Token(0, {0: 17}))]
        outer._next_iter = [4]
        inner.add_channel()
        inner._stored[0] = [(12, Token(0, {0: 11, 1: 2}))]
        inner._next_iter = [18]
        ctrl.request_squash(0, 13)
        ctrl.end_of_cycle()
        # Inner squashed at 13; outer cascaded at its contaminated entry 3.
        assert ctrl.flushes_by_domain == {0: 1, 1: 1}
        assert outer._next_iter == [3]

    def test_squash_statistics(self):
        circuit = Circuit("c")
        memory = Memory({"a": 4})
        ctrl = SquashController(circuit, memory)
        gate = circuit.add(DomainGate("g", 0))
        ctrl.register_gate(gate)
        gate.add_channel()
        gate._next_iter = [10]
        memory.store("a", 0, 5, tags={0: 8})
        ctrl.request_squash(0, 7)
        ctrl.end_of_cycle()
        assert ctrl.squashes == 1
        assert ctrl.squashed_iterations == 3
        assert ctrl.rolled_back_writes == 1
        assert memory.load("a", 0) == 0
