"""Direct tests of the PreVV arbiter's validation rules (Eqs. 2-5 etc.).

A harness unit is driven without a full circuit: tokens are injected by
stubbing its port channels, so each validation rule can be exercised in
isolation.
"""


from repro.dataflow import Channel, Circuit, Source, Token
from repro.memory import Memory
from repro.prevv import PortConfig, PreVVUnit, SquashController


class Harness:
    """A 2-port (load, store) unit with manually injected packets."""

    def __init__(self, depth=8, phases=(0, 0), roms=(0, 1)):
        self.circuit = Circuit("h")
        self.memory = Memory({"a": 32})
        self.controller = SquashController(self.circuit, self.memory)
        ports = [
            PortConfig("load", "a", domain=0, phase=phases[0], rom_pos=roms[0]),
            PortConfig("store", "a", domain=0, phase=phases[1], rom_pos=roms[1]),
        ]
        self.unit = self.circuit.add(
            PreVVUnit("u", self.memory, self.controller, ports, depth)
        )
        # Wire each port channel from a silent source so validate() passes.
        for i in range(2):
            src = self.circuit.add(Source(f"s{i}", limit=0))
            self.circuit.connect(src, "out", self.unit, self.unit.port_name(i))

    def inject(self, port, index, value, iteration, version=None):
        """Simulate a packet arrival (earlier skipped slots become fakes)."""
        for gap in range(self.unit._expected[port], iteration):
            if gap not in self.unit._pending[port]:
                self.inject_fake(port, gap)
        token = Token((index, value), {0: iteration}, version)
        record = self.unit._decode(port, token)
        self.unit._pending[port][record.iteration] = record
        self.unit._np_valid = False
        if not record.fake and not record.done:
            if record.iteration > self.unit._last_real_iter[port]:
                self.unit._last_real_iter[port] = record.iteration

    def inject_fake(self, port, iteration):
        token = Token(("fake",), {0: iteration})
        record = self.unit._decode(port, token)
        self.unit._pending[port][record.iteration] = record
        self.unit._np_valid = False

    def drain(self, rounds=20):
        for _ in range(rounds):
            budget = self.unit.validations_per_cycle
            while budget:
                choice = self.unit._next_processable()
                if choice is None:
                    break
                i, rec = choice
                del self.unit._pending[i][rec.iteration]
                self.unit._np_valid = False
                squashed = self.unit._process(i, rec)
                if not squashed:
                    from repro.prevv.properties import ITER_DONE

                    self.unit._expected[i] = (
                        ITER_DONE if rec.done else rec.iteration + 1
                    )
                budget -= 1
                if squashed:
                    return

    @property
    def pending_squashes(self):
        return list(self.controller._pending)


class TestRawDetection:
    def test_stale_load_accused_by_late_store(self):
        """Eqs. 2-5: store (iter 0) arrives after a younger load that read
        a different value -> the load's iteration squashes."""
        h = Harness()
        h.memory.store("a", 3, 7, tags={0: 0})       # the store's commit
        h.inject(0, index=3, value=0, iteration=1, version=0)  # stale read
        h.drain()
        h.inject(1, index=3, value=7, iteration=0)
        h.drain()
        assert (0, 1) in h.pending_squashes
        assert h.unit.violations_by_kind["raw"] == 1

    def test_value_equal_reorder_is_benign(self):
        """The paper's value-based insight: equal values never squash."""
        h = Harness()
        h.memory.store("a", 3, 7, tags={0: 0})
        h.inject(0, index=3, value=7, iteration=1, version=5)  # read new value
        h.drain()
        h.inject(1, index=3, value=7, iteration=0)
        h.drain()
        assert not h.pending_squashes
        assert h.unit.benign_reorders >= 1

    def test_load_checks_older_queued_store_on_arrival(self):
        """Deferred case A: the store is already queued when the stale
        load's packet reaches the arbiter."""
        h = Harness()
        h.memory.store("a", 4, 9, tags={0: 0})
        h.inject(1, index=4, value=9, iteration=0)
        h.drain()
        h.inject(0, index=4, value=1, iteration=1, version=0)  # stale
        h.drain()
        assert (0, 1) in h.pending_squashes

    def test_different_index_never_conflicts(self):
        h = Harness()
        h.memory.store("a", 5, 9, tags={0: 0})
        h.inject(0, index=3, value=0, iteration=1, version=0)
        h.drain()
        h.inject(1, index=5, value=9, iteration=0)
        h.drain()
        assert not h.pending_squashes


class TestWarDetection:
    def test_older_load_that_read_too_new(self):
        """WAR: a younger store committed before an older load read."""
        h = Harness()
        record = h.memory.store("a", 2, 50, tags={0: 5})  # younger store
        h.inject(1, index=2, value=50, iteration=5)
        h.drain()
        # Older load (iteration 1) read AFTER the commit (version proves it)
        # and saw the new value 50 instead of the old 0.
        h.inject(0, index=2, value=50, iteration=1, version=record.serial)
        h.drain()
        assert (0, 1) in h.pending_squashes

    def test_older_load_that_read_before_commit_is_fine(self):
        h = Harness()
        h.memory.store("a", 2, 50, tags={0: 5})
        h.inject(1, index=2, value=50, iteration=5)
        h.drain()
        # Load read the old value before the commit: consistent.
        h.inject(0, index=2, value=0, iteration=1, version=0)
        h.drain()
        assert not h.pending_squashes


class TestFakesAndRetirement:
    def test_fake_advances_iteration(self):
        h = Harness()
        h.inject_fake(0, 0)
        h.inject_fake(0, 1)
        h.drain()
        assert h.unit._expected[0] == 2
        assert h.unit.fake_tokens == 2

    def test_entries_retire_once_both_sides_pass(self):
        # ROM order: store (rom 1) before load (rom 2), as in an iteration
        # that stores x[i] and a later statement reads it back.
        h = Harness(roms=(2, 1))
        record = h.memory.store("a", 1, 5, tags={0: 0})
        h.inject(1, index=1, value=5, iteration=0)
        h.inject(0, index=1, value=5, iteration=0, version=record.serial)
        h.drain()
        assert h.unit.queue.occupancy == 2
        h.inject_fake(0, 1)
        h.inject_fake(1, 1)
        h.drain()
        h.unit._retire()
        assert h.unit.queue.occupancy == 0

    def test_queue_full_asserts_backpressure(self):
        h = Harness(depth=2)
        for it in range(2):
            h.memory.store("a", 10 + it, it, tags={0: it})
            h.inject(1, index=10 + it, value=it, iteration=it)
        h.drain()
        assert h.unit.queue.is_full

    def test_reorder_window_rejects_far_future(self):
        """Acceptance refuses records beyond expected + window."""
        h = Harness()
        ch = Channel("probe")
        ch.valid = True
        ch.data = Token((1, 1), {0: h.unit.reorder_window + 5})
        ch.consumer = h.unit
        ch.consumer_port = h.unit.port_name(0)
        assert not h.unit._accepts(0, ch)

    def test_positions_order_phases_lexicographically(self):
        h = Harness(phases=(1, 0))
        h.memory.store("a", 3, 8, tags={0: 0})
        h.inject(1, index=3, value=8, iteration=0)   # store in phase 0
        h.drain()
        # Load in phase 1, iteration 0: later in program order than any
        # phase-0 operation despite the equal iteration number.
        h.inject(0, index=3, value=0, iteration=0, version=0)  # stale
        h.drain()
        assert (0, 0) in h.pending_squashes
