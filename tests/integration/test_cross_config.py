"""Integration: every kernel x every configuration verifies against golden.

This is the reproduction's equivalent of the paper's ModelSim-vs-C++
co-simulation check, run at reduced kernel sizes for test speed.
"""

import pytest

from repro.config import HardwareConfig
from repro.eval import run_kernel
from repro.kernels import get_kernel

SIZES = {
    "polyn_mult": {"n": 10},
    "2mm": {"n": 4},
    "3mm": {"n": 4},
    "gaussian": {"n": 6},
    "triangular": {"n": 12},
    "vadd": {"n": 16},
    "histogram": {"n": 24},
    "fig2a": {},
    "fig2b": {},
    "recurrence": {"n": 16},
}

CONFIGS = [
    HardwareConfig(name="dynamatic", memory_style="dynamatic"),
    HardwareConfig(name="fast", memory_style="fast"),
    HardwareConfig(name="prevv4", memory_style="prevv", prevv_depth=4),
    HardwareConfig(name="prevv16", memory_style="prevv", prevv_depth=16),
]


@pytest.mark.parametrize("kernel_name", sorted(SIZES))
@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_kernel_verifies(kernel_name, config):
    kernel = get_kernel(kernel_name, **SIZES[kernel_name])
    result = run_kernel(kernel, config, max_cycles=300_000)
    assert result.verified, (
        f"{kernel_name} under {config.name}:\n{result.mismatch_summary}"
    )


class TestSpeculationBehaviour:
    def test_recurrence_squashes_and_recovers(self):
        """The adversarial distance-1 recurrence: every premature load is
        stale, so PreVV must squash repeatedly yet still converge."""
        kernel = get_kernel("recurrence", n=16)
        result = run_kernel(
            kernel,
            HardwareConfig(name="p4", memory_style="prevv", prevv_depth=4),
        )
        assert result.verified
        assert result.squashes > 0
        assert result.violations_by_kind.get("raw", 0) > 0

    def test_lsq_styles_never_squash(self):
        kernel = get_kernel("recurrence", n=16)
        result = run_kernel(
            kernel, HardwareConfig(name="d", memory_style="dynamatic")
        )
        assert result.verified and result.squashes == 0

    def test_fast_lsq_not_slower_than_dynamatic(self):
        kernel = get_kernel("histogram", n=24)
        slow = run_kernel(
            kernel, HardwareConfig(name="d", memory_style="dynamatic")
        )
        fast = run_kernel(kernel, HardwareConfig(name="f", memory_style="fast"))
        assert fast.cycles <= slow.cycles

    def test_depth_reduces_full_stalls(self):
        kernel = get_kernel("gaussian", n=8)
        small = run_kernel(
            kernel, HardwareConfig(name="p2", memory_style="prevv",
                                   prevv_depth=2)
        )
        large = run_kernel(
            kernel, HardwareConfig(name="p64", memory_style="prevv",
                                   prevv_depth=64)
        )
        assert small.verified and large.verified
        assert small.queue_full_stalls > large.queue_full_stalls
        assert small.cycles >= large.cycles

    def test_benign_value_reorders_do_not_squash(self):
        """Storing the same value that was already there: reorders are
        value-equal, so validation never squashes (the paper's key win)."""
        from repro.ir import Function, IRBuilder
        from repro.kernels import Kernel, NestBuilder

        def build(kernel):
            fn = Function("samestore")
            b = IRBuilder(fn)
            n = b.arg("n")
            t = b.array("t", 64)
            b.at(b.block("entry"))
            nest = NestBuilder(b)
            i = nest.open_loop("i", n).iv
            value = b.load(t, i)
            b.store(t, b.add(i, 1), value)  # t preloaded with equal values
            nest.close_loop()
            b.ret()
            return fn

        kernel = Kernel(
            name="samestore",
            description="t[i+1] = t[i] over constant data",
            builder=build,
            args={"n": 20},
            memory_init={"t": [9] * 64},
        )
        result = run_kernel(
            kernel, HardwareConfig(name="p8", memory_style="prevv",
                                   prevv_depth=8)
        )
        assert result.verified
        assert result.squashes == 0
        assert result.benign_reorders > 0
