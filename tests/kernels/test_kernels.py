"""Tests for the benchmark kernels: golden semantics and analysis shape."""

import pytest

from repro.analysis import analyze_function, reduce_pairs
from repro.ir import verify_function
from repro.kernels import PAPER_KERNELS, get_kernel, kernel_names, lcg_values


class TestRegistry:
    def test_all_paper_kernels_registered(self):
        for name in PAPER_KERNELS:
            assert name in kernel_names()

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("nope")

    def test_overrides_resize_inputs(self):
        small = get_kernel("polyn_mult", n=8)
        assert small.args["n"] == 8
        assert len(small.memory_init["a"]) == 8

    def test_lcg_deterministic_and_bounded(self):
        a = lcg_values(100, seed=5, lo=2, hi=7)
        b = lcg_values(100, seed=5, lo=2, hi=7)
        assert a == b
        assert all(2 <= v <= 7 for v in a)

    def test_duplicate_registration_raises(self):
        from repro.kernels.base import register_kernel

        taken = kernel_names()[0]
        with pytest.raises(ValueError, match="already registered"):
            register_kernel(taken)(lambda: None)
        # the rejected factory must not have clobbered the original
        assert get_kernel(taken).name == taken


class TestIRWellFormed:
    @pytest.mark.parametrize("name", sorted({*PAPER_KERNELS, "vadd",
                                             "histogram", "fig2a", "fig2b",
                                             "recurrence"}))
    def test_verifies(self, name):
        kernel = get_kernel(name)
        verify_function(kernel.build_ir())


class TestGoldenSemantics:
    def test_polyn_mult_matches_reference(self):
        kernel = get_kernel("polyn_mult", n=6)
        golden = kernel.golden()
        a, b = kernel.memory_init["a"], kernel.memory_init["b"]
        expected = [0] * 12
        for i in range(6):
            for j in range(6):
                expected[i + j] += a[i] * b[j]
        assert golden.memory["c"] == expected

    def test_2mm_matches_reference(self):
        kernel = get_kernel("2mm", n=4)
        golden = kernel.golden()
        n = 4
        A, B, C = (kernel.memory_init[k] for k in ("A", "B", "C"))
        tmp = [
            sum(A[i * n + k] * B[k * n + j] for k in range(n))
            for i in range(n) for j in range(n)
        ]
        D = [
            sum(tmp[i * n + k] * C[k * n + j] for k in range(n))
            for i in range(n) for j in range(n)
        ]
        assert golden.memory["D"] == D

    def test_gaussian_zeroes_below_diagonal_region(self):
        """After elimination, A[j][i] for j > i becomes small/zero-ish in
        the integer-truncated sense; just check it ran and changed A."""
        kernel = get_kernel("gaussian", n=5)
        golden = kernel.golden()
        assert golden.memory["A"] != kernel.memory_init["A"]

    def test_triangular_solves_the_system(self):
        kernel = get_kernel("triangular", n=8)
        golden = kernel.golden()
        n = 8
        L = kernel.memory_init["L"]
        rhs = kernel.memory_init["rhs"]
        x = golden.memory["x"]
        for i in range(n):
            total = sum(L[i * n + j] * x[j] for j in range(i))
            assert x[i] == rhs[i] - total  # unit diagonal

    def test_3mm_consistent_with_2mm_structure(self):
        kernel = get_kernel("3mm", n=3)
        golden = kernel.golden()
        assert any(v != 0 for v in golden.memory["G"])


class TestAnalysisShape:
    def test_polyn_mult_has_c_conflicts_only(self):
        analysis = analyze_function(get_kernel("polyn_mult", n=6).build_ir())
        assert analysis.conflicted_arrays == {"c"}

    def test_2mm_conflicts_on_tmp_only(self):
        analysis = analyze_function(get_kernel("2mm", n=4).build_ir())
        assert analysis.conflicted_arrays == {"tmp"}

    def test_3mm_conflicts_on_both_intermediates(self):
        analysis = analyze_function(get_kernel("3mm", n=4).build_ir())
        assert analysis.conflicted_arrays == {"E", "F"}

    def test_gaussian_single_group_five_ops(self):
        fn = get_kernel("gaussian", n=5).build_ir()
        groups = reduce_pairs(analyze_function(fn))
        assert len(groups) == 1
        assert groups[0].array == "A"
        assert len(groups[0].loads) == 4
        assert len(groups[0].stores) == 1

    def test_vadd_is_hazard_free(self):
        analysis = analyze_function(get_kernel("vadd", n=8).build_ir())
        assert not analysis.pairs
