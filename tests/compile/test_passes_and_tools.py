"""Tests for the pass pipeline, LSQ sizing, visualization and report tools."""


from repro.compile import CompilationReport, run_pipeline
from repro.config import HardwareConfig
from repro.dataflow import to_dot
from repro.kernels import get_kernel
from repro.lsq import size_lsq

PREVV = HardwareConfig(name="p8", memory_style="prevv", prevv_depth=8)
DYN = HardwareConfig(name="d", memory_style="dynamatic")


class TestPipeline:
    def test_pipeline_reports_all_stages(self):
        kernel = get_kernel("histogram", n=16)
        report = run_pipeline(kernel.build_ir(), PREVV, args=kernel.args)
        assert isinstance(report, CompilationReport)
        assert report.needs_disambiguation
        assert len(report.groups) == 1
        assert report.suggested_depth is not None
        assert report.build.units
        text = report.summary()
        assert "ambiguous pairs: 1" in text
        assert "PreVV units" in text

    def test_pipeline_hazard_free(self):
        kernel = get_kernel("vadd", n=8)
        report = run_pipeline(kernel.build_ir(), DYN, args=kernel.args)
        assert not report.needs_disambiguation
        assert report.suggested_depth is None
        assert not report.build.lsqs

    def test_pipeline_lsq_style_has_no_depth_suggestion(self):
        kernel = get_kernel("histogram", n=16)
        report = run_pipeline(kernel.build_ir(), DYN, args=kernel.args)
        assert report.suggested_depth is None
        assert report.build.lsqs


class TestLsqSizing:
    def test_sweep_finds_knee(self):
        result = size_lsq(get_kernel("histogram", n=24), depths=(2, 4, 8))
        assert [p.depth for p in result.points] == [2, 4, 8]
        assert result.chosen_depth in (2, 4, 8)
        # Area grows with depth.
        assert result.points[0].luts < result.points[-1].luts
        # The chosen depth preserves throughput within the slack.
        chosen = next(
            p for p in result.points if p.depth == result.chosen_depth
        )
        assert chosen.cycles <= result.baseline_cycles * 1.02 + 1
        assert str(result.chosen_depth) in result.summary()


class TestVisualization:
    def test_dot_export_structure(self):
        kernel = get_kernel("histogram", n=8)
        report = run_pipeline(kernel.build_ir(), PREVV, args=kernel.args)
        dot = to_dot(report.build.circuit)
        assert dot.startswith("digraph circuit {")
        assert dot.rstrip().endswith("}")
        assert "prevv_hist" in dot
        assert "->" in dot
        # Slack buffers are collapsed by default...
        assert "slk_" not in dot
        # ...but can be included.
        full = to_dot(report.build.circuit, include_slack=True)
        assert "slk_" in full
        # Back-edges are dashed.
        assert "style=dashed" in dot


class TestReportTool:
    def test_area_only_report(self, monkeypatch):
        import repro.eval.figures as figures_mod
        import repro.eval.report as report_mod
        import repro.eval.tables as tables_mod

        def small(name, **kw):
            return get_kernel(name, n=16) if name == "histogram" else None

        monkeypatch.setattr(tables_mod, "get_kernel", small)
        monkeypatch.setattr(figures_mod, "get_kernel", small)
        text = report_mod.generate_report(
            kernels=["histogram"], include_timing=False
        )
        assert "# PreVV reproduction report" in text
        assert "Table I" in text and "Fig. 7" in text
        assert "Table II" not in text
