"""Tests for the elastic circuit builder."""

import pytest

from repro.compile import compile_function
from repro.config import HardwareConfig
from repro.dataflow import Fork, Simulator
from repro.errors import CompileError, ConfigError
from repro.eval.runner import make_done_condition
from repro.ir import Function, IRBuilder, run_golden
from repro.kernels import NestBuilder, get_kernel

NONE_CFG = HardwareConfig(name="none", memory_style="none")
DYN = HardwareConfig(name="dyn", memory_style="dynamatic")
PREVV = HardwareConfig(name="pv", memory_style="prevv", prevv_depth=8)


def build_vadd(n_elems=8):
    fn = Function("vadd")
    b = IRBuilder(fn)
    n = b.arg("n")
    a, bb, c = b.array("a", n_elems), b.array("b", n_elems), b.array("c", n_elems)
    b.at(b.block("entry"))
    nest = NestBuilder(b)
    i = nest.open_loop("i", n).iv
    b.store(c, i, b.add(b.load(a, i), b.load(bb, i)))
    nest.close_loop()
    b.ret()
    return fn


def simulate(build, memory_init, max_cycles=50_000):
    build.memory.initialize(memory_init)
    sim = Simulator(build.circuit, max_cycles=max_cycles, deadlock_window=128)
    if build.squash_controller is not None:
        sim.end_of_cycle_hooks.append(build.squash_controller.end_of_cycle)
    sim.run(make_done_condition(build))
    return sim


class TestBuilderBasics:
    def test_vadd_compiles_and_validates(self):
        build = compile_function(build_vadd(), NONE_CFG, args={"n": 4})
        assert build.circuit.components
        assert build.controllers and not build.lsqs and not build.units

    def test_unbound_argument_rejected(self):
        with pytest.raises(CompileError, match="must be bound"):
            compile_function(build_vadd(), NONE_CFG, args={})

    def test_none_style_refuses_hazards(self):
        kernel = get_kernel("histogram", n=8)
        with pytest.raises(CompileError, match="unsound"):
            compile_function(kernel.build_ir(), NONE_CFG, args=kernel.args)

    def test_hazard_free_kernel_gets_no_lsq_under_dynamatic(self):
        build = compile_function(build_vadd(), DYN, args={"n": 4})
        assert not build.lsqs  # vadd has no conflicted arrays

    def test_conflicted_array_gets_lsq(self):
        kernel = get_kernel("histogram", n=8)
        build = compile_function(kernel.build_ir(), DYN, args=kernel.args)
        assert len(build.lsqs) == 1
        assert build.lsqs[0].array == "hist"

    def test_prevv_style_creates_unit_and_gate(self):
        kernel = get_kernel("histogram", n=8)
        build = compile_function(kernel.build_ir(), PREVV, args=kernel.args)
        assert len(build.units) == 1
        assert build.units[0].queue.depth == 8
        assert build.gates  # one domain gate for the loop
        assert build.squash_controller is not None

    def test_every_port_connected(self):
        kernel = get_kernel("gaussian", n=4)
        build = compile_function(kernel.build_ir(), PREVV, args=kernel.args)
        for comp in build.circuit.components:
            for port in comp.expected_inputs():
                assert port in comp.inputs, (comp.name, port)

    def test_forks_inserted_for_fanout(self):
        build = compile_function(build_vadd(), NONE_CFG, args={"n": 4})
        assert build.circuit.components_of(Fork)

    def test_backedge_channels_marked(self):
        build = compile_function(build_vadd(), NONE_CFG, args={"n": 4})
        backedges = [c for c in build.circuit.channels if c.is_backedge]
        assert backedges


class TestEndToEnd:
    def test_vadd_matches_golden(self):
        fn = build_vadd()
        init = {"a": [1, 2, 3, 4], "b": [9, 8, 7, 6]}
        golden = run_golden(fn, args={"n": 4}, memory=init)
        build = compile_function(build_vadd(), NONE_CFG, args={"n": 4})
        simulate(build, init)
        assert build.memory.snapshot()["c"] == golden.memory["c"]

    @pytest.mark.parametrize("style", ["dynamatic", "fast", "prevv"])
    def test_histogram_all_styles(self, style):
        kernel = get_kernel("histogram", n=16)
        cfg = HardwareConfig(name=style, memory_style=style, prevv_depth=8)
        build = compile_function(kernel.build_ir(), cfg, args=kernel.args)
        simulate(build, kernel.memory_init)
        golden = kernel.golden()
        assert build.memory.snapshot()["hist"] == golden.memory["hist"]

    def test_conditional_kernel_fake_tokens_flow(self):
        kernel = get_kernel("triangular", n=6)
        build = compile_function(kernel.build_ir(), PREVV, args=kernel.args)
        simulate(build, kernel.memory_init)
        assert sum(u.fake_tokens for u in build.units) > 0

    def test_multi_nest_kernel_cross_phase(self):
        kernel = get_kernel("2mm", n=4)
        build = compile_function(kernel.build_ir(), PREVV, args=kernel.args)
        phases = {
            cfg.phase for unit in build.units for cfg in unit.ports
        }
        assert len(phases) == 2  # producer nest and consumer nest
        simulate(build, kernel.memory_init)
        golden = kernel.golden()
        assert build.memory.snapshot()["D"] == golden.memory["D"]


class TestConfig:
    def test_unknown_style_rejected(self):
        with pytest.raises(ConfigError):
            HardwareConfig(memory_style="magic")

    def test_alloc_latency_defaults(self):
        assert HardwareConfig(memory_style="dynamatic").effective_alloc_latency == 3
        assert HardwareConfig(memory_style="fast").effective_alloc_latency == 1

    def test_with_override(self):
        cfg = HardwareConfig(memory_style="prevv").with_(prevv_depth=64)
        assert cfg.prevv_depth == 64
