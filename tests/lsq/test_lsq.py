"""Unit tests for the load-store queue baselines."""


from repro.dataflow import Circuit, Simulator, Sink, Source, Token
from repro.lsq import GroupSpec, LoadStoreQueue, make_dynamatic_lsq, make_fast_lsq
from repro.memory import Memory


class Harness:
    """One-load, one-store LSQ with scriptable port streams."""

    def __init__(self, alloc_latency=1, depth=4, init=None):
        self.circuit = Circuit("h")
        self.memory = Memory({"a": 16})
        if init:
            self.memory.initialize({"a": init})
        self.lsq = self.circuit.add(
            LoadStoreQueue(
                "lsq", self.memory, "a", n_loads=1, n_stores=1,
                groups=[GroupSpec([("load", 0), ("store", 0)])],
                depth_loads=depth, depth_stores=depth,
                alloc_latency=alloc_latency,
            )
        )
        self.streams = {}
        for port, name in [
            ("group0", "g"), ("ld0_addr", "la"),
            ("st0_addr", "sa"), ("st0_data", "sd"),
        ]:
            src = self.circuit.add(Source(name, limit=0))
            queue = []
            self.streams[port] = queue

            def make_prop(src=src, queue=queue):
                def prop():
                    if queue:
                        src.drive_out("out", Token(queue[0]))
                return prop

            def make_tick(src=src, queue=queue):
                def tick():
                    if queue and src.outputs["out"].fires:
                        queue.pop(0)
                return tick

            src.propagate = make_prop()
            src.tick = make_tick()
            self.circuit.connect(src, "out", self.lsq, port)
        self.sink = self.circuit.add(Sink("data"))
        self.circuit.connect(self.lsq, "ld0_data", self.sink, "in")
        self.sim = Simulator(self.circuit, max_cycles=2000)

    def feed(self, port, *values):
        self.streams[port].extend(values)

    def feed_iteration(self, ld_addr, st_addr, st_data):
        self.feed("group0", None)
        self.feed("ld0_addr", ld_addr)
        self.feed("st0_addr", st_addr)
        self.feed("st0_data", st_data)

    def run(self, cycles=60):
        self.sim.run_cycles(cycles)


class TestBasicOrdering:
    def test_load_reads_memory_when_no_older_store_matches(self):
        h = Harness(init=[10, 11, 12, 13])
        h.feed_iteration(ld_addr=2, st_addr=5, st_data=99)
        h.run()
        assert h.sink.values == [12]
        assert h.memory.load("a", 5) == 99

    def test_load_forwards_from_older_matching_store(self):
        """Same iteration: store before load in group order? Our group is
        load-then-store, so use two iterations: store@1 in iter 0, load@1
        in iter 1 must see the stored value even if it never hit RAM yet."""
        h = Harness(init=[0] * 8)
        h.feed_iteration(ld_addr=7, st_addr=1, st_data=55)   # iter 0
        h.feed_iteration(ld_addr=1, st_addr=6, st_data=66)   # iter 1: RAW
        h.run()
        assert h.sink.values == [0, 55]
        assert h.lsq.committed_stores == 2

    def test_load_waits_for_unknown_older_store_address(self):
        h = Harness(init=[1, 2, 3, 4])
        # iter 0: the store address arrives very late.
        h.feed("group0", None)
        h.feed("ld0_addr", 0)
        h.feed("st0_data", 77)
        # iter 1's load would race the unknown store address.
        h.feed("group0", None)
        h.feed("ld0_addr", 3)
        h.run(10)
        first_count = h.sink.count   # iter-0 load may issue, iter-1 not
        assert first_count <= 1
        h.feed("st0_addr", 3)        # now iter-0's store targets addr 3!
        h.feed("st0_addr", 0)
        h.feed("st0_data", 88)
        h.run()
        # iter-1's load of addr 3 must observe iter-0's store (77).
        assert h.sink.values == [1, 77]

    def test_stores_commit_in_program_order(self):
        h = Harness(init=[0] * 8)
        h.feed_iteration(ld_addr=7, st_addr=2, st_data=10)
        h.feed_iteration(ld_addr=7, st_addr=2, st_data=20)
        h.run()
        assert h.memory.load("a", 2) == 20
        assert h.lsq.committed_stores == 2

    def test_responses_delivered_in_program_order_per_port(self):
        """Out-of-order issue must still deliver port responses in order:
        iter-1's load forwards from iter-0's store whose *data* is late,
        iter-2's independent load issues first — yet the sink must see
        iter-1's value before iter-2's."""
        h = Harness(init=[5, 6, 7, 8])
        h.feed("group0", None)          # iter 0: store addr known, data late
        h.feed("ld0_addr", 3)
        h.feed("st0_addr", 1)
        h.feed("group0", None)          # iter 1: load 1 waits on the data
        h.feed("ld0_addr", 1)
        h.feed("st0_addr", 7)
        h.feed("st0_data", 0)           # (this data pairs with iter 0's store)
        h.run(15)
        # iter-0's load delivered; iter-1 blocked; so at most one response.
        # (iter-0's store got data=0 -> wait, the first st0_data pairs with
        # iter 0: so iter-1's load forwards 0 once... feed iteration 2 now.)
        h.feed("group0", None)          # iter 2: independent load
        h.feed("ld0_addr", 2)
        h.feed("st0_addr", 6)
        h.feed("st0_data", 9)
        h.run()
        # Port order: iter0 ld3=8, iter1 ld1=forwarded 0, iter2 ld2=7.
        assert h.sink.values == [8, 0, 7]


class TestAllocation:
    def test_capacity_backpressures_groups(self):
        h = Harness(depth=2)
        for _ in range(5):
            h.feed("group0", None)
        h.run(30)
        # Only two iterations' entries fit; group channel stalls.
        loads, stores = h.lsq._reserved()
        assert loads <= 2 and stores <= 2
        assert h.lsq.alloc_stalls > 0

    def test_alloc_latency_delays_entry_visibility(self):
        slow = Harness(alloc_latency=4)
        slow.feed("group0", None)
        slow.feed("ld0_addr", 0)
        slow.run(2)
        assert slow.sink.count == 0  # entries not materialized yet

    def test_factories(self):
        mem = Memory({"a": 4})
        groups = [GroupSpec([("load", 0)])]
        dyn = make_dynamatic_lsq("d", mem, "a", 1, 0, groups)
        fast = make_fast_lsq("f", mem, "a", 1, 0, groups)
        assert dyn.alloc_latency > fast.alloc_latency
        assert dyn.style == "dynamatic" and fast.style == "fast"

    def test_group_spec_counts(self):
        spec = GroupSpec([("load", 0), ("store", 0), ("load", 1)])
        assert spec.n_loads == 2 and spec.n_stores == 1
