"""Tests for the RAM model (including speculative write log) and controller."""

import pytest

from repro.dataflow import Circuit, Simulator, Sink, Source
from repro.errors import MemoryError_
from repro.memory import Memory, MemoryController


class TestMemoryBasics:
    def test_load_store_roundtrip(self):
        mem = Memory({"a": 4})
        mem.store("a", 2, 99)
        assert mem.load("a", 2) == 99

    def test_initialize_and_snapshot(self):
        mem = Memory({"a": 4, "b": 2})
        mem.initialize({"a": [1, 2]})
        assert mem.snapshot() == {"a": [1, 2, 0, 0], "b": [0, 0]}

    def test_bounds_checked(self):
        mem = Memory({"a": 2})
        with pytest.raises(MemoryError_):
            mem.load("a", 2)
        with pytest.raises(MemoryError_):
            mem.store("a", -1, 0)

    def test_unknown_array(self):
        with pytest.raises(MemoryError_):
            Memory({"a": 2}).load("b", 0)

    def test_oversized_init_rejected(self):
        with pytest.raises(MemoryError_):
            Memory({"a": 2}).initialize({"a": [1, 2, 3]})


class TestRollback:
    def test_simple_rollback_restores_old_value(self):
        mem = Memory({"a": 4})
        mem.initialize({"a": [5, 5, 5, 5]})
        mem.store("a", 1, 10, tags={0: 3})
        assert mem.rollback(domain=0, min_iter=3) == 1
        assert mem.load("a", 1) == 5
        assert mem.log_length == 0

    def test_rollback_keeps_earlier_iterations(self):
        mem = Memory({"a": 2})
        mem.store("a", 0, 10, tags={0: 1})
        mem.store("a", 0, 20, tags={0: 5})
        mem.rollback(domain=0, min_iter=5)
        assert mem.load("a", 0) == 10

    def test_rollback_with_interleaved_survivor(self):
        """Squashed write followed by a surviving non-squashed write."""
        mem = Memory({"a": 1})
        mem.store("a", 0, 20, tags={0: 9})   # squashed later
        mem.store("a", 0, 30, tags={0: 2})   # survives
        mem.rollback(domain=0, min_iter=9)
        assert mem.load("a", 0) == 30

    def test_rollback_then_second_rollback_sees_consistent_chain(self):
        """Regression: excising a middle write must re-chain old_values."""
        mem = Memory({"a": 1})
        mem.initialize({"a": [5]})
        mem.store("a", 0, 20, tags={0: 9})   # will be squashed
        mem.store("a", 0, 30, tags={0: 2})   # survives round 1
        mem.rollback(domain=0, min_iter=9)
        assert mem.load("a", 0) == 30
        # Now squash the survivor too: must restore the ORIGINAL 5, not 20.
        mem.rollback(domain=0, min_iter=2)
        assert mem.load("a", 0) == 5

    def test_rollback_other_domain_untouched(self):
        mem = Memory({"a": 1})
        mem.store("a", 0, 7, tags={1: 10})
        assert mem.rollback(domain=0, min_iter=0) == 0
        assert mem.load("a", 0) == 7

    def test_retire_prunes_log_but_preserves_history(self):
        mem = Memory({"a": 1})
        mem.initialize({"a": [5]})
        mem.store("a", 0, 10, tags={0: 0})
        mem.store("a", 0, 20, tags={0: 1})
        assert mem.set_retired(domain=0, upto_iter=1) == 1
        assert mem.log_length == 1
        # Rolling back iteration 1 must now restore the retired value 10,
        # not the original 5.
        mem.rollback(domain=0, min_iter=1)
        assert mem.load("a", 0) == 10

    def test_untagged_writes_never_rolled_back(self):
        mem = Memory({"a": 1})
        mem.store("a", 0, 42)  # plain write, no domain
        mem.rollback(domain=0, min_iter=0)
        assert mem.load("a", 0) == 42


class TestMemoryController:
    def _controller_circuit(self, latency=1):
        mem = Memory({"a": 8})
        mem.initialize({"a": list(range(8))})
        circuit = Circuit("mc")
        mc = circuit.add(
            MemoryController(
                "mc", mem, "a", n_loads=1, n_stores=1, load_latency=latency
            )
        )
        return circuit, mc, mem

    def test_load_returns_after_latency(self):
        circuit, mc, _ = self._controller_circuit(latency=1)
        addr = circuit.add(Source("addr", value=3, limit=1))
        sink = circuit.add(Sink("data"))
        circuit.connect(addr, "out", mc, "ld0_addr")
        circuit.connect(mc, "ld0_data", sink, "in")
        # Store ports must be wired; keep them silent.
        sa = circuit.add(Source("sa", value=0, limit=0))
        sd = circuit.add(Source("sd", value=0, limit=0))
        circuit.connect(sa, "out", mc, "st0_addr")
        circuit.connect(sd, "out", mc, "st0_data")
        sim = Simulator(circuit)
        sim.step()
        assert sink.count == 0
        sim.step()
        assert sink.values == [3]

    def test_store_commits_to_memory(self):
        circuit, mc, mem = self._controller_circuit()
        la = circuit.add(Source("la", value=0, limit=0))
        sink = circuit.add(Sink("data"))
        circuit.connect(la, "out", mc, "ld0_addr")
        circuit.connect(mc, "ld0_data", sink, "in")
        sa = circuit.add(Source("sa", value=5, limit=1))
        sd = circuit.add(Source("sd", value=77, limit=1))
        circuit.connect(sa, "out", mc, "st0_addr")
        circuit.connect(sd, "out", mc, "st0_data")
        Simulator(circuit).run_cycles(3)
        assert mem.load("a", 5) == 77
        assert mc.committed_stores == 1

    def test_pipelined_loads_sustain_full_rate(self):
        circuit, mc, _ = self._controller_circuit(latency=1)
        addr = circuit.add(Source("addr", value=2, limit=5))
        sink = circuit.add(Sink("data"))
        circuit.connect(addr, "out", mc, "ld0_addr")
        circuit.connect(mc, "ld0_data", sink, "in")
        sa = circuit.add(Source("sa", value=0, limit=0))
        sd = circuit.add(Source("sd", value=0, limit=0))
        circuit.connect(sa, "out", mc, "st0_addr")
        circuit.connect(sd, "out", mc, "st0_data")
        sim = Simulator(circuit)
        sim.run(lambda: sink.count >= 5)
        # 5 loads, latency 1, II=1: finished within ~7 cycles.
        assert sim.stats.cycles <= 7
