"""The random kernel generator: determinism, validity, serializability.

The fuzzer is only a regression tool if a (seed, index) pair names one
kernel forever: the corpus provenance, the CI smoke job and any bug
report quoting a seed all rely on replayability.  These tests pin that
property end to end — equal specs, equal circuits (same
``structural_key``), identical golden runs — and check that every
generated spec passes its own validator and survives a JSON round trip.
"""

import json

import pytest

from repro.compile import compile_function
from repro.dataflow.codegen import structural_key
from repro.fuzz import (
    generate_spec,
    instruction_count,
    spec_from_dict,
    spec_to_kernel,
    validate_spec,
)
from repro.fuzz.harness import configs_from_names

#: a small but varied sample of the (seed, index) space
POINTS = [(0, 0), (0, 1), (9, 0), (9, 7), (3, 15), (1234, 2)]


@pytest.mark.parametrize("seed,index", POINTS)
def test_same_seed_same_spec(seed, index):
    a = generate_spec(seed, index)
    b = generate_spec(seed, index)
    assert a.to_dict() == b.to_dict()
    assert a.name == b.name == f"fuzz_s{seed}_k{index}"


@pytest.mark.parametrize("seed,index", POINTS)
def test_same_seed_same_circuit_and_golden(seed, index):
    """Two independent generations compile to the same structural key
    and produce bit-identical interpreter runs."""
    config = configs_from_names(["dynamatic"])[0]
    keys, goldens = [], []
    for _ in range(2):
        kernel = spec_to_kernel(generate_spec(seed, index))
        build = compile_function(
            kernel.build_ir(), config, args=kernel.args
        )
        keys.append(structural_key(build.circuit))
        goldens.append(kernel.golden().memory)
    assert keys[0] == keys[1]
    assert goldens[0] == goldens[1]


def test_distinct_indices_distinct_kernels():
    """Adjacent indices must not collapse onto one kernel (the per-index
    stream split ``(seed << 20) ^ index`` would be broken)."""
    dicts = [generate_spec(5, i).to_dict() for i in range(8)]
    serialized = {json.dumps(d, sort_keys=True) for d in dicts}
    assert len(serialized) >= 6  # rare shape collisions allowed


@pytest.mark.parametrize("seed", [0, 1, 2, 9])
def test_generated_specs_validate_and_roundtrip(seed):
    for index in range(10):
        spec = generate_spec(seed, index)
        validate_spec(spec)  # raises on an out-of-bounds subscript
        assert instruction_count(spec) > 0
        clone = spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.to_dict() == spec.to_dict()


@pytest.mark.parametrize("seed", [0, 7])
def test_generated_kernels_have_runnable_golden(seed):
    """Every generated spec builds IR and completes an interpreter run
    (bounded loops, in-range subscripts, non-empty memory)."""
    for index in range(5):
        kernel = spec_to_kernel(generate_spec(seed, index))
        golden = kernel.golden()
        assert golden.memory
        assert all(
            isinstance(v, int) for vs in golden.memory.values() for v in vs
        )
