"""Replay every committed corpus entry through the full harness.

The corpus is the fuzzer's long-term memory, and its ``status`` field
carries the contract (see :mod:`repro.fuzz.corpus`):

* ``guard`` entries are fixed (or sabotage-induced) failures — replay
  must be **clean**, so a regression reopens as a red tier-1 test;
* ``open`` entries are real, still-unfixed findings — replay must
  **still fail**, so whoever fixes the model is forced to flip the
  entry to ``guard`` (a silently-passing "known issue" is stale data).
"""

import pytest

from repro.fuzz import (
    check_spec,
    corpus_entries,
    instruction_count,
    validate_spec,
)
from repro.fuzz.corpus import STATUSES

ENTRIES = corpus_entries()


def test_corpus_is_not_empty():
    assert ENTRIES, "tests/fuzz/corpus must hold committed reproducers"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=lambda e: e.filename
)
def test_entry_metadata_well_formed(entry):
    assert entry.status in STATUSES
    assert entry.filename == f"{entry.spec.name}.json"
    assert entry.reason, "every entry must say why it was committed"
    assert entry.invariant
    validate_spec(entry.spec)
    assert instruction_count(entry.spec) > 0


@pytest.mark.parametrize(
    "entry",
    [e for e in ENTRIES if e.status == "guard"],
    ids=lambda e: e.filename,
)
def test_guard_entry_stays_fixed(entry):
    report = check_spec(entry.spec)
    assert report.ok, (
        f"{entry.filename} regressed: "
        + "; ".join(
            f"{d.config}/{d.engine} {d.invariant}: {d.detail}"
            for d in report.divergences[:4]
        )
    )


@pytest.mark.parametrize(
    "entry",
    [e for e in ENTRIES if e.status == "open"],
    ids=lambda e: e.filename,
)
def test_open_entry_still_reproduces(entry):
    report = check_spec(entry.spec)
    assert not report.ok, (
        f"{entry.filename} no longer fails — the finding is fixed;"
        " flip its status to 'guard' (and update the reason) so the"
        " fix is pinned forever"
    )
    got = {d.invariant for d in report.divergences}
    want = {part.strip() for part in entry.invariant.split(";")}
    assert got & want, (
        f"{entry.filename} now fails differently: recorded"
        f" {sorted(want)}, observed {sorted(got)} — re-shrink and"
        " update the entry"
    )
