"""The differential harness has teeth, and the shrinker makes them sharp.

Two properties anchor the whole fuzzing layer:

* a clean kernel produces a clean report (no false positives — otherwise
  the corpus fills with noise);
* a deliberately sabotaged arbiter is *caught* (the kill-index-check
  mutation disables the Eq. 4 same-index comparison, the exact bug class
  PVSan exists to find), and the failing kernel delta-debugs down to a
  tiny reproducer (≤ 12 IR instructions).
"""

import pytest

from repro.fuzz import (
    check_spec,
    generate_spec,
    instruction_count,
    sabotage_kill_index_check,
    shrink_spec,
)
from repro.fuzz.harness import configs_from_names

PREVV4 = configs_from_names(["prevv4"])


def test_clean_kernel_clean_report():
    spec = generate_spec(9, 0)
    report = check_spec(spec, configs=PREVV4)
    assert report.ok, [d.to_dict() for d in report.divergences]
    assert report.checks > 0


def test_sabotaged_arbiter_is_caught():
    """kill-index-check on a kernel with a real RAW hazard must produce
    an oracle (or golden-memory) divergence — the harness's teeth."""
    spec = generate_spec(9, 0)
    report = check_spec(
        spec, configs=PREVV4, engines=(),
        mutate=sabotage_kill_index_check,
    )
    assert not report.ok
    invariants = {d.invariant for d in report.divergences}
    assert invariants & {"oracle", "golden-memory"}


def test_sabotage_shrinks_to_tiny_reproducer():
    """The acceptance bar from the issue: the sabotage-induced failure
    minimizes to at most 12 IR instructions."""
    spec = generate_spec(9, 0)

    def still_fails(candidate):
        return not check_spec(
            candidate, configs=PREVV4, engines=(),
            mutate=sabotage_kill_index_check,
        ).ok

    assert still_fails(spec)
    shrunk = shrink_spec(spec, still_fails)
    assert shrunk.final_instructions <= 12
    assert shrunk.final_instructions <= shrunk.original_instructions
    assert still_fails(shrunk.spec)
    assert instruction_count(shrunk.spec) == shrunk.final_instructions


def test_unknown_config_name_rejected():
    with pytest.raises(ValueError, match="unknown config"):
        configs_from_names(["warp9"])


def test_prevv_depth_names_resolve():
    (cfg,) = configs_from_names(["prevv8"])
    assert cfg.prevv_depth == 8
    assert cfg.memory_style == "prevv"
