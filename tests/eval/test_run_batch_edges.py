"""run_batch edge cases: degenerate batches and lazy inputs.

The batch API is the entry point of the ROADMAP's simulation-service
story, so the degenerate shapes a service actually receives — empty
request, single lane, every lane identical, a generator instead of a
list — must all behave exactly like the obvious sequential loop.
tests/dataflow/test_vector.py owns the interesting shapes (mixed
structures, partial duplication, fallback); this module pins the
boundaries.
"""

import pytest

from repro.eval.configs import DYNAMATIC
from repro.eval.runner import run_batch, run_kernel
from repro.kernels import get_kernel

ENGINES = ("compiled", "vector")


@pytest.mark.parametrize("engine", ENGINES)
def test_empty_batch(engine):
    assert run_batch([], DYNAMATIC, engine=engine) == []


@pytest.mark.parametrize("engine", ENGINES)
def test_single_kernel_batch(engine):
    kernel = get_kernel("vadd", n=6)
    (res,) = run_batch([kernel], DYNAMATIC, engine=engine)
    base = run_kernel(get_kernel("vadd", n=6), DYNAMATIC,
                      engine="compiled")
    assert (res.cycles, res.transfers, res.verified, res.memory) == (
        base.cycles, base.transfers, base.verified, base.memory,
    )


def test_all_duplicate_lanes_single_simulation():
    """Sixteen identical requests: one lane simulated, sixteen results,
    each owning its memory dict."""
    kernels = [get_kernel("vadd", n=9) for _ in range(16)]
    batch = run_batch(kernels, DYNAMATIC, engine="vector")
    assert len(batch) == 16
    base = run_kernel(get_kernel("vadd", n=9), DYNAMATIC,
                      engine="compiled")
    for res in batch:
        assert (res.cycles, res.memory) == (base.cycles, base.memory)
    assert batch[0].memory is not batch[15].memory


@pytest.mark.parametrize("engine", ENGINES)
def test_generator_input_accepted(engine):
    """A generator expression works: the batch path materializes its
    input before the multi-pass dedup/prep/demux scans."""
    sizes = [5, 7, 5, 11]
    batch = run_batch(
        (get_kernel("vadd", n=n) for n in sizes),
        DYNAMATIC, engine=engine,
    )
    assert [r.kernel for r in batch] == ["vadd"] * len(sizes)
    for res, n in zip(batch, sizes):
        base = run_kernel(get_kernel("vadd", n=n), DYNAMATIC,
                          engine="compiled")
        assert (res.cycles, res.memory) == (base.cycles, base.memory)
