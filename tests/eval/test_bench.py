"""The simulator bench CLI: points, profiling, config gating, checking."""

import pytest

from repro.bench import (
    bench_point,
    check_against_baseline,
    run_bench,
)
from repro.eval.configs import BY_NAME


SMALL = {"n": 4}


class TestBenchPoint:
    def test_point_shape(self):
        point = bench_point("polyn_mult", BY_NAME["dynamatic"], SMALL)
        assert point["kernel"] == "polyn_mult"
        assert point["config"] == "dynamatic"
        assert point["cycles"] > 0
        assert point["propagate_calls"] > 0
        assert "profile" not in point
        # The report must record the engine actually used, not just the
        # one requested — fallbacks have to be visible in the JSON.
        assert point["engine_requested"] == "incremental"
        assert point["engine"] == "incremental"
        assert point["evals_per_sec"] > 0

    def test_compiled_point_records_engine(self):
        point = bench_point(
            "polyn_mult", BY_NAME["dynamatic"], SMALL, engine="compiled"
        )
        assert point["engine_requested"] == "compiled"
        assert point["engine"] == "compiled"
        ref = bench_point("polyn_mult", BY_NAME["dynamatic"], SMALL)
        assert point["cycles"] == ref["cycles"]

    def test_profile_attribution(self):
        # Profile runs pin the levelized engine (the wrappers defeat the
        # compiled engine), so compare against a levelized plain point.
        plain = bench_point(
            "polyn_mult", BY_NAME["prevv16"], SMALL, engine="levelized"
        )
        point = bench_point(
            "polyn_mult", BY_NAME["prevv16"], SMALL, profile=True
        )
        assert point["engine"] == "levelized"
        profile = point["profile"]
        assert "PreVVUnit" in profile
        # The meters must not perturb the simulation: same cycles, and
        # the per-class eval counts must add up to the engine's total.
        assert point["cycles"] == plain["cycles"]
        assert point["propagate_calls"] == plain["propagate_calls"]
        assert (
            sum(s["propagate_calls"] for s in profile.values())
            == point["propagate_calls"]
        )
        # Sorted by attributed wall time, descending.
        walls = [s["wall_s"] for s in profile.values()]
        assert walls == sorted(walls, reverse=True)


class TestRunBench:
    def test_config_filter(self):
        result = run_bench(
            quick=True, kernels=["polyn_mult"],
            configs=["prevv16", "prevv64"],
        )
        assert result["configs"] == ["prevv16", "prevv64"]
        assert {p["config"] for p in result["points"]} == {
            "prevv16", "prevv64"
        }

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError, match="unknown config"):
            run_bench(quick=True, kernels=["polyn_mult"],
                      configs=["prevv128"])

    def test_engine_axis(self):
        result = run_bench(
            quick=True, kernels=["polyn_mult"], configs=["dynamatic"],
            engines=["incremental", "compiled"],
        )
        assert result["engines"] == ["incremental", "compiled"]
        assert [p["engine"] for p in result["points"]] == [
            "incremental", "compiled"
        ]
        cycles = {p["cycles"] for p in result["points"]}
        assert len(cycles) == 1  # engines agree on architectural time

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_bench(quick=True, kernels=["polyn_mult"],
                      engines=["turbo"])

    def test_profile_plus_compiled_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            run_bench(quick=True, kernels=["polyn_mult"],
                      profile=True, engines=["compiled"])


class TestCheck:
    def _payload(self, cycles=100, epc=50.0):
        return {
            "points": [
                {
                    "kernel": "k",
                    "config": "c",
                    "cycles": cycles,
                    "propagate_calls_per_cycle": epc,
                }
            ]
        }

    def test_clean(self):
        errors = check_against_baseline(self._payload(), self._payload())
        assert errors == []

    def test_cycle_mismatch_is_error(self):
        errors = check_against_baseline(
            self._payload(cycles=101), self._payload(cycles=100)
        )
        assert len(errors) == 1 and "cycles" in errors[0]

    def test_effort_regression_is_error(self):
        errors = check_against_baseline(
            self._payload(epc=70.0), self._payload(epc=50.0)
        )
        assert len(errors) == 1 and "propagate_calls" in errors[0]

    def test_filtered_run_checks_only_its_points(self):
        baseline = self._payload()
        baseline["points"].append(
            {
                "kernel": "k",
                "config": "other",
                "cycles": 1,
                "propagate_calls_per_cycle": 1.0,
            }
        )
        errors = check_against_baseline(self._payload(), baseline)
        assert errors == []

    def test_points_are_keyed_per_engine(self):
        """A compiled point never checks against an incremental baseline
        point — their evals/cycle differ by design, not by regression."""
        result = self._payload(epc=400.0)
        result["points"][0]["engine"] = "compiled"
        errors = check_against_baseline(result, self._payload(epc=50.0))
        assert errors == []
        baseline = self._payload(epc=50.0)
        baseline["points"][0]["engine"] = "compiled"
        errors = check_against_baseline(result, baseline)
        assert len(errors) == 1 and "compiled" in errors[0]

    def test_engineless_points_default_to_incremental(self):
        """Baselines predating the engine column still check: the old
        bench always ran the incremental engine."""
        result = self._payload(cycles=101)
        result["points"][0]["engine"] = "incremental"
        errors = check_against_baseline(result, self._payload(cycles=100))
        assert len(errors) == 1 and "cycles" in errors[0]
