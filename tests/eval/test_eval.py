"""Tests for the evaluation harness (runner, tables, figures, stats)."""

import pytest

from repro.eval import (
    ALL_CONFIGS,
    DYNAMATIC,
    FAST_LSQ,
    PREVV16,
    PREVV64,
    fig1_lsq_share,
    fig7_normalized,
    format_fig1,
    format_fig7,
    format_table1,
    format_table2,
    geomean,
    geomean_delta,
    percent_delta,
    prevv_with_depth,
    run_kernel,
    table1,
    table2,
)
from repro.kernels import get_kernel

SMALL = ["histogram"]
SMALL_SIZES = {"histogram": {"n": 16}}


def small_get_kernel(name, **kw):
    merged = dict(SMALL_SIZES.get(name, {}))
    merged.update(kw)
    return get_kernel(name, **merged)


@pytest.fixture(autouse=True)
def patch_sizes(monkeypatch):
    import repro.eval.figures as figures_mod
    import repro.eval.tables as tables_mod

    monkeypatch.setattr(tables_mod, "get_kernel", small_get_kernel)
    monkeypatch.setattr(figures_mod, "get_kernel", small_get_kernel)


class TestStats:
    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_percent_delta(self):
        assert percent_delta(90, 100) == pytest.approx(-10.0)
        with pytest.raises(ValueError):
            percent_delta(1, 0)

    def test_geomean_delta(self):
        assert geomean_delta([(50, 100), (200, 100)]) == pytest.approx(0.0)


class TestConfigs:
    def test_paper_column_order(self):
        assert [c.name for c in ALL_CONFIGS] == [
            "dynamatic", "fast_lsq", "prevv16", "prevv64",
        ]
        assert PREVV16.prevv_depth == 16 and PREVV64.prevv_depth == 64
        assert DYNAMATIC.memory_style == "dynamatic"
        assert FAST_LSQ.memory_style == "fast"

    def test_prevv_with_depth(self):
        cfg = prevv_with_depth(32)
        assert cfg.prevv_depth == 32 and cfg.memory_style == "prevv"


class TestRunner:
    def test_run_result_fields(self):
        result = run_kernel(get_kernel("histogram", n=16), PREVV16)
        assert result.verified
        assert result.cycles > 0
        assert result.transfers > 0
        assert result.mismatch_summary == "(no mismatch)"

    def test_mismatch_summary_reports_diffs(self):
        result = run_kernel(get_kernel("histogram", n=16), PREVV16)
        result.memory["hist"] = list(result.memory["hist"])
        result.memory["hist"][0] += 1
        assert "[0]" in result.mismatch_summary


class TestTables:
    def test_table1_rows_and_formatting(self):
        rows = table1(kernels=SMALL)
        assert rows[0].kernel == "histogram"
        assert rows[0].luts["prevv16"] < rows[0].luts["fast_lsq"]
        text = format_table1(rows)
        assert "histogram" in text and "geomean" in text

    def test_table2_rows_and_formatting(self):
        rows = table2(kernels=SMALL)
        row = rows[0]
        assert all(row.verified.values())
        assert row.exec_us["prevv16"] > 0
        text = format_table2(rows)
        assert "histogram" in text

    def test_table1_deltas_are_percentages(self):
        rows = table1(kernels=SMALL)
        delta = rows[0].delta("luts", "prevv16")
        assert -100 < delta < 0


class TestFigures:
    def test_fig1_shares_sum_to_one(self):
        rows = fig1_lsq_share(kernels=SMALL)
        row = rows[0]
        total = row.ordering_share + row.compute_share + row.other_share
        assert total == pytest.approx(1.0, abs=1e-6)
        assert "histogram" in format_fig1(rows)

    def test_fig7_normalized_to_dynamatic(self):
        series = fig7_normalized(kernels=SMALL)
        names = {s.config for s in series}
        assert names == {"fast_lsq", "prevv16", "prevv64"}
        for s in series:
            if s.config.startswith("prevv"):
                assert s.luts["histogram"] < 1.0
        assert "prevv16" in format_fig7(series)
